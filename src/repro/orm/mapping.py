"""Entity-to-table mapping definitions (the @Entity/@Table/@ManyToOne layer).

A :class:`MappingRegistry` holds :class:`EntityDefinition` objects, each of
which maps an entity name (e.g. ``"Order"``) to a database table
(``"orders"``), lists its scalar fields, and declares many-to-one
relationships (e.g. ``Order.customer`` joined on ``o_customer_sk`` →
``customer.c_customer_sk``).  The COBRA region analysis consults the registry
to recognise which attribute accesses imply lazy-load queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class MappingError(Exception):
    """Raised for invalid or missing mapping definitions."""


@dataclass(frozen=True)
class Field:
    """A scalar field mapped to a table column."""

    name: str
    column: str


@dataclass(frozen=True)
class ManyToOne:
    """A many-to-one relationship to another entity.

    ``join_column`` is the foreign-key column on this entity's table;
    ``target_key_column`` is the referenced (usually primary key) column on
    the target entity's table.
    """

    name: str
    target_entity: str
    join_column: str
    target_key_column: str


class EntityDefinition:
    """Mapping of one entity class to a table."""

    def __init__(
        self,
        entity: str,
        table: str,
        id_column: str,
        fields: Iterable[Field] = (),
        relations: Iterable[ManyToOne] = (),
    ) -> None:
        self.entity = entity
        self.table = table
        self.id_column = id_column
        self.fields: list[Field] = list(fields)
        self.relations: dict[str, ManyToOne] = {r.name: r for r in relations}

    def relation(self, name: str) -> ManyToOne:
        """Look up a many-to-one relationship by attribute name."""
        try:
            return self.relations[name]
        except KeyError:
            raise MappingError(
                f"entity {self.entity!r} has no relation {name!r}; "
                f"relations are {sorted(self.relations)}"
            ) from None

    def has_relation(self, name: str) -> bool:
        """Return True if ``name`` is a declared many-to-one relation."""
        return name in self.relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EntityDefinition({self.entity!r} -> {self.table!r})"


class MappingRegistry:
    """All entity definitions known to a session factory."""

    def __init__(self) -> None:
        self._by_entity: dict[str, EntityDefinition] = {}
        self._by_table: dict[str, EntityDefinition] = {}

    def register(self, definition: EntityDefinition) -> EntityDefinition:
        """Register an entity definition; returns it for chaining."""
        if definition.entity in self._by_entity:
            raise MappingError(f"entity {definition.entity!r} already registered")
        self._by_entity[definition.entity] = definition
        self._by_table[definition.table] = definition
        return definition

    def entity(self, name: str) -> EntityDefinition:
        """Look up a definition by entity name."""
        try:
            return self._by_entity[name]
        except KeyError:
            raise MappingError(
                f"unknown entity {name!r}; known entities are "
                f"{sorted(self._by_entity)}"
            ) from None

    def by_table(self, table: str) -> Optional[EntityDefinition]:
        """Look up a definition by table name, or ``None``."""
        return self._by_table.get(table)

    def has_entity(self, name: str) -> bool:
        """Return True if ``name`` is a registered entity."""
        return name in self._by_entity

    def entities(self) -> list[str]:
        """Names of all registered entities."""
        return sorted(self._by_entity)
