"""A Hibernate-like session: load_all, lazy many-to-one loads, first-level cache.

:class:`EntityObject` wraps one row and exposes mapped columns as attributes.
Accessing a many-to-one attribute (``order.customer``) triggers a lazy load:
if the target row is not in the session's first-level cache, the session
issues a point-lookup query over the connection — this is exactly the N+1
select behaviour of program P0 in the paper.  Once loaded, the row is cached
by primary key, which is what makes P0 competitive with P1 on a fast local
network at high Order cardinality (Experiment 2's observation).

Both :meth:`Session.get` and the lazy-load path go through the connection's
prepared point-lookup protocol (:meth:`SimulatedConnection.execute_lookup`):
one :class:`repro.db.database.PreparedStatement` per ``(table, key_column)``
serves every lookup, so the N+1 loop parses and estimates its query shape
once instead of rebuilding and re-parsing SQL text per iteration.

When the application *knows* it is about to walk a relation across a whole
collection (the P0 loop), :meth:`Session.prefetch` batches every missing
target row into **one pipelined round trip** — the N+1 pattern collapses to
1+1 on the network while the per-object lazy loads become first-level-cache
hits.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.net.connection import SimulatedConnection
from repro.orm.mapping import EntityDefinition, MappingError, MappingRegistry


class EntityObject:
    """A mapped row: column values as attributes plus lazy relations."""

    def __init__(
        self, session: "Session", definition: EntityDefinition, row: dict
    ) -> None:
        # Use object.__setattr__ to avoid recursing through __getattr__.
        object.__setattr__(self, "_session", session)
        object.__setattr__(self, "_definition", definition)
        object.__setattr__(self, "_row", dict(row))

    @property
    def row(self) -> dict:
        """The underlying row values (a copy is not taken; do not mutate)."""
        return self._row

    @property
    def entity_name(self) -> str:
        """Name of the mapped entity."""
        return self._definition.entity

    @property
    def id(self) -> Any:
        """Primary key value of this object."""
        return self._row.get(self._definition.id_column)

    def __getattr__(self, name: str) -> Any:
        row = object.__getattribute__(self, "_row")
        if name in row:
            return row[name]
        definition = object.__getattribute__(self, "_definition")
        if definition.has_relation(name):
            session = object.__getattribute__(self, "_session")
            return session._load_relation(self, definition.relation(name))
        raise AttributeError(
            f"{definition.entity} object has no attribute or mapped column "
            f"{name!r}"
        )

    def get(self, name: str, default: Any = None) -> Any:
        """Dictionary-style access to a mapped column."""
        return self._row.get(name, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.entity_name} id={self.id!r}>"


class Session:
    """A unit-of-work session over a simulated connection."""

    def __init__(
        self, registry: MappingRegistry, connection: SimulatedConnection
    ) -> None:
        self.registry = registry
        self.connection = connection
        # First-level cache: (entity, primary key) -> EntityObject.
        self._cache: dict[tuple[str, Any], EntityObject] = {}
        self.lazy_loads = 0
        self.cache_hits = 0
        #: pipelined prefetch batches issued (each is one round trip).
        self.prefetches = 0

    # -- loading ---------------------------------------------------------

    def load_all(self, entity: str) -> list[EntityObject]:
        """Fetch every row of the entity's table (Hibernate's loadAll)."""
        definition = self.registry.entity(entity)
        result = self.connection.execute_query(
            f"select * from {definition.table}"
        )
        objects = []
        for row in result.rows:
            obj = self._materialise(definition, row)
            objects.append(obj)
        return objects

    def get(self, entity: str, key: Any) -> Optional[EntityObject]:
        """Fetch one object by primary key, using the first-level cache."""
        definition = self.registry.entity(entity)
        cached = self._cache.get((entity, key))
        if cached is not None:
            self.cache_hits += 1
            return cached
        result = self.connection.execute_lookup(
            definition.table, definition.id_column, key
        )
        if not result.rows:
            return None
        return self._materialise(definition, result.rows[0])

    def execute_query(self, sql: str, params: Iterable[Any] = ()) -> list[dict]:
        """Run a native SQL query (Hibernate SQL query API); returns row dicts."""
        result = self.connection.execute_query(sql, tuple(params))
        return result.rows

    def prefetch(
        self, objects: Iterable[EntityObject], relation_name: str
    ) -> int:
        """Batch-load one relation for many objects in a single round trip.

        Collects the distinct foreign-key values of ``relation_name`` across
        ``objects`` that are not yet in the first-level cache, ships the
        point lookups through one :meth:`SimulatedConnection.pipeline` batch
        (one network round trip instead of one per miss), and caches every
        fetched target.  Subsequent lazy accesses (``order.customer``) are
        then cache hits.  Returns the number of rows fetched.
        """
        misses: list[Any] = []
        seen: set[Any] = set()
        relation = None
        target_def = None
        for obj in objects:
            definition = obj._definition
            if relation is None:
                relation = definition.relation(relation_name)
                target_def = self.registry.entity(relation.target_entity)
            fk_value = obj.get(relation.join_column)
            if fk_value is None or fk_value in seen:
                continue
            seen.add(fk_value)
            if (relation.target_entity, fk_value) not in self._cache:
                misses.append(fk_value)
        if not misses:
            return 0
        statement = self.connection.lookup_statement(
            target_def.table, relation.target_key_column
        )
        with self.connection.pipeline() as pipe:
            handles = [
                pipe.execute_prepared(statement, (fk_value,))
                for fk_value in misses
            ]
        fetched = 0
        for handle in handles:
            if handle.rows:
                self._materialise(target_def, handle.rows[0])
                fetched += 1
        self.prefetches += 1
        return fetched

    # -- internals -------------------------------------------------------

    def _materialise(
        self, definition: EntityDefinition, row: dict
    ) -> EntityObject:
        key = row.get(definition.id_column)
        cached = self._cache.get((definition.entity, key))
        if cached is not None:
            return cached
        # Strip the executor's qualified duplicate keys ("alias.column").
        clean = {k: v for k, v in row.items() if "." not in k}
        obj = EntityObject(self, definition, clean)
        if key is not None:
            self._cache[(definition.entity, key)] = obj
        return obj

    def _load_relation(
        self, source: EntityObject, relation
    ) -> Optional[EntityObject]:
        """Lazily load a many-to-one target, hitting the cache first."""
        target_def = self.registry.entity(relation.target_entity)
        fk_value = source.get(relation.join_column)
        if fk_value is None:
            return None
        cached = self._cache.get((relation.target_entity, fk_value))
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.lazy_loads += 1
        result = self.connection.execute_lookup(
            target_def.table, relation.target_key_column, fk_value
        )
        if not result.rows:
            return None
        return self._materialise(target_def, result.rows[0])

    # -- cache management ------------------------------------------------

    def clear(self) -> None:
        """Evict the first-level cache and reset counters (new transaction)."""
        self._cache.clear()
        self.lazy_loads = 0
        self.cache_hits = 0
        self.prefetches = 0

    @property
    def cache_size(self) -> int:
        """Number of objects currently held in the first-level cache."""
        return len(self._cache)

    def definition_for(self, entity: str) -> EntityDefinition:
        """Expose mapping lookups for the region analysis."""
        try:
            return self.registry.entity(entity)
        except MappingError:
            raise
