"""Hibernate-like object-relational mapping substrate.

The paper's motivating programs use the Hibernate ORM; the behaviours COBRA's
cost model depends on are reproduced here:

* entity classes mapped to tables with column fields and many-to-one
  relationships (:mod:`repro.orm.mapping`),
* a :class:`repro.orm.session.Session` with ``load_all`` (fetch a whole
  entity's table), lazy loading of many-to-one attributes (each first access
  issues a separate point-lookup query — the N+1 select problem), and a
  first-level cache keyed by primary key so repeated accesses to the same row
  do not re-query the database,
* a native-SQL escape hatch (``Session.execute_query``) corresponding to the
  Hibernate SQL query API used by program P1.
"""

from repro.orm.mapping import EntityDefinition, Field, ManyToOne, MappingRegistry
from repro.orm.session import EntityObject, Session

__all__ = [
    "EntityDefinition",
    "EntityObject",
    "Field",
    "ManyToOne",
    "MappingRegistry",
    "Session",
]
