"""Command-line interface for the COBRA reproduction.

Usage::

    python -m repro.cli optimize PROGRAM.py [--function NAME]
        [--catalog catalog.json | --network slow-remote|fast-local]
        [--amortization AF] [--workload orders|wilos] [--scale N]
        [--shards N] [--wal] [--mvcc] [--admission N]
        [--fault-rate P] [--fault-seed N]
        [--show-alternatives] [--heuristic] [--stats]

    python -m repro.cli experiment fig13a|fig13b|fig13c|fig14|fig15|fig16|opt-time
        [--scale N] [--divisor N]

    python -m repro.cli catalog --network slow-remote --out catalog.json

``optimize`` reads a Python source file containing one function written
against the :class:`repro.appsim.runtime.AppRuntime` API, optimizes it
against a synthetic workload database (orders/customer or Wilos-like), and
prints the chosen strategy, the estimated costs, and the rewritten program.

``experiment`` runs one of the paper-figure reproductions and prints the
result table.

``catalog`` writes a cost catalog file that can be edited and passed back via
``--catalog``.

All subcommands run through the :class:`repro.api.Engine` facade, which
wires the workload database, the network preset, the ORM mapping registry,
and the cost parameters together in one place.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.api import Engine
from repro.core.catalog import catalog_for_network, load_catalog, save_catalog
from repro.core.cost_model import CostModel, CostParameters
from repro.core.plans import DagCostCalculator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="COBRA: cost based rewriting of database applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    optimize = sub.add_parser("optimize", help="optimize a program source file")
    optimize.add_argument("program", type=Path, help="path to the Python source")
    optimize.add_argument("--function", default=None, help="function to optimize")
    optimize.add_argument(
        "--network",
        choices=["slow-remote", "fast-local"],
        default="fast-local",
        help="network preset for the cost model",
    )
    optimize.add_argument(
        "--catalog", type=Path, default=None, help="cost catalog JSON file"
    )
    optimize.add_argument(
        "--amortization", type=float, default=1.0, help="amortization factor AF"
    )
    optimize.add_argument(
        "--workload",
        choices=["orders", "wilos"],
        default="orders",
        help="synthetic database the statistics come from",
    )
    optimize.add_argument(
        "--scale", type=int, default=2_000, help="workload scale (row count)"
    )
    optimize.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "hash-shard every workload table with a primary key over N "
            "partitions (0 = unsharded)"
        ),
    )
    optimize.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "execute scatter-gather shards on an N-worker pool "
            "(0 = serial; requires --shards)"
        ),
    )
    optimize.add_argument(
        "--parallel-mode",
        choices=["thread", "process"],
        default="thread",
        help="worker pool flavor for --workers",
    )
    optimize.add_argument(
        "--show-alternatives",
        action="store_true",
        help="print every alternative of every region with its estimated cost",
    )
    optimize.add_argument(
        "--heuristic",
        action="store_true",
        help="also show the always-push-to-SQL heuristic rewrite",
    )
    optimize.add_argument(
        "--wal",
        action="store_true",
        help="enable write-ahead logging on the workload database",
    )
    optimize.add_argument(
        "--mvcc",
        action="store_true",
        help=(
            "enable MVCC: snapshot reads and first-committer-wins "
            "transactions on the workload database"
        ),
    )
    optimize.add_argument(
        "--admission",
        type=int,
        default=0,
        metavar="N",
        help=(
            "bound server concurrency at N in-flight requests; excess "
            "arrivals queue on the virtual clock (0 = unbounded)"
        ),
    )
    optimize.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help=(
            "inject seeded network faults at this per-operation probability "
            "(retried with capped exponential backoff on the virtual clock)"
        ),
    )
    optimize.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault injector",
    )
    optimize.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print aggregated engine statistics (statement cache, network, "
            "WAL, fault/retry counters)"
        ),
    )
    optimize.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a structured trace per statement executed through the "
            "engine and print the trace report after the run"
        ),
    )
    optimize.add_argument(
        "--slow-query-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "log statements charged more than SECONDS of virtual latency "
            "to the slow-query log (implies --trace)"
        ),
    )
    optimize.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "print the metrics registry snapshot: counters, gauges, "
            "latency histograms, and subsystem views"
        ),
    )

    experiment = sub.add_parser("experiment", help="run a paper-figure reproduction")
    experiment.add_argument(
        "figure",
        choices=["fig13a", "fig13b", "fig13c", "fig14", "fig15", "fig16", "opt-time"],
    )
    experiment.add_argument("--scale", type=int, default=2_000)
    experiment.add_argument("--divisor", type=int, default=200)

    catalog = sub.add_parser("catalog", help="write a cost catalog file")
    catalog.add_argument(
        "--network", choices=["slow-remote", "fast-local"], default="fast-local"
    )
    catalog.add_argument("--amortization", type=float, default=1.0)
    catalog.add_argument("--out", type=Path, required=True)

    return parser


# -- subcommands ----------------------------------------------------------------


def _load_parameters(args: argparse.Namespace) -> CostParameters:
    if args.catalog is not None:
        parameters = load_catalog(args.catalog)
    else:
        parameters = catalog_for_network(args.network)
    if args.amortization != 1.0:
        parameters = parameters.with_amortization(args.amortization)
    return parameters


def _build_engine(args: argparse.Namespace) -> Engine:
    """Assemble the engine the subcommand runs against."""
    builder = (
        Engine.builder()
        .network(args.network)
        .cost_parameters(_load_parameters(args))
    )
    if args.workload == "wilos":
        builder.wilos_workload(scale=args.scale)
    else:
        builder.orders_workload(
            num_orders=args.scale, num_customers=max(args.scale // 10, 10)
        )
    if getattr(args, "shards", 0):
        builder.shards(args.shards)
    if getattr(args, "workers", 0):
        builder.parallel(
            args.workers, getattr(args, "parallel_mode", "thread")
        )
    if getattr(args, "wal", False):
        builder.wal()
    if getattr(args, "mvcc", False):
        builder.mvcc()
    if getattr(args, "admission", 0):
        builder.admission(args.admission)
    if getattr(args, "fault_rate", 0.0):
        builder.fault_rate(args.fault_rate, seed=getattr(args, "fault_seed", 0))
    threshold = getattr(args, "slow_query_threshold", None)
    if getattr(args, "trace", False) or threshold is not None:
        builder.tracing(slow_query_threshold=threshold)
    return builder.build()


def run_optimize(args: argparse.Namespace, out) -> int:
    source = args.program.read_text()
    engine = _build_engine(args)
    result = engine.optimize(source, function_name=args.function)

    print(f"program              : {args.program}", file=out)
    print(f"alternatives added   : {result.alternatives_added}", file=out)
    print(f"original cost (est.) : {result.original_cost:.6f} s", file=out)
    print(f"best cost (est.)     : {result.best_cost:.6f} s", file=out)
    print(f"estimated speedup    : {result.estimated_speedup:.2f}x", file=out)
    print(f"chosen strategy      : {result.primary_choice()}", file=out)
    print(f"optimization time    : {result.optimization_seconds * 1000:.1f} ms", file=out)

    if args.show_alternatives:
        calculator = DagCostCalculator(
            result.dag, CostModel(engine.database, engine.parameters)
        )
        print("\nalternatives per region:", file=out)
        for group in result.dag.iter_groups():
            if len(group.alternatives) < 2:
                continue
            print(f"  {group.label}:", file=out)
            for node in group.alternatives:
                cost = calculator.node_cost(node)
                print(f"    {node.strategy:<20} {cost:.6f} s", file=out)

    print("\nrewritten program:", file=out)
    print(result.rewritten_source, file=out)

    if args.heuristic:
        outcome = engine.heuristic_rewrite(source, function_name=args.function)
        print("\nheuristic (always push to SQL) rewrite:", file=out)
        print(outcome.rewritten_source, file=out)

    if args.stats:
        _print_stats(engine, out)
    if args.trace or args.slow_query_threshold is not None:
        _print_traces(engine, out)
    if args.metrics:
        _print_metrics(engine, out)
    return 0


def _emit_counters(prefix: str, counters: dict, out) -> None:
    """Flatten one counter group into sorted dotted ``path : value`` lines."""
    for name, value in sorted(counters.items()):
        path = f"{prefix}.{name}"
        if isinstance(value, dict):
            if not value:
                print(f"  {path:<30}: (none)", file=out)
            else:
                _emit_counters(path, value, out)
        elif isinstance(value, float):
            print(f"  {path:<30}: {value:.6f}", file=out)
        else:
            print(f"  {path:<30}: {value}", file=out)


def _print_stats(engine: Engine, out) -> None:
    """Render ``engine.stats()`` as aligned ``group.counter : value`` lines.

    Nested counter groups (the executor's per-tier and vectorized
    fallback-reason counters, the sharding routed/local/scatter counts, the
    tracing and metrics summaries) flatten into dotted paths, one counter
    per line, sorted at every level so the output is diff-stable.
    """
    print("\nengine statistics:", file=out)
    for group, counters in sorted(engine.stats().items()):
        _emit_counters(group, counters, out)


def _print_traces(engine: Engine, out) -> None:
    """Render the tracer's recorded traces and the slow-query log."""
    print("\nquery traces:", file=out)
    tracer = engine.tracer
    if tracer is None:
        print("  (tracing disabled)", file=out)
        return
    print(tracer.render(), file=out)
    if tracer.slow_query_threshold is not None:
        print(
            f"\nslow queries (>= {tracer.slow_query_threshold}s): "
            f"{tracer.slow_queries_recorded}",
            file=out,
        )


def _print_metrics(engine: Engine, out) -> None:
    """Render ``engine.metrics()`` as sorted dotted counter lines."""
    print("\nmetrics:", file=out)
    for group, values in sorted(engine.metrics().as_dict().items()):
        if values:
            _emit_counters(group, values, out)


def run_experiment(args: argparse.Namespace, out) -> int:
    from repro.experiments import figure13, figure15, opt_time

    if args.figure == "fig13a":
        table = figure13.run_figure13a(scale_divisor=args.divisor)
    elif args.figure == "fig13b":
        table = figure13.run_figure13b(scale_divisor=args.divisor)
    elif args.figure == "fig13c":
        table = figure13.run_figure13c(scale_divisor=args.divisor)
    elif args.figure == "fig14":
        table = figure15.run_figure14()
    elif args.figure == "fig15":
        table = figure15.run_figure15(scale=args.scale)
    elif args.figure == "fig16":
        table = figure15.run_figure16()
    else:
        table = opt_time.run_optimization_time(scale=args.scale)
    print(table.render(), file=out)
    return 0


def run_catalog(args: argparse.Namespace, out) -> int:
    parameters = catalog_for_network(args.network).with_amortization(
        args.amortization
    )
    path = save_catalog(parameters, args.out)
    print(f"wrote cost catalog to {path}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "optimize":
        return run_optimize(args, out)
    if args.command == "experiment":
        return run_experiment(args, out)
    if args.command == "catalog":
        return run_catalog(args, out)
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
