"""Horizontal hash sharding: partitioned tables and scatter-gather execution.

This module makes partitioned storage a first-class layer of the engine:

* :class:`ShardedTable` splits one logical table into N :class:`~repro.db.
  table.Table` partitions, hash-routed on a declared **shard key**.  It
  subclasses ``Table``, so the aggregate view (rows in global insertion
  order, primary-key index, secondary indexes, columnar view, distinct
  counts) behaves exactly like an unsharded table — unrouted plans execute
  identically on all three tiers — while the shard partitions *share the
  stored row dicts* with the aggregate view, so in-place updates are visible
  everywhere without copying.

* :class:`ShardRouter` classifies plans over sharded tables into three
  execution classes:

  - **single-shard routed** — a point-equality predicate on the shard key
    (a literal or a :class:`~repro.db.expressions.ParameterSlot` resolved
    from the prepared statement's buffer at execution time) pins the whole
    plan to one shard; the plan runs unchanged against a table mapping
    where the sharded table is replaced by that one partition.  The pin
    requires the shard-key equality to be the *first* predicate applied to
    the scanned rows, so the engine's strict error semantics survive:
    unsharded execution short-circuits every other shard's row on that
    same conjunct, and a predicate error on a pruned row could not have
    fired anyway.
  - **shard-local parallel** — co-partitioned equi-joins on the shard key
    run join-per-shard; grouped/scalar aggregations over a distributable
    child run as per-shard *partial* aggregates (avg decomposed into
    sum + count) merged at the gather node with the same
    :data:`~repro.db.vectorized.AGGREGATE_MERGERS` kernels the vectorized
    tier accumulates with.
  - **scatter-gather** — everything else distributable: the plan executes
    per shard and the results are concatenated at a gather node, in shard
    order.  On the vectorized tier the gather ships
    :class:`~repro.db.vectorized.ColumnBatch` objects (selection vectors
    composed per shard) and materializes rows only once, at the root; the
    compiled tier chains per-shard fused iterators; the interpreted tier
    concatenates per-shard row lists.

  Plans the router cannot prove distributable (``Limit``, non-co-partitioned
  joins of two sharded tables, operators over sharded subtrees it cannot
  reason about) **fall back** to unrouted execution over the aggregate
  view, which is always correct — sharding can restrict where a plan runs,
  never what it returns.

Ordering contract: routed and fallback executions are row-identical to the
unsharded engine *including order*.  Scatter-gather and partial-aggregate
merges concatenate in shard order, so their output is deterministic and
identical across the three tiers, and matches unsharded execution up to
row order (exactly, after a ``Sort`` whose keys are total; up to ties
otherwise — the usual distributed-engine contract).  Floating-point sums
may likewise differ in the last ulp because per-shard partials reassociate
the addition.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.db import algebra
from repro.db.executor import (
    ExecutionError,
    Executor,
    _equi_join_columns,
    _flatten_and,
    _sort_key,
)
from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    ParameterSlot,
)
from repro.db.parallel import (
    ShardExecutorPool,
    fold_worker_counters,
    pack_table,
)
from repro.db.schema import TableSchema
from repro.db.table import Row, Table
from repro.db.vectorized import (
    AGGREGATE_MERGERS,
    batch_output_rows,
    finalize_avg,
    gather_batches,
    merge_sorted_runs,
    unpack_batch,
)


class ShardingError(Exception):
    """Raised for invalid sharding configurations."""


def shard_index(value: Any, shard_count: int) -> int:
    """The shard a key value routes to: ``hash(value) % shard_count``.

    ``None`` and unhashable values route to shard 0 — deterministically, so
    insertion and lookup always agree.  Python guarantees equal builtin
    values hash equally (``hash(2) == hash(2.0)``), so a predicate comparing
    across numeric types still routes to the shard holding the matches.
    """
    if value is None:
        return 0
    try:
        return hash(value) % shard_count
    except TypeError:
        return 0


class ShardedTable(Table):
    """A logical table hash-partitioned over N internal :class:`Table` shards.

    Presents the full ``Table`` surface (``insert`` / ``insert_many`` /
    ``update_rows`` / ``scan`` / ``lookup_pk`` / ``columns`` / ``index_for``
    / ``version`` / ...) through the inherited aggregate view, which keeps
    rows in **global insertion order** — so any plan executed against the
    sharded table *without* routing is bit-identical to the unsharded
    engine.  Each stored row dict is additionally filed (by reference) in
    the shard partition its shard-key value hashes to; the partitions are
    plain ``Table`` objects the router substitutes into per-shard executor
    table mappings.
    """

    def __init__(
        self, schema: TableSchema, shard_key: str, shard_count: int
    ) -> None:
        if shard_count < 1:
            raise ShardingError(
                f"shard count must be at least 1, got {shard_count}"
            )
        schema.column(shard_key)  # raises SchemaError for unknown columns
        super().__init__(schema)
        self.shard_key = shard_key
        self.shard_count = shard_count
        #: the shard partitions; plain Tables sharing this table's schema
        #: and (by reference) its stored row dicts.
        self.shards: list[Table] = [Table(schema) for _ in range(shard_count)]

    # -- routing ---------------------------------------------------------

    def shard_index(self, value: Any) -> int:
        """The shard partition index a shard-key ``value`` routes to."""
        return shard_index(value, self.shard_count)

    def shard_for(self, value: Any) -> Table:
        """The shard partition a shard-key ``value`` routes to."""
        return self.shards[shard_index(value, self.shard_count)]

    # -- mutation --------------------------------------------------------

    def insert_stored(self, row: Row) -> Row:
        stored = super().insert_stored(row)
        self.shards[self.shard_index(stored[self.shard_key])].adopt_row(stored)
        return stored

    def clear(self) -> None:
        super().clear()
        for shard in self.shards:
            shard.clear()

    def apply_update(self, changes) -> int:
        # The shard partitions share the stored dicts, so the update itself
        # is visible there immediately; only their caches (and, if the shard
        # key or primary key moved, their row placement) need repair.  This
        # hook covers every update route identically — live ``update_rows``,
        # transaction-rollback before-images, and WAL replay via
        # ``apply_update_at`` — so a replayed shard-key update rehomes the
        # row exactly like the live path did.
        changes = list(changes)
        primary_key = self.schema.primary_key
        rehome = any(
            self.shard_key in new_values
            or (primary_key is not None and primary_key in new_values)
            for _, new_values in changes
        )
        updated = super().apply_update(changes)
        if updated:
            self._sync_shards(rehome=rehome)
        return updated

    def truncate_to(self, length: int) -> int:
        removed = super().truncate_to(length)
        if removed:
            self._sync_shards(rehome=True)
        return removed

    def _sync_shards(self, rehome: bool) -> None:
        if not rehome:
            for shard in self.shards:
                shard._invalidate_caches()
            return
        key = self.shard_key
        for shard in self.shards:
            shard.clear()
        for row in self.rows:
            self.shards[self.shard_index(row[key])].adopt_row(row)

    # -- storage ---------------------------------------------------------

    def set_storage_mode(self, mode: str) -> None:
        # Per-shard executors scan the shard partitions, not the aggregate
        # view, so the physical-layout knob must reach both.
        super().set_storage_mode(mode)
        for shard in self.shards:
            shard.set_storage_mode(mode)

    # -- introspection ---------------------------------------------------

    def shard_row_counts(self) -> list[int]:
        """Rows stored per shard partition (balance diagnostics)."""
        return [len(shard) for shard in self.shards]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTable({self.schema.name!r}, key={self.shard_key!r}, "
            f"shards={self.shard_count}, rows={len(self.rows)})"
        )


# -- routing classification ----------------------------------------------


class ShardingStats:
    """Counters for the router's execution classes."""

    __slots__ = ("routed", "local", "scatter", "fallback")

    def __init__(self) -> None:
        self.routed = 0
        self.local = 0
        self.scatter = 0
        self.fallback = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "routed": self.routed,
            "local": self.local,
            "scatter": self.scatter,
            "fallback": self.fallback,
        }


class _Route:
    """A cached routing decision for one plan object.

    ``post`` is a tuple of row-list transforms (compiled once at
    classification time) the gather node applies after collecting the
    per-shard results — the root ``Sort`` of a scatter, or the
    ``Select`` / ``Project`` / ``Sort`` spine sitting above a partially
    aggregated node.

    ``merge`` is the parallel-gather alternative to a root-``Sort``
    ``post``: the *original* plan (Sort included, so each shard returns a
    sorted run) plus a compiled total-order merge key, letting the gather
    k-way merge the runs instead of re-sorting the concatenation.  Only
    set for scatter/local-join routes whose root is a ``Sort``.
    """

    __slots__ = (
        "kind",
        "names",
        "table",
        "getter",
        "node",
        "post",
        "partial",
        "merge",
    )

    def __init__(
        self,
        kind: str,
        *,
        names: frozenset[str] = frozenset(),
        table: Optional[ShardedTable] = None,
        getter: Optional[Callable[[], Any]] = None,
        node: Optional[algebra.PlanNode] = None,
        post: tuple = (),
        partial: Optional["_PartialAggregate"] = None,
        merge: Optional[tuple] = None,
    ) -> None:
        self.kind = kind
        self.names = names
        self.table = table
        self.getter = getter
        self.node = node
        self.post = post
        self.partial = partial
        self.merge = merge

    def apply_post(self, rows: list[Row]) -> list[Row]:
        for transform in self.post:
            rows = transform(rows)
        return rows


#: Routing decisions cached for plans that do not touch sharded tables.
_NOT_SHARDED = _Route("not-sharded")
#: Sharded plans the router cannot distribute (unrouted execution).
_FALLBACK = _Route("fallback")


class _PartialAggregate:
    """A grouped/scalar aggregate decomposed for per-shard execution.

    ``plan`` is the per-shard partial plan (avg specs replaced by sum +
    count partials); ``emitters`` describe how the gather node merges the
    per-shard partial rows and finalizes each original output column.
    """

    __slots__ = ("plan", "group_by", "emitters")

    def __init__(self, aggregate: algebra.Aggregate) -> None:
        self.group_by = aggregate.group_by
        partial_specs: list[algebra.AggregateSpec] = []
        #: (output name, "avg" | primitive function, partial column names)
        self.emitters: list[tuple[str, str, tuple[str, ...]]] = []
        for position, spec in enumerate(aggregate.aggregates):
            if spec.function == "avg":
                sum_name = f"__shard_sum_{position}"
                count_name = f"__shard_count_{position}"
                partial_specs.append(
                    algebra.AggregateSpec("sum", spec.argument, sum_name)
                )
                partial_specs.append(
                    algebra.AggregateSpec("count", spec.argument, count_name)
                )
                self.emitters.append((spec.name, "avg", (sum_name, count_name)))
            else:
                partial_specs.append(spec)
                self.emitters.append((spec.name, spec.function, (spec.name,)))
        self.plan = algebra.Aggregate(
            aggregate.child, aggregate.group_by, tuple(partial_specs)
        )

    def merge(self, shard_rows: Iterable[Row]) -> list[Row]:
        """Merge per-shard partial rows into final output rows.

        Groups are keyed by their group-by values (first-encounter order
        across the concatenated shard outputs); each partial column is
        folded with its :data:`AGGREGATE_MERGERS` kernel, and ``avg`` is
        finalized from its sum + count pair.  With no group keys, every
        shard contributes exactly one partial row and the merge emits
        exactly one output row, like the unsharded scalar aggregate.
        """
        group_by = self.group_by
        states: "OrderedDict[tuple, Row]" = OrderedDict()
        for row in shard_rows:
            # Key on the *qualified* names: per-shard aggregate rows write
            # both the bare and qualified key for every group column, and
            # two group columns sharing a bare name (group by l.k, u.k)
            # collide on the bare key (last one wins, like _merge_rows).
            key = tuple(row[column.qualified_name] for column in group_by)
            state = states.get(key)
            if state is None:
                states[key] = dict(row)
                continue
            for name, function, partials in self.emitters:
                if function == "avg":
                    sum_name, count_name = partials
                    state[sum_name] = AGGREGATE_MERGERS["sum"](
                        state[sum_name], row[sum_name]
                    )
                    state[count_name] = AGGREGATE_MERGERS["count"](
                        state[count_name], row[count_name]
                    )
                else:
                    merge = AGGREGATE_MERGERS[function]
                    state[name] = merge(state[name], row[name])
        out_rows: list[Row] = []
        for key, state in states.items():
            out: Row = {}
            for column, value in zip(group_by, key):
                out[column.name] = value
                out[column.qualified_name] = value
            for name, function, partials in self.emitters:
                if function == "avg":
                    out[name] = finalize_avg(
                        state[partials[0]], state[partials[1]]
                    )
                else:
                    out[name] = state[name]
            out_rows.append(out)
        return out_rows

    def merge_indexed(
        self, indexed: Iterable[tuple[int, list[Row]]]
    ) -> list[Row]:
        """Merge per-shard partial rows arriving in *any* completion order.

        The parallel scatter hands shard results to the gather as they
        finish, not in shard order.  Each group's state still folds
        incrementally (sum/count/min/max merges are commutative), and the
        emission order is recovered afterwards: groups emit sorted by
        their earliest ``(shard index, row position)`` encounter — exactly
        the first-encounter order :meth:`merge` produces over the
        shard-ordered concatenation.  Float sums may reassociate, per the
        module ordering contract.
        """
        group_by = self.group_by
        states: dict[tuple, tuple[tuple[int, int], Row]] = {}
        for shard, rows in indexed:
            for position, row in enumerate(rows):
                key = tuple(
                    row[column.qualified_name] for column in group_by
                )
                entry = states.get(key)
                if entry is None:
                    states[key] = ((shard, position), dict(row))
                    continue
                order, state = entry
                if (shard, position) < order:
                    states[key] = ((shard, position), state)
                for name, function, partials in self.emitters:
                    if function == "avg":
                        sum_name, count_name = partials
                        state[sum_name] = AGGREGATE_MERGERS["sum"](
                            state[sum_name], row[sum_name]
                        )
                        state[count_name] = AGGREGATE_MERGERS["count"](
                            state[count_name], row[count_name]
                        )
                    else:
                        merge = AGGREGATE_MERGERS[function]
                        state[name] = merge(state[name], row[name])
        out_rows: list[Row] = []
        for key, (_, state) in sorted(
            states.items(), key=lambda item: item[1][0]
        ):
            out: Row = {}
            for column, value in zip(group_by, key):
                out[column.name] = value
                out[column.qualified_name] = value
            for name, function, partials in self.emitters:
                if function == "avg":
                    out[name] = finalize_avg(
                        state[partials[0]], state[partials[1]]
                    )
                else:
                    out[name] = state[name]
            out_rows.append(out)
        return out_rows


class _Descending:
    """Inverts one sort-key component inside a k-way merge key tuple.

    ``heapq.merge`` compares whole key tuples ascending; wrapping a
    component flips its comparison so a ``DESC`` sort key merges
    correctly while the other components keep their direction.
    """

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.key == self.key


class ShardRouter:
    """Classifies and executes plans over sharded tables.

    Owned by the :class:`~repro.db.database.Database`; the main
    :class:`~repro.db.executor.Executor` consults :meth:`try_execute` first
    and keeps its normal (aggregate-view) path for everything the router
    declines.  Per-shard execution runs on cached shard executors — one
    per (substituted tables, shard index) — in the same tier mode as the
    main executor, so all three tiers participate in routing.
    """

    #: Cached routing decisions kept before LRU eviction.
    ROUTE_CACHE_LIMIT = 256

    def __init__(
        self,
        tables: Mapping[str, Table],
        mode: str,
        vector_backend: Optional[str] = None,
    ) -> None:
        self._tables = tables
        self._mode = mode
        self._vector_backend = vector_backend
        #: plan -> _Route, LRU-evicted (plans embed query literals).
        self._routes: OrderedDict[algebra.PlanNode, _Route] = OrderedDict()
        #: (frozenset of substituted names, shard index) -> Executor.
        self._executors: dict[tuple[frozenset[str], int], Executor] = {}
        self.stats = ShardingStats()
        #: tier/vectorized counters of shard executors dropped by
        #: invalidate(), folded so execution_counters() stays complete.
        self._retired_tiers: dict[str, int] = {
            "vectorized": 0,
            "compiled": 0,
            "interpreted": 0,
        }
        self._retired_vectorized: dict[str, Any] = _zero_vectorized_counters()
        #: per-call markers for tracing / EXPLAIN: how the most recent
        #: try_execute dispatched (``None`` for not-sharded plans), which
        #: tier served it, the vectorized fallback reason if any, and the
        #: concrete execution path ("codegen" / "kernel" / row tier name).
        self.last_route: Optional[dict] = None
        self.last_tier: Optional[str] = None
        self.last_fallback_reason: Optional[str] = None
        self.last_execution_path: Optional[str] = None
        #: worker pool for parallel scatters (``None`` = serial baseline)
        #: and the most recent parallel scatter's timing/shipping record.
        self._pool: Optional[ShardExecutorPool] = None
        self.last_parallel: Optional[dict] = None

    # -- parallel configuration ------------------------------------------

    def set_parallel(
        self, workers: Optional[int] = None, mode: str = "thread"
    ) -> None:
        """(Re)configure the scatter worker pool; ``serial`` disables it.

        Reconfiguration shuts the previous pool down first; its cumulative
        stats are dropped with it (``parallel_stats`` reflects the live
        pool, like ``execution_stats`` reflects live executors).
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if mode != "serial":
            self._pool = ShardExecutorPool(workers, mode)

    def parallel_stats(self) -> dict:
        """Pool stats for ``stats()["sharding"]["parallel"]``."""
        if self._pool is None:
            return {"mode": "serial", "workers": 1, "scatters": 0}
        return self._pool.stats()

    def close(self) -> None:
        """Shut down the worker pool, if one is configured."""
        if self._pool is not None:
            self._pool.close()

    # -- public API ------------------------------------------------------

    def try_execute(self, plan: algebra.PlanNode) -> Optional[list[Row]]:
        """Execute ``plan`` through sharding, or return ``None`` to decline.

        ``None`` means the caller should run the plan unrouted against the
        aggregate views (counted as a fallback when the plan touches a
        sharded table at all).
        """
        route = self._route(plan)
        kind = route.kind
        if kind == "not-sharded":
            self.last_route = None
            return None
        if kind == "fallback":
            self.stats.fallback += 1
            self.last_route = {"kind": "fallback", "shards": None}
            return None
        if kind == "routed":
            index = route.table.shard_index(route.getter())
            executor = self._shard_executor(route.names, index)
            rows = executor.execute(plan)
            self.stats.routed += 1
            self.last_route = {"kind": "routed", "shards": (index,)}
            self.last_tier = executor.last_tier
            self.last_fallback_reason = executor.last_fallback_reason
            self.last_execution_path = executor.last_execution_path
            return rows
        count = self._shard_count(route.names)
        self.last_route = {"kind": kind, "shards": tuple(range(count))}
        self.last_parallel = None
        parallel = self._pool is not None and count > 1
        if kind == "local-aggregate":
            partial = route.partial
            if parallel:
                indexed = self._parallel_scatter(
                    partial.plan, route.names, count
                )
                merged = partial.merge_indexed(indexed)
            else:
                merged = partial.merge(
                    self._scatter(partial.plan, route.names, count)
                )
            rows = route.apply_post(merged)
            self.stats.local += 1
            if self.last_parallel is not None:
                self.last_route["parallel"] = self.last_parallel
            return rows
        # scatter (single sharded table) / local (co-partitioned join)
        if parallel and route.merge is not None:
            # Each shard executes the original plan, Sort included, and
            # returns a sorted run; the gather k-way merges the runs
            # (stable by shard index) instead of re-sorting the concat.
            merge_node, merge_key = route.merge
            indexed = self._parallel_scatter(merge_node, route.names, count)
            rows = merge_sorted_runs(
                [shard_rows for _, shard_rows in indexed], merge_key
            )
        elif parallel:
            indexed = self._parallel_scatter(route.node, route.names, count)
            gathered: list[Row] = []
            for _, shard_rows in indexed:
                gathered.extend(shard_rows)
            rows = route.apply_post(gathered)
        else:
            rows = route.apply_post(
                self._scatter(route.node, route.names, count)
            )
        if kind == "local-join":
            self.stats.local += 1
        else:
            self.stats.scatter += 1
        if self.last_parallel is not None:
            self.last_route["parallel"] = self.last_parallel
        return rows

    def classify(self, plan: algebra.PlanNode) -> dict:
        """Routing class for ``plan`` without executing it (EXPLAIN path).

        Returns ``{"kind": ..., "shards": ...}`` where ``shards`` is the
        tuple of shard indices the plan would touch — a single index for a
        routed point access (when the shard-key value is already bound),
        every shard for scatter/local plans, and ``None`` when the shard
        set is unknown before execution.
        """
        route = self._route(plan)
        kind = route.kind
        if kind in ("not-sharded", "fallback"):
            return {"kind": kind, "shards": None}
        if kind == "routed":
            try:
                shards = (route.table.shard_index(route.getter()),)
            except Exception:  # shard-key value not computable yet
                shards = None
            return {"kind": kind, "shards": shards}
        count = self._shard_count(route.names)
        return {"kind": kind, "shards": tuple(range(count))}

    def invalidate(self) -> None:
        """Drop cached routes and shard executors (call on DDL).

        The dropped executors' tier/vectorized counters are folded into
        retired totals first, so :meth:`execution_counters` never loses
        history to DDL.
        """
        tiers, vectorized = self._sum_live_counters()
        merge_execution_counters(
            self._retired_tiers, self._retired_vectorized, tiers, vectorized
        )
        self._routes.clear()
        self._executors.clear()

    def execution_counters(self) -> tuple[dict[str, int], dict[str, Any]]:
        """Summed (tier counts, vectorized stats) of every shard executor.

        Routed / shard-local / scatter executions run on per-shard
        executors whose counters would otherwise be invisible; the owning
        database folds these into ``execution_stats()`` so per-tier and
        fallback-reason observability survives sharding.
        """
        tiers, vectorized = self._sum_live_counters()
        merge_execution_counters(
            tiers, vectorized, self._retired_tiers, self._retired_vectorized
        )
        return tiers, vectorized

    def _sum_live_counters(self) -> tuple[dict[str, int], dict[str, Any]]:
        tiers = {"vectorized": 0, "compiled": 0, "interpreted": 0}
        vectorized = _zero_vectorized_counters()
        for executor in self._executors.values():
            merge_execution_counters(
                tiers, vectorized, executor.tier_counts, executor.vectorized_stats
            )
        return tiers, vectorized

    def sharded_tables(self) -> dict[str, ShardedTable]:
        """Name -> sharded table, for every sharded table in the mapping."""
        return {
            name: table
            for name, table in self._tables.items()
            if isinstance(table, ShardedTable)
        }

    # -- execution -------------------------------------------------------

    def _shard_count(self, names: frozenset[str]) -> int:
        for name in names:
            return self._tables[name].shard_count  # type: ignore[union-attr]
        raise ShardingError("no sharded tables to scatter over")

    def _shard_executor(self, names: frozenset[str], index: int) -> Executor:
        key = (names, index)
        executor = self._executors.get(key)
        if executor is None:
            overlay = {
                name: (
                    table.shards[index]
                    if name in names and isinstance(table, ShardedTable)
                    else table
                )
                for name, table in self._tables.items()
            }
            executor = Executor(
                overlay, mode=self._mode, vector_backend=self._vector_backend
            )
            self._executors[key] = executor
        return executor

    def _scatter(
        self, node: algebra.PlanNode, names: frozenset[str], count: int
    ) -> list[Row]:
        """Execute ``node`` on every shard and gather, in shard order."""
        executors = [self._shard_executor(names, i) for i in range(count)]
        if self._mode == "vectorized":
            rows = self._scatter_codegen(executors, node)
            if rows is not None:
                self.last_tier = "vectorized"
                self.last_fallback_reason = None
                self.last_execution_path = "codegen"
                return rows
            rows = self._scatter_batches(executors, node)
            if rows is not None:
                self.last_tier = "vectorized"
                self.last_fallback_reason = None
                self.last_execution_path = "kernel"
                return rows
        if self._mode == "interpreted":
            self.last_tier = "interpreted"
            self.last_fallback_reason = None
            self.last_execution_path = "interpreted"
            return [
                row
                for executor in executors
                for row in executor.execute(node)
            ]
        # Compiled (and the vectorized row-fallback): chain the per-shard
        # fused iterators lazily; the gather materializes one output list.
        self.last_tier = "compiled"
        self.last_execution_path = "compiled"
        gathered: list[Row] = []
        for executor in executors:
            gathered.extend(executor._execute(node))
            executor.tier_counts["compiled"] += 1
        return gathered

    def _scatter_codegen(
        self, executors: Sequence[Executor], node: algebra.PlanNode
    ) -> Optional[list[Row]]:
        """Codegen scatter: run the fused pipeline per shard, concatenate.

        The gather node concatenates shard results in shard order (see
        ``gather_batches``), so running each shard's compiled pipeline and
        chaining the row lists is row-identical to the batch path.  Every
        shard must take the codegen path — one decline (unsupported spine,
        codegen disabled, compile/run error) sends the whole scatter to the
        batch-kernel gather instead.
        """
        rows: list[Row] = []
        for executor in executors:
            shard_rows = executor._vectorized.try_codegen_rows(node)
            if shard_rows is None:
                return None
            rows.extend(shard_rows)
        for executor in executors:
            executor._vectorized.executions += 1
            executor._vectorized.codegen_executions += 1
            executor.tier_counts["vectorized"] += 1
        return rows

    def _scatter_batches(
        self, executors: Sequence[Executor], node: algebra.PlanNode
    ) -> Optional[list[Row]]:
        """Vectorized scatter: gather per-shard ColumnBatches, then
        materialize rows exactly once at the gather root.

        Returns ``None`` when any shard has no vectorized lowering or a
        kernel errors (the row-tier scatter takes over), mirroring the
        single-node tier's fallback contract.
        """
        batches = []
        for executor in executors:
            vectorized = executor._vectorized
            op = vectorized._op(node)
            if op is None:
                vectorized.fallbacks += 1
                vectorized._count_reason(vectorized._last_reason)
                self.last_fallback_reason = vectorized._last_reason
                return None
            try:
                batches.append(op())
            except ExecutionError:
                raise
            except Exception:
                vectorized.fallbacks += 1
                vectorized._count_reason("kernel_error")
                self.last_fallback_reason = "kernel_error"
                return None
        gathered = gather_batches(batches)
        if gathered is None:
            self.last_fallback_reason = "unsupported_operator"
            return None
        try:
            rows = executors[0]._vectorized._materialize(gathered)
        except Exception:
            executors[0]._vectorized.fallbacks += 1
            executors[0]._vectorized._count_reason("kernel_error")
            self.last_fallback_reason = "kernel_error"
            return None
        for executor in executors:
            executor._vectorized.executions += 1
            executor.tier_counts["vectorized"] += 1
        return rows

    # -- parallel scatter ------------------------------------------------

    def _parallel_scatter(
        self, node: algebra.PlanNode, names: frozenset[str], count: int
    ) -> list[tuple[int, list[Row]]]:
        """Execute ``node`` on every shard concurrently on the pool.

        Returns ``(shard index, rows)`` pairs in shard order.  Thread mode
        runs each shard's full executor dispatch (so every tier, fallback,
        and counter behaves exactly as its serial per-shard execution
        would); process mode ships the plan + packed column payloads to
        worker processes and degrades to the thread path when the plan or
        a payload refuses to pickle or the pool breaks.
        """
        pool = self._pool
        assert pool is not None
        if pool.mode == "process":
            indexed = self._process_scatter(node, names, count)
            if indexed is not None:
                return indexed
            pool.degraded += 1
        executors = [self._shard_executor(names, i) for i in range(count)]
        tasks = [
            (lambda executor=executor: executor.execute(node))
            for executor in executors
        ]
        results, seconds = pool.run_tasks(tasks)
        pool.note_scatter(seconds)
        self.last_parallel = {
            "mode": pool.mode,
            "workers": pool.workers,
            "shards": count,
            "shard_seconds": tuple(seconds),
            "elapsed": max(seconds, default=0.0),
        }
        self._fold_markers(
            [
                (
                    executor.last_tier,
                    executor.last_execution_path,
                    executor.last_fallback_reason,
                )
                for executor in executors
            ]
        )
        return list(enumerate(results))

    def _process_scatter(
        self, node: algebra.PlanNode, names: frozenset[str], count: int
    ) -> Optional[list[tuple[int, list[Row]]]]:
        """Process-pool scatter; ``None`` degrades to the thread path.

        Shard data ships as packed typed/dictionary column buffers keyed
        by ``(table, shard, version)`` — workers cache them, so steady
        state ships only the (cached) plan blob.  Results come back as
        pickled ColumnBatches; executor counter deltas from the workers
        fold into the parent-side shard executors so
        ``execution_stats()`` stays complete.
        """
        pool = self._pool
        assert pool is not None
        try:
            plan_blob = pickle.dumps(node, pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        scans = sorted({scan.table for scan in algebra.find_scans(node)})
        requests = []
        for index in range(count):
            keys = []
            for name in scans:
                table = self._tables[name]
                if name in names and isinstance(table, ShardedTable):
                    keys.append(
                        ((name, index, table.shards[index].version), None)
                    )
                else:
                    keys.append(((name, -1, table.version), None))
            requests.append(
                {
                    "plan": plan_blob,
                    "mode": self._mode,
                    "backend": self._vector_backend,
                    "tables": keys,
                }
            )

        def provide(key: tuple) -> tuple:
            name, shard, _version = key
            table = self._tables[name]
            if shard >= 0:
                table = table.shards[shard]  # type: ignore[union-attr]
            return pack_table(table)

        sent_before = pool.pickle_bytes_sent
        received_before = pool.pickle_bytes_received
        try:
            responses, seconds = pool.run_process_requests(requests, provide)
        except (pickle.PicklingError, BrokenProcessPool):
            return None
        pool.note_scatter(seconds)
        self.last_parallel = {
            "mode": pool.mode,
            "workers": pool.workers,
            "shards": count,
            "shard_seconds": tuple(seconds),
            "elapsed": max(seconds, default=0.0),
            "pickle_bytes": {
                "sent": pool.pickle_bytes_sent - sent_before,
                "received": pool.pickle_bytes_received - received_before,
            },
        }
        indexed: list[tuple[int, list[Row]]] = []
        markers = []
        for index, response in enumerate(responses):
            rows = batch_output_rows(unpack_batch(response["result"]))
            executor = self._shard_executor(names, index)
            fold_worker_counters(
                executor, response["tiers"], response["vectorized"]
            )
            markers.append(response["last"])
            indexed.append((index, rows))
        self._fold_markers(markers)
        return indexed

    def _fold_markers(self, markers: list[tuple]) -> None:
        """Fold per-shard (tier, path, reason) markers into the route's.

        All-vectorized scatters report the vectorized tier (``codegen``
        only when every shard ran codegen, like the serial all-or-nothing
        rule); otherwise the first shard that fell to a row tier names the
        tier and fallback reason, mirroring the serial row-fallback
        marker.
        """
        if not markers:
            return
        if all(tier == "vectorized" for tier, _, _ in markers):
            self.last_tier = "vectorized"
            paths = {path for _, path, _ in markers}
            self.last_execution_path = (
                paths.pop() if len(paths) == 1 else "kernel"
            )
            self.last_fallback_reason = None
            return
        for tier, _, reason in markers:
            if tier != "vectorized":
                self.last_tier = tier
                self.last_execution_path = tier
                self.last_fallback_reason = reason
                return

    # -- classification --------------------------------------------------

    def _route(self, plan: algebra.PlanNode) -> _Route:
        try:
            cached = self._routes.get(plan)
        except TypeError:  # unhashable literal buried in the plan
            return self._classify(plan)
        if cached is None:
            cached = self._classify(plan)
            if len(self._routes) >= self.ROUTE_CACHE_LIMIT:
                self._routes.popitem(last=False)
            self._routes[plan] = cached
        else:
            self._routes.move_to_end(plan)
        return cached

    def _classify(self, plan: algebra.PlanNode) -> _Route:
        sharded = [
            (scan, table)
            for scan in algebra.find_scans(plan)
            if isinstance(table := self._tables.get(scan.table), ShardedTable)
        ]
        if not sharded:
            return _NOT_SHARDED
        routed = self._point_route(plan, sharded)
        if routed is not None:
            return routed
        # A partially-aggregated route: peel the Select/Project/Sort spine
        # above an Aggregate (SQL aggregates parse as Project(Aggregate));
        # the spine re-applies over the merged rows at the gather node.
        spine: list[algebra.PlanNode] = []
        node: algebra.PlanNode = plan
        while isinstance(node, (algebra.Sort, algebra.Project, algebra.Select)):
            spine.append(node)
            node = node.child
        if isinstance(node, algebra.Aggregate):
            child_class = self._distribute(node.child)
            if child_class is None or not child_class[1]:
                return _FALLBACK
            return _Route(
                "local-aggregate",
                names=child_class[1],
                post=tuple(self._compile_spine(spine)),
                partial=_PartialAggregate(node),
            )
        # Scatter / co-partitioned join: Select and Project distribute into
        # the per-shard plans; only a root Sort runs at the gather node
        # (serial), or turns into a sorted-run k-way merge (parallel).
        node = plan
        post: tuple = ()
        merge: Optional[tuple] = None
        if isinstance(node, algebra.Sort):
            post = (self._compile_sort(node),)
            merge = (plan, self._compile_merge_key(node))
            node = node.child
        distributed = self._distribute(node)
        if distributed is None or not distributed[1]:
            return _FALLBACK
        kind, names = distributed
        return _Route(
            "local-join" if len(names) > 1 else "scatter",
            names=names,
            node=node,
            post=post,
            merge=merge,
        )

    def _compile_spine(
        self, spine: list[algebra.PlanNode]
    ) -> list[Callable[[list[Row]], list[Row]]]:
        """Row-list transforms for a Select/Project/Sort spine, in
        application (innermost-first) order.

        Expressions compile without a resolver, which is exactly how the
        tiers evaluate them over materialized aggregate output rows, so
        spine semantics (including errors) cannot diverge.
        """
        transforms: list[Callable[[list[Row]], list[Row]]] = []
        for node in reversed(spine):
            if isinstance(node, algebra.Select):
                conjuncts = [
                    conjunct.compile()
                    for conjunct in _flatten_and(node.predicate)
                ]

                def filter_rows(rows, conjuncts=conjuncts):
                    for evaluate in conjuncts:
                        rows = [row for row in rows if evaluate(row)]
                    return rows

                transforms.append(filter_rows)
            elif isinstance(node, algebra.Project):
                outputs = [
                    (output.name, output.expression.compile())
                    for output in node.outputs
                ]

                def project_rows(rows, outputs=outputs):
                    return [
                        {name: evaluate(row) for name, evaluate in outputs}
                        for row in rows
                    ]

                transforms.append(project_rows)
            else:
                transforms.append(self._compile_sort(node))
        return transforms

    def _compile_sort(
        self, sort: algebra.Sort
    ) -> Callable[[list[Row]], list[Row]]:
        """A root ``Sort`` applied at the gather node (stable, like the tiers)."""
        keys = [(key.column.compile(), key.ascending) for key in sort.keys]

        def sort_rows(rows: list[Row]) -> list[Row]:
            for evaluate, ascending in reversed(keys):
                rows.sort(
                    key=lambda row: _sort_key(evaluate(row)),
                    reverse=not ascending,
                )
            return rows

        return sort_rows

    def _compile_merge_key(
        self, sort: algebra.Sort
    ) -> Callable[[Row], tuple]:
        """A single total-order key for k-way merging sorted shard runs.

        Equivalent to :meth:`_compile_sort`'s stable multi-pass sort: one
        tuple over all sort keys, with ``DESC`` components wrapped in
        :class:`_Descending` so ascending tuple comparison realises the
        mixed-direction order.  ``heapq.merge`` is stable by input order
        on ties, and runs are merged in shard-index order, so tie order
        matches the serial concatenate-then-stable-sort exactly.
        """
        keys = [(key.column.compile(), key.ascending) for key in sort.keys]

        def merge_key(row: Row) -> tuple:
            return tuple(
                _sort_key(evaluate(row))
                if ascending
                else _Descending(_sort_key(evaluate(row)))
                for evaluate, ascending in keys
            )

        return merge_key

    # -- point routing ---------------------------------------------------

    def _point_route(
        self,
        plan: algebra.PlanNode,
        sharded: list[tuple[algebra.Scan, ShardedTable]],
    ) -> Optional[_Route]:
        """Detect a shard-key point predicate that pins the plan to one shard.

        The pin must preserve not only the result rows but the engine's
        strict error semantics (a predicate error raised on *any* scanned
        row surfaces identically on every tier).  That holds exactly when
        the shard-key equality ``shard_key = <literal | parameter slot>``
        is the **first predicate applied** to the scanned rows: unsharded
        execution then short-circuits every other shard's row on that same
        conjunct, so later predicates only ever see the pinned shard's
        rows.  Concretely: walking up from the sharded table's (only)
        scan, every node below the innermost ``Select`` must be
        error-transparent and row-preserving (``Sort``, equi-/cross-joins
        — their key evaluation never raises user-visible errors), and that
        Select's first flattened conjunct must be the shard-key equality.
        Operators *above* the Select are unconstrained — shard partitions
        preserve global relative row order, so the filtered stream is
        identical either way.  The comparison value is read at execution
        time (parameter slots resolve from the statement buffer), so one
        prepared template routes each execution to the right shard.
        """
        scanned_names = [scan.table for scan, _ in sharded]
        for scan, table in sharded:
            if scanned_names.count(scan.table) > 1:
                continue  # self-join of a sharded table: no single pin
            path = _path_to(plan, scan)
            if path is None:
                continue
            for node in reversed(path[:-1]):  # just above the scan, upward
                if isinstance(node, algebra.Select):
                    # Binding is judged in the Select's input subtree: the
                    # conjunct evaluates on those rows, so renames or
                    # same-named columns above the Select are irrelevant.
                    getter = self._shard_key_equality(
                        _flatten_and(node.predicate)[0],
                        scan,
                        table,
                        node.child,
                    )
                    if getter is not None:
                        return _Route(
                            "routed",
                            names=frozenset({scan.table}),
                            table=table,
                            getter=getter,
                        )
                    break  # inner predicates run first: no outer pin
                if isinstance(node, algebra.Sort):
                    continue
                if isinstance(node, algebra.Join) and (
                    node.condition is None
                    or _equi_join_columns(node.condition) is not None
                ):
                    continue  # key getters swallow per-row errors
                break  # Project/Aggregate/Limit/theta join: unsound
        return None

    def _shard_key_equality(
        self,
        conjunct: Expression,
        scan: algebra.Scan,
        table: ShardedTable,
        context: algebra.PlanNode,
    ) -> Optional[Callable[[], Any]]:
        """A value getter when ``conjunct`` is ``shard_key = const-like``.

        ``context`` is the subtree producing the rows the conjunct
        evaluates on (the Select's child, or a join side).
        """
        if not isinstance(conjunct, BinaryOp) or conjunct.op not in {"=", "=="}:
            return None
        for column, value in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if isinstance(column, ColumnRef) and isinstance(
                value, (Literal, ParameterSlot)
            ):
                break
        else:
            return None
        if column.name != table.shard_key:
            return None
        if not self._binds_to_scan(column, scan, context):
            return None
        if isinstance(value, Literal):
            constant = value.value
            return lambda: constant
        slots, index = value.slots, value.index
        return lambda: slots[index]

    def _binds_to_scan(
        self, column: ColumnRef, scan: algebra.Scan, plan: algebra.PlanNode
    ) -> bool:
        """True when ``column`` statically resolves to ``scan``'s table."""
        alias = scan.effective_alias
        if column.qualifier is not None:
            return column.qualifier == alias
        # Bare reference: only safe when nothing else in the plan exposes
        # the same column name — another table's schema, or a Project /
        # Aggregate output renamed to it — since the row layout would make
        # the reference ambiguous or bind it elsewhere.
        for other in algebra.find_scans(plan):
            if other is scan:
                continue
            other_table = self._tables.get(other.table)
            if other_table is None:
                continue
            if other_table.schema.has_column(column.name):
                return False
        return not _renames_column(plan, column.name)

    # -- distributability ------------------------------------------------

    def _distribute(
        self, plan: algebra.PlanNode
    ) -> Optional[tuple[str, frozenset[str]]]:
        """Classify a subtree for per-shard execution.

        Returns ``("whole", frozenset())`` when the subtree references no
        sharded tables (it may be executed intact inside every shard's
        overlay — broadcast), ``("sharded", names)`` when substituting the
        shards of ``names`` (all with equal shard counts) makes the union
        of per-shard results equal the global result, or ``None`` when the
        subtree cannot be distributed (the plan then falls back to the
        aggregate view).
        """
        if isinstance(plan, algebra.Scan):
            table = self._tables.get(plan.table)
            if isinstance(table, ShardedTable):
                return ("sharded", frozenset({plan.table}))
            return ("whole", frozenset())
        if isinstance(plan, (algebra.Select, algebra.Project)):
            return self._distribute(plan.child)
        if isinstance(plan, algebra.Join):
            return self._distribute_join(plan)
        # Aggregate / Sort / Limit inside the tree: only safe when the
        # subtree is entirely unsharded (broadcast).
        if not any(
            isinstance(self._tables.get(scan.table), ShardedTable)
            for scan in algebra.find_scans(plan)
        ):
            return ("whole", frozenset())
        return None

    def _distribute_join(
        self, plan: algebra.Join
    ) -> Optional[tuple[str, frozenset[str]]]:
        left = self._distribute(plan.left)
        right = self._distribute(plan.right)
        if left is None or right is None:
            return None
        left_names, right_names = left[1], right[1]
        if not left_names and not right_names:
            return ("whole", frozenset())
        if not left_names or not right_names:
            # One sharded side, one broadcast side: an inner join (any
            # condition, including theta and cross) distributes over the
            # union of the sharded side's partitions.
            return ("sharded", left_names | right_names)
        # Both sides sharded: only co-partitioned equi-joins on the shard
        # keys keep per-shard execution equivalent.
        condition = plan.condition
        if not isinstance(condition, BinaryOp) or condition.op not in {
            "=",
            "==",
        }:
            return None
        lhs, rhs = condition.left, condition.right
        if not isinstance(lhs, ColumnRef) or not isinstance(rhs, ColumnRef):
            return None
        names = left_names | right_names
        counts = {
            self._tables[name].shard_count  # type: ignore[union-attr]
            for name in names
        }
        if len(counts) != 1:
            return None
        for probe, build in ((lhs, rhs), (rhs, lhs)):
            if self._binds_to_shard_key(
                probe, plan.left, left_names
            ) and self._binds_to_shard_key(build, plan.right, right_names):
                return ("sharded", names)
        return None

    def _binds_to_shard_key(
        self,
        column: ColumnRef,
        side: algebra.PlanNode,
        names: frozenset[str],
    ) -> bool:
        """True when ``column`` is the shard key of a sharded scan in ``side``."""
        for scan in algebra.find_scans(side):
            if scan.table not in names:
                continue
            table = self._tables.get(scan.table)
            if not isinstance(table, ShardedTable):
                continue
            if column.name != table.shard_key:
                continue
            path = _path_to(side, scan)
            if path is None or not _row_preserving_path(path[1:]):
                # A Project/Aggregate between the side's root and the scan
                # could rename another column to the shard key's name.
                continue
            if self._binds_to_scan(column, scan, side):
                return True
        return False


def _path_to(
    plan: algebra.PlanNode, target: algebra.PlanNode
) -> Optional[list[algebra.PlanNode]]:
    """The root-to-``target`` node path in ``plan`` (identity match)."""
    if plan is target:
        return [plan]
    for child in plan.children():
        path = _path_to(child, target)
        if path is not None:
            return [plan] + path
    return None


def _row_preserving_path(nodes: Sequence[algebra.PlanNode]) -> bool:
    """True when every node keeps the scanned rows' set and column names.

    ``Select`` / ``Join`` / ``Sort`` never drop a matching row or rename a
    column; ``Limit`` picks *different* rows when the scan is restricted to
    one shard, and ``Project`` / ``Aggregate`` can rename another column to
    the shard key's name — either would make a shard-key binding unsound.
    """
    return all(
        isinstance(node, (algebra.Select, algebra.Join, algebra.Sort, algebra.Scan))
        for node in nodes
    )


#: The summable int counters of a vectorized-stats dict; everything the
#: executor reports beyond these must be mergeable as fallback_reasons is,
#: or attached above the merge (Database.execution_stats does the latter
#: for the backend names and column-encoding census).
VECTORIZED_COUNTER_KEYS = (
    "executions",
    "codegen_executions",
    "pipelines_compiled",
    "codegen_cache_hits",
    "codegen_errors",
    "fallbacks",
    "subtree_fallbacks",
)


def _zero_vectorized_counters() -> dict[str, Any]:
    zeros: dict[str, Any] = dict.fromkeys(VECTORIZED_COUNTER_KEYS, 0)
    zeros["fallback_reasons"] = {}
    return zeros


def merge_execution_counters(
    tiers_into: dict[str, int],
    vectorized_into: dict[str, Any],
    tiers_from: Mapping[str, int],
    vectorized_from: Mapping[str, Any],
) -> None:
    """Fold one (tier counts, vectorized stats) pair into another, in place.

    Shared by the router's live/retired folding and the database's
    ``execution_stats()`` aggregation, so a new vectorized counter only
    needs to be added in one place.
    """
    for tier, count in tiers_from.items():
        tiers_into[tier] = tiers_into.get(tier, 0) + count
    for key in VECTORIZED_COUNTER_KEYS:
        vectorized_into[key] += vectorized_from.get(key, 0)
    reasons = vectorized_into["fallback_reasons"]
    for reason, count in vectorized_from["fallback_reasons"].items():
        reasons[reason] = reasons.get(reason, 0) + count


def _renames_column(plan: algebra.PlanNode, name: str) -> bool:
    """True when any Project/Aggregate output in ``plan`` is named ``name``."""
    for node in algebra.walk(plan):
        if isinstance(node, algebra.Project):
            if any(output.name == name for output in node.outputs):
                return True
        elif isinstance(node, algebra.Aggregate):
            if any(spec.name == name for spec in node.aggregates):
                return True
    return False
