"""Table statistics and cardinality estimation.

COBRA's cost model needs, for every query alternative, an estimate of

* ``NQ`` — the number of rows in the result,
* ``Srow(Q)`` — the byte width of a result row, and
* the server-side execution time (time-to-first-row and time-to-last-row).

This module maintains per-table statistics (row count, distinct values per
column) and estimates output cardinality and row width for an algebra plan
using textbook System-R style formulas:

* selection on ``col = const``      →  input / distinct(col)
* selection on range predicates     →  input * 1/3
* other selections                  →  input * default selectivity
* equi-join on ``a = b``            →  |L| * |R| / max(distinct(a), distinct(b))
* grouped aggregation               →  product of group-key distinct counts
  (capped at input cardinality); scalar aggregation → 1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.db import algebra
from repro.db.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
)
from repro.db.schema import Schema
from repro.db.table import Table

#: Selectivity used when nothing better can be derived (matches the paper's
#: Wilos setup where a 20% selectivity is used for synthetic predicates).
DEFAULT_SELECTIVITY = 0.2

#: Selectivity for range predicates (<, <=, >, >=).
RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass
class TableStatistics:
    """Statistics for one table."""

    row_count: int = 0
    distinct: dict[str, int] = field(default_factory=dict)
    row_width: int = 0

    def distinct_count(self, column: str) -> int:
        """Distinct values in ``column`` (at least 1, at most row_count)."""
        column = column.split(".")[-1]
        count = self.distinct.get(column)
        if count is None or count <= 0:
            count = max(1, self.row_count)
        return max(1, min(count, max(1, self.row_count)))


class StatisticsCatalog:
    """Catalog of per-table statistics plus plan-level estimation."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._stats: dict[str, TableStatistics] = {}
        #: sharded table name -> per-shard statistics (see refresh()).
        self._shard_stats: dict[str, list[TableStatistics]] = {}
        # Plan-keyed memo tables.  Plan nodes are immutable value objects
        # (frozen dataclasses), so structurally identical plans — e.g. the
        # same SQL text parsed twice by two cost-model instances — hit the
        # same entry.  Both caches are dropped whenever the underlying table
        # statistics change.
        self._cardinality_cache: dict[algebra.PlanNode, float] = {}
        self._width_cache: dict[algebra.PlanNode, int] = {}
        # id(plan) -> runtime observation record (see observe()); bounded.
        # Keyed by identity, not structure: observations arrive on the hot
        # execution path where a recursive plan hash per query would be
        # measurable tracing overhead, and the caller (a prepared
        # statement's long-lived plan object) is identity-stable.  Each
        # record keeps a strong reference to its plan so the id cannot be
        # recycled while the record lives.
        self._observations: dict[int, dict] = {}
        #: bumped when estimates invalidate; observation records re-derive
        #: their cached estimate lazily when their epoch falls behind.
        self._estimate_epoch = 0
        #: runtime cardinalities offered back to the catalog, and how many
        #: of them disagreed with the estimate by more than DRIFT_RATIO.
        self.observation_count = 0
        self.drift_events = 0

    #: estimate-vs-actual ratio beyond which an observation counts as drift.
    DRIFT_RATIO = 2.0
    #: plans tracked individually before the oldest record is dropped.
    OBSERVATION_LIMIT = 512

    # -- maintenance -----------------------------------------------------

    def refresh(self, tables: Mapping[str, Table]) -> None:
        """Recompute statistics from current table contents (ANALYZE).

        Sharded tables are analysed **per shard** and the partials merged:
        row counts sum, and the shard key's distinct count is the exact sum
        of the per-shard counts (hash partitions are disjoint in the shard
        key).  Other columns fall back to the aggregate view's exact
        distinct count.  The per-shard statistics are retained
        (:meth:`shard_stats`) for balance diagnostics and future per-shard
        costing.
        """
        self._stats.clear()
        self._shard_stats.clear()
        self._invalidate_estimates()
        for name, table in tables.items():
            shards = getattr(table, "shards", None)
            if shards is not None:
                self._stats[name] = self._refresh_sharded(name, table, shards)
                continue
            stats = TableStatistics(
                row_count=len(table),
                row_width=table.row_width,
            )
            for column in table.schema.columns:
                stats.distinct[column.name] = table.distinct_count(column.name)
            self._stats[name] = stats

    def _refresh_sharded(
        self, name: str, table: Table, shards: Sequence[Table]
    ) -> TableStatistics:
        """Per-shard statistics plus their merged table-level aggregate."""
        per_shard: list[TableStatistics] = []
        for shard in shards:
            stats = TableStatistics(
                row_count=len(shard),
                row_width=shard.row_width,
            )
            for column in shard.schema.columns:
                stats.distinct[column.name] = shard.distinct_count(column.name)
            per_shard.append(stats)
        self._shard_stats[name] = per_shard
        shard_key = getattr(table, "shard_key", None)
        merged = TableStatistics(
            row_count=sum(stats.row_count for stats in per_shard),
            row_width=table.row_width,
        )
        for column in table.schema.columns:
            if column.name == shard_key:
                # Hash partitions are disjoint in the shard key: the sum of
                # per-shard distinct counts is exact.
                merged.distinct[column.name] = sum(
                    stats.distinct.get(column.name, 0) for stats in per_shard
                )
            else:
                merged.distinct[column.name] = table.distinct_count(column.name)
        return merged

    def shard_stats(self, table: str) -> Optional[list[TableStatistics]]:
        """Per-shard statistics of ``table`` (None when not sharded)."""
        return self._shard_stats.get(table)

    def set_table_stats(self, table: str, stats: TableStatistics) -> None:
        """Install statistics for ``table`` explicitly (used by tests and by
        the analytical full-scale experiments where data is not materialised)."""
        self._stats[table] = stats
        self._invalidate_estimates()

    def _invalidate_estimates(self) -> None:
        self._cardinality_cache.clear()
        self._width_cache.clear()
        self._estimate_epoch += 1

    def table_stats(self, table: str) -> TableStatistics:
        """Statistics for ``table`` (empty statistics if never analysed)."""
        return self._stats.get(table, TableStatistics())

    # -- runtime feedback ------------------------------------------------

    def observe(self, plan: algebra.PlanNode, actual_rows: float) -> bool:
        """Record the actual output cardinality a run of ``plan`` produced.

        Returns True when the observation *drifted*: the optimizer's
        estimate and the runtime actual disagree by more than
        :data:`DRIFT_RATIO` in either direction.  This is the mechanism
        half of the optimizer/runtime feedback loop — observations and
        drift are counted (globally and per plan) for a future
        re-optimization policy to act on; nothing is re-planned here.
        """
        record = self._observations.get(id(plan))
        if record is None:
            if len(self._observations) >= self.OBSERVATION_LIMIT:
                self._observations.pop(next(iter(self._observations)))
            record = {"plan": plan, "observations": 0, "drift_events": 0}
            self._observations[id(plan)] = record
        if record.get("epoch") != self._estimate_epoch:
            record["epoch"] = self._estimate_epoch
            record["last_estimate"] = self.estimate_cardinality(plan)
        estimate = record["last_estimate"]
        ratio = max(float(actual_rows), 1.0) / max(estimate, 1.0)
        drifted = ratio >= self.DRIFT_RATIO or ratio <= 1.0 / self.DRIFT_RATIO
        self.observation_count += 1
        if drifted:
            self.drift_events += 1
        record["observations"] += 1
        record["last_actual"] = float(actual_rows)
        if drifted:
            record["drift_events"] += 1
        return drifted

    def observed(self, plan: algebra.PlanNode) -> Optional[dict]:
        """The per-plan observation record, or ``None`` if untracked."""
        record = self._observations.get(id(plan))
        if record is None:
            return None
        return {
            key: value
            for key, value in record.items()
            if key not in ("plan", "epoch")
        }

    def feedback_stats(self) -> dict:
        """Counters for the runtime-feedback mechanism."""
        return {
            "observations": self.observation_count,
            "drift_events": self.drift_events,
            "plans_tracked": len(self._observations),
        }

    # -- estimation ------------------------------------------------------

    def estimate_cardinality(self, plan: algebra.PlanNode) -> float:
        """Estimated number of output rows of ``plan`` (memoised)."""
        try:
            cached = self._cardinality_cache.get(plan)
        except TypeError:  # unhashable literal buried in a predicate
            return self._estimate_cardinality(plan)
        if cached is None:
            cached = self._estimate_cardinality(plan)
            self._cardinality_cache[plan] = cached
        return cached

    def _estimate_cardinality(self, plan: algebra.PlanNode) -> float:
        if isinstance(plan, algebra.Scan):
            return float(self.table_stats(plan.table).row_count)
        if isinstance(plan, algebra.Select):
            child = self.estimate_cardinality(plan.child)
            return child * self._selectivity(plan.predicate, plan.child)
        if isinstance(plan, algebra.Project):
            return self.estimate_cardinality(plan.child)
        if isinstance(plan, algebra.Join):
            return self._estimate_join(plan)
        if isinstance(plan, algebra.Aggregate):
            return self._estimate_aggregate(plan)
        if isinstance(plan, algebra.Sort):
            return self.estimate_cardinality(plan.child)
        if isinstance(plan, algebra.Limit):
            return min(float(plan.count), self.estimate_cardinality(plan.child))
        raise TypeError(f"cannot estimate cardinality of {type(plan).__name__}")

    def estimate_row_width(self, plan: algebra.PlanNode) -> int:
        """Estimated byte width of one output row of ``plan`` (memoised)."""
        try:
            cached = self._width_cache.get(plan)
        except TypeError:
            return self._estimate_row_width(plan)
        if cached is None:
            cached = self._estimate_row_width(plan)
            self._width_cache[plan] = cached
        return cached

    def _estimate_row_width(self, plan: algebra.PlanNode) -> int:
        if isinstance(plan, algebra.Scan):
            stats = self.table_stats(plan.table)
            if stats.row_width:
                return stats.row_width
            if self._schema.has_table(plan.table):
                return self._schema.table(plan.table).row_width
            return 64
        if isinstance(plan, (algebra.Select, algebra.Sort, algebra.Limit)):
            return self.estimate_row_width(plan.child)
        if isinstance(plan, algebra.Project):
            return self._width_of_outputs(plan)
        if isinstance(plan, algebra.Join):
            return self.estimate_row_width(plan.left) + self.estimate_row_width(
                plan.right
            )
        if isinstance(plan, algebra.Aggregate):
            width = 8 * len(plan.aggregates)
            width += 8 * len(plan.group_by)
            return max(width, 8)
        raise TypeError(f"cannot estimate row width of {type(plan).__name__}")

    def estimate_server_time(
        self, plan: algebra.PlanNode, per_row_cost: float = 2e-6
    ) -> tuple[float, float]:
        """Estimate (time-to-first-row, time-to-last-row) on the server.

        A simple model: every operator touches its input cardinality once at
        ``per_row_cost`` seconds per row.  Pipelined operators (scan, select,
        project) emit their first row immediately; blocking operators (sort,
        aggregate, hash-join build side) must consume their input before the
        first output row.
        """
        total = self._estimate_work(plan) * per_row_cost
        first = total if self._is_blocking(plan) else per_row_cost
        return (min(first, total), total)

    # -- internals -------------------------------------------------------

    def _width_of_outputs(self, plan: algebra.Project) -> int:
        width = 0
        for output in plan.outputs:
            width += self._expression_width(output.expression, plan.child)
        return max(width, 8)

    def _expression_width(
        self, expression: Expression, child: algebra.PlanNode
    ) -> int:
        if isinstance(expression, ColumnRef):
            name = expression.name
            for scan in algebra.find_scans(child):
                if self._schema.has_table(scan.table):
                    schema = self._schema.table(scan.table)
                    if schema.has_column(name):
                        return schema.column(name).byte_width
            return 8
        return 8

    def _selectivity(
        self, predicate: Expression, child: algebra.PlanNode
    ) -> float:
        if isinstance(predicate, BooleanOp):
            selectivities = [
                self._selectivity(op, child) for op in predicate.operands
            ]
            if predicate.op == "and":
                result = 1.0
                for s in selectivities:
                    result *= s
                return result
            # OR: inclusion-exclusion upper bound, capped at 1.
            return min(1.0, sum(selectivities))
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self._selectivity(predicate.operand, child))
        if isinstance(predicate, IsNull):
            return 0.1
        if isinstance(predicate, InList):
            base = self._equality_selectivity(predicate.operand, child)
            return min(1.0, base * max(1, len(predicate.values)))
        if isinstance(predicate, BinaryOp):
            if predicate.op in {"=", "=="}:
                # Column = constant-like (literal or bound-later parameter):
                # selectivity 1 / distinct(column).
                if isinstance(predicate.left, ColumnRef) and not isinstance(
                    predicate.right, ColumnRef
                ):
                    return self._equality_selectivity(predicate.left, child)
                if isinstance(predicate.right, ColumnRef) and not isinstance(
                    predicate.left, ColumnRef
                ):
                    return self._equality_selectivity(predicate.right, child)
                return DEFAULT_SELECTIVITY
            if predicate.op in {"<", "<=", ">", ">="}:
                return RANGE_SELECTIVITY
            if predicate.op in {"!=", "<>"}:
                return 1.0 - self._equality_selectivity_any(predicate, child)
        return DEFAULT_SELECTIVITY

    def _equality_selectivity_any(
        self, predicate: BinaryOp, child: algebra.PlanNode
    ) -> float:
        for side in (predicate.left, predicate.right):
            if isinstance(side, ColumnRef):
                return self._equality_selectivity(side, child)
        return DEFAULT_SELECTIVITY

    def _equality_selectivity(
        self, expression: Expression, child: algebra.PlanNode
    ) -> float:
        if not isinstance(expression, ColumnRef):
            return DEFAULT_SELECTIVITY
        distinct = self._distinct_for(expression, child)
        if distinct is None:
            return DEFAULT_SELECTIVITY
        return 1.0 / max(1, distinct)

    def _distinct_for(
        self, column: ColumnRef, child: algebra.PlanNode
    ) -> Optional[int]:
        name = column.name
        qualifier = column.qualifier
        for scan in algebra.find_scans(child):
            if qualifier and scan.effective_alias != qualifier:
                continue
            stats = self.table_stats(scan.table)
            if name in stats.distinct or (
                self._schema.has_table(scan.table)
                and self._schema.table(scan.table).has_column(name)
            ):
                return stats.distinct_count(name)
        return None

    def _estimate_join(self, plan: algebra.Join) -> float:
        left = self.estimate_cardinality(plan.left)
        right = self.estimate_cardinality(plan.right)
        if plan.condition is None:
            return left * right
        if isinstance(plan.condition, BinaryOp) and plan.condition.op in {
            "=",
            "==",
        }:
            lhs, rhs = plan.condition.left, plan.condition.right
            if isinstance(lhs, ColumnRef) and isinstance(rhs, ColumnRef):
                d_left = self._distinct_for(lhs, plan) or 1
                d_right = self._distinct_for(rhs, plan) or 1
                return left * right / max(d_left, d_right, 1)
        return left * right * DEFAULT_SELECTIVITY

    def _estimate_aggregate(self, plan: algebra.Aggregate) -> float:
        child = self.estimate_cardinality(plan.child)
        if not plan.group_by:
            return 1.0
        groups = 1.0
        for key in plan.group_by:
            groups *= self._distinct_for(key, plan.child) or max(1.0, child**0.5)
        return min(groups, child) if child else 0.0

    def _estimate_work(self, plan: algebra.PlanNode) -> float:
        if isinstance(plan, algebra.Scan):
            return float(self.table_stats(plan.table).row_count)
        work = self.estimate_cardinality(plan)
        for child in plan.children():
            work += self._estimate_work(child)
        return work

    def _is_blocking(self, plan: algebra.PlanNode) -> bool:
        if isinstance(plan, (algebra.Sort, algebra.Aggregate)):
            return True
        return any(self._is_blocking(child) for child in plan.children())
