"""Parallel shard execution: a pluggable worker pool for scatter-gather.

:class:`ShardExecutorPool` fans per-shard plan execution across
``concurrent.futures`` workers on behalf of the
:class:`~repro.db.sharding.ShardRouter`.  Three modes:

* ``"serial"`` — the property-test baseline: the router keeps its
  sequential scatter untouched and the pool is never consulted.
* ``"thread"`` (the default) — per-shard tasks run on a shared
  ``ThreadPoolExecutor``.  Shard partitions are disjoint ``Table`` objects
  and scatter plans are read-only, so workers touch disjoint executor and
  table state; the only shared structures are broadcast (unsharded)
  tables, whose lazy caches rebuild idempotently.  Workers hand
  :class:`~repro.db.vectorized.ColumnBatch` objects back by reference —
  zero-copy buffer views of the shard's typed column sidecars.
* ``"process"`` — per-shard tasks run in worker processes.  Shard data is
  seeded into each worker once per ``(table, shard, version)`` as packed
  typed/dictionary column buffers (:func:`~repro.db.table.pack_column`
  over ``memoryview`` slices), cached worker-side, and results ship back
  as **pickled ColumnBatches** built on the same typed sidecars
  (:func:`~repro.db.vectorized.pack_batch`) — never as row lists, per the
  PR-5 rule.  The request/response byte counts are surfaced in
  ``stats()["pickle_bytes"]``.

The pool records per-shard wall time for every parallel scatter; the
router attaches the most recent scatter's timings to its route marker so
tracing can render the per-shard breakdown and the max-not-sum parallel
span (:func:`repro.obs.trace.attach_parallel_scatter`).
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence

from repro.db.executor import Executor
from repro.db.table import Table, pack_column, unpack_column

#: Valid pool modes; ``serial`` disables the pool entirely.
PARALLEL_MODES = ("serial", "thread", "process")


class ParallelConfigError(Exception):
    """Raised for invalid worker-pool configurations."""


def _timed(task: Callable[[], Any]) -> tuple[Any, float]:
    started = time.perf_counter()
    result = task()
    return result, time.perf_counter() - started


class ShardExecutorPool:
    """A worker pool executing per-shard scatter tasks.

    Pools are created lazily (no threads or processes exist until the
    first parallel scatter) and shut down via :meth:`close` — the owning
    :class:`~repro.api.engine.Engine` closes them with the engine.
    """

    def __init__(
        self, workers: Optional[int] = None, mode: str = "thread"
    ) -> None:
        if mode not in PARALLEL_MODES:
            raise ParallelConfigError(
                f"unknown parallel mode {mode!r}; modes are {PARALLEL_MODES}"
            )
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ParallelConfigError(
                f"worker count must be at least 1, got {workers}"
            )
        self.mode = mode
        self.workers = workers
        self._threads: Optional[ThreadPoolExecutor] = None
        self._processes: Optional[ProcessPoolExecutor] = None
        #: cumulative counters surfaced by :meth:`stats`.
        self.scatters = 0
        self.shard_seconds = 0.0
        self.parallel_seconds = 0.0
        self.pickle_bytes_sent = 0
        self.pickle_bytes_received = 0
        #: process-mode scatters that fell back to in-process execution
        #: because a plan or payload refused to pickle.
        self.degraded = 0

    # -- lifecycle -------------------------------------------------------

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
        return self._threads

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._processes is None:
            context = None
            try:
                import multiprocessing

                if "fork" in multiprocessing.get_all_start_methods():
                    # Fork workers inherit the imported engine modules; the
                    # shard data itself is still shipped explicitly, keyed
                    # by table version, so post-fork mutations stay visible.
                    context = multiprocessing.get_context("fork")
            except Exception:  # pragma: no cover - platform-specific
                context = None
            self._processes = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._processes

    def close(self) -> None:
        """Shut down the worker pool(s); the pool may be reused after."""
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=True)
            self._processes = None

    # -- thread-mode execution -------------------------------------------

    def run_tasks(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]:
        """Run ``tasks`` on the thread pool; results in task order.

        Every task runs to completion (a failed shard does not abandon its
        siblings mid-flight); if any task raised, the error of the
        *lowest* task index is re-raised — once — for deterministic error
        surfacing regardless of completion order.  Per-task wall times are
        returned alongside the results.
        """
        if len(tasks) <= 1 or self.workers == 1 or self.mode == "serial":
            results, seconds = [], []
            for task in tasks:
                result, elapsed = _timed(task)
                results.append(result)
                seconds.append(elapsed)
            return results, seconds
        pool = self._thread_pool()
        futures: list[Future] = [
            pool.submit(_timed, task) for task in tasks
        ]
        results: list[Any] = [None] * len(tasks)
        seconds: list[float] = [0.0] * len(tasks)
        error: Optional[tuple[int, BaseException]] = None
        for index, future in enumerate(futures):
            try:
                results[index], seconds[index] = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None or index < error[0]:
                    error = (index, exc)
        if error is not None:
            raise error[1]
        return results, seconds

    # -- process-mode execution ------------------------------------------

    def run_process_requests(
        self,
        requests: Sequence[dict],
        data_provider: Callable[[tuple], Any],
    ) -> tuple[list[dict], list[float]]:
        """Execute per-shard request dicts on the process pool.

        Each request is pickled here (so byte counts are observable) and
        handed to :func:`_worker_run`.  A worker missing shard data for a
        ``(table, shard, version)`` key responds with ``{"need": keys}``;
        the request is then re-submitted with ``data_provider(key)``
        payloads attached, which the worker caches for every later query
        against the same table version.  Responses come back in shard
        order; worker exceptions re-raise the lowest shard index's error.
        """
        pool = self._process_pool()

        def submit(request: dict) -> tuple[Future, int]:
            blob = pickle.dumps(request, pickle.HIGHEST_PROTOCOL)
            self.pickle_bytes_sent += len(blob)
            return pool.submit(_worker_run, blob), len(blob)

        futures = [submit(request) for request in requests]
        responses: list[Optional[dict]] = [None] * len(requests)
        seconds = [0.0] * len(requests)
        error: Optional[tuple[int, BaseException]] = None
        for index, (future, _) in enumerate(futures):
            try:
                blob = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None or index < error[0]:
                    error = (index, exc)
                continue
            self.pickle_bytes_received += len(blob)
            responses[index] = pickle.loads(blob)
        # Second wave: seed workers that reported missing shard data.
        retry = [
            index
            for index, response in enumerate(responses)
            if response is not None and "need" in response
        ]
        retried: list[tuple[int, Future]] = []
        for index in retry:
            request = dict(requests[index])
            request["tables"] = [
                (key, data_provider(key)) for key, _ in request["tables"]
            ]
            retried.append((index, submit(request)[0]))
        for index, future in retried:
            try:
                blob = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None or index < error[0]:
                    error = (index, exc)
                continue
            self.pickle_bytes_received += len(blob)
            responses[index] = pickle.loads(blob)
        if error is not None:
            raise error[1]
        for index, response in enumerate(responses):
            if response is None or "result" not in response:
                raise ParallelConfigError(
                    f"shard {index} worker returned no result"
                )
            seconds[index] = response.get("wall", 0.0)
        return responses, seconds  # type: ignore[return-value]

    # -- accounting ------------------------------------------------------

    def note_scatter(self, shard_seconds: Sequence[float]) -> None:
        """Fold one parallel scatter's per-shard wall times into totals."""
        self.scatters += 1
        self.shard_seconds += sum(shard_seconds)
        # Wall time the scatter *actually* took is bounded by the slowest
        # shard (max, not sum) — the number a parallel span may charge.
        self.parallel_seconds += max(shard_seconds, default=0.0)

    def stats(self) -> dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "scatters": self.scatters,
            "shard_seconds": self.shard_seconds,
            "parallel_seconds": self.parallel_seconds,
            "pickle_bytes": {
                "sent": self.pickle_bytes_sent,
                "received": self.pickle_bytes_received,
            },
            "degraded": self.degraded,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardExecutorPool(mode={self.mode!r}, workers={self.workers})"


# -- shard-payload packing -------------------------------------------------


def pack_table(table: Table) -> tuple:
    """A picklable seed payload for one shard partition (or broadcast table).

    Columns are packed as typed/dictionary buffers via ``memoryview``
    slices (:func:`~repro.db.table.pack_column`), not as row-dict lists;
    the worker rebuilds rows from the buffers once and caches the table.
    """
    store = table.columns()
    return (
        table.schema,
        table.storage_mode,
        len(table.rows),
        tuple((name, pack_column(data)) for name, data in store.items()),
    )


def unpack_table(payload: tuple, version: int) -> Table:
    """Rebuild a :class:`Table` from a :func:`pack_table` payload.

    Row dicts are reassembled in schema declaration order (the stored-row
    invariant ``wide_rows`` depends on), the primary-key index is rebuilt,
    and the unpacked columns are installed as the table's columnar view so
    the first vectorized scan pays no re-encode.
    """
    schema, storage_mode, length, packed = payload
    table = Table(schema)
    table.set_storage_mode(storage_mode)
    columns = {name: unpack_column(column) for name, column in packed}
    names = list(schema.column_names)
    if length:
        table.rows = [
            dict(zip(names, values))
            for values in zip(*(columns[name] for name in names))
        ]
    if table._pk_index is not None:
        primary_key = schema.primary_key
        table._pk_index = {row[primary_key]: row for row in table.rows}
    table.version = version
    table._columnar = columns
    table._columnar_version = version
    return table


# -- process-pool worker ---------------------------------------------------
#
# Module state below lives in the *worker* processes.  Tables are cached
# per (name, shard index, version) so steady-state queries ship only the
# plan; executors are cached per overlay so their lowered-plan and
# compiled-expression caches keep hitting; plans are cached by their
# pickle bytes so the executor caches (keyed by plan object identity) see
# the same object across executions of one prepared statement.

_WORKER_TABLES: dict[tuple, Table] = {}
_WORKER_EXECUTORS: "OrderedDict[tuple, Executor]" = OrderedDict()
_WORKER_PLANS: "OrderedDict[bytes, Any]" = OrderedDict()
_WORKER_CACHE_LIMIT = 64


def _worker_executor(
    overlay_keys: tuple, mode: str, backend: Optional[str]
) -> Executor:
    cache_key = (overlay_keys, mode, backend)
    executor = _WORKER_EXECUTORS.get(cache_key)
    if executor is None:
        overlay = {key[0]: _WORKER_TABLES[key] for key in overlay_keys}
        executor = Executor(overlay, mode=mode, vector_backend=backend)
        if len(_WORKER_EXECUTORS) >= _WORKER_CACHE_LIMIT:
            _WORKER_EXECUTORS.popitem(last=False)
        _WORKER_EXECUTORS[cache_key] = executor
    else:
        _WORKER_EXECUTORS.move_to_end(cache_key)
    return executor


def _worker_plan(blob: bytes) -> Any:
    plan = _WORKER_PLANS.get(blob)
    if plan is None:
        plan = pickle.loads(blob)
        if len(_WORKER_PLANS) >= _WORKER_CACHE_LIMIT:
            _WORKER_PLANS.popitem(last=False)
        _WORKER_PLANS[blob] = plan
    else:
        _WORKER_PLANS.move_to_end(blob)
    return plan


def _counter_delta(after: dict, before: dict) -> dict:
    delta: dict[str, Any] = {}
    for key, value in after.items():
        if isinstance(value, int):
            delta[key] = value - before.get(key, 0)
    before_reasons = before.get("fallback_reasons", {})
    delta["fallback_reasons"] = {
        reason: count - before_reasons.get(reason, 0)
        for reason, count in after.get("fallback_reasons", {}).items()
        if count - before_reasons.get(reason, 0)
    }
    return delta


def _worker_run(blob: bytes) -> bytes:
    """Execute one shard's plan inside a worker process.

    ``blob`` is a pickled request::

        {"plan": <plan pickle bytes>, "mode": ..., "backend": ...,
         "tables": [((name, shard, version), payload-or-None), ...]}

    Returns a pickled response: ``{"need": [keys]}`` when shard data for a
    key is neither attached nor cached, otherwise ``{"result": <packed
    ColumnBatch>, "tiers": ..., "vectorized": ..., "last": ..., "wall":
    ...}`` with the executor counter deltas this execution produced.
    Plan-evaluation errors propagate to the parent as ordinary exceptions.
    """
    from repro.db.vectorized import _batch_from_rows, pack_batch

    request = pickle.loads(blob)
    need = []
    for key, payload in request["tables"]:
        if payload is not None:
            stale = [
                cached
                for cached in _WORKER_TABLES
                if cached[:2] == key[:2] and cached != key
            ]
            for cached in stale:
                del _WORKER_TABLES[cached]
            _WORKER_TABLES[key] = unpack_table(payload, key[2])
        elif key not in _WORKER_TABLES:
            need.append(key)
    if need:
        return pickle.dumps({"need": need}, pickle.HIGHEST_PROTOCOL)
    overlay_keys = tuple(key for key, _ in request["tables"])
    executor = _worker_executor(
        overlay_keys, request["mode"], request["backend"]
    )
    plan = _worker_plan(request["plan"])
    tiers_before = dict(executor.tier_counts)
    vectorized_before = executor.vectorized_stats
    started = time.perf_counter()
    rows = executor.execute(plan)
    wall = time.perf_counter() - started
    response = {
        "result": pack_batch(_batch_from_rows(rows)),
        "tiers": _counter_delta(executor.tier_counts, tiers_before),
        "vectorized": _counter_delta(
            executor.vectorized_stats, vectorized_before
        ),
        "last": (
            executor.last_tier,
            executor.last_execution_path,
            executor.last_fallback_reason,
        ),
        "wall": wall,
    }
    return pickle.dumps(response, pickle.HIGHEST_PROTOCOL)


def fold_worker_counters(
    executor: Executor, tiers: dict, vectorized: dict
) -> None:
    """Fold a worker's counter deltas into the parent's shard executor.

    Process-mode executions happen in the worker's executor, whose
    counters would vanish with the process; folding the deltas into the
    parent-side executor for the same shard keeps
    ``Database.execution_stats()`` complete — exactly as the sequential
    scatter's in-process accounting does.
    """
    for tier, count in tiers.items():
        if count:
            executor.tier_counts[tier] = (
                executor.tier_counts.get(tier, 0) + count
            )
    target = executor._vectorized
    if target is None or not vectorized:
        return
    for key, value in vectorized.items():
        if key == "fallback_reasons":
            for reason, count in value.items():
                target.fallback_reasons[reason] = (
                    target.fallback_reasons.get(reason, 0) + count
                )
        elif isinstance(value, int) and value:
            setattr(target, key, getattr(target, key) + value)


__all__ = [
    "PARALLEL_MODES",
    "ParallelConfigError",
    "ShardExecutorPool",
    "fold_worker_counters",
    "pack_table",
    "unpack_table",
]
