"""Schema and catalog definitions for the in-memory database engine.

A :class:`Schema` is a collection of :class:`TableSchema` objects.  Each table
schema records its columns, the primary key, foreign keys, and the byte width
of a row.  Row widths matter to the reproduction because the COBRA cost model
charges network transfer time as ``rows * row_size / bandwidth``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional


class ColumnType(enum.Enum):
    """Supported column types.

    The engine stores Python values; the declared type is used for default
    byte-width accounting and for generating synthetic data.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"

    @property
    def default_width(self) -> int:
        """Default storage width in bytes for a value of this type."""
        widths = {
            ColumnType.INT: 8,
            ColumnType.FLOAT: 8,
            ColumnType.STRING: 32,
            ColumnType.DATE: 8,
            ColumnType.BOOL: 1,
        }
        return widths[self]


@dataclass(frozen=True)
class Column:
    """A column in a table schema.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        Declared :class:`ColumnType`.
    width:
        Byte width of a value; defaults to the type's default width.  The sum
        of widths over a table's columns is the row width used by the cost
        model.
    nullable:
        Whether NULL (``None``) values are allowed.
    """

    name: str
    ctype: ColumnType = ColumnType.INT
    width: Optional[int] = None
    nullable: bool = True

    @property
    def byte_width(self) -> int:
        """Effective byte width of this column."""
        if self.width is not None:
            return self.width
        return self.ctype.default_width


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key constraint from ``column`` to ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


class SchemaError(Exception):
    """Raised for invalid schema definitions or lookups."""


class TableSchema:
    """Schema of a single table: name, columns, primary key, foreign keys."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: Optional[str] = None,
        foreign_keys: Optional[Iterable[ForeignKey]] = None,
    ) -> None:
        self.name = name
        self.columns: list[Column] = list(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"table {name!r} has duplicate column names")
        if primary_key is not None and primary_key not in self._by_name:
            raise SchemaError(
                f"primary key {primary_key!r} is not a column of table {name!r}"
            )
        self.primary_key = primary_key
        self.foreign_keys: list[ForeignKey] = list(foreign_keys or [])
        for fk in self.foreign_keys:
            if fk.column not in self._by_name:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of "
                    f"table {name!r}"
                )

    # -- lookups ---------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Names of all columns, in declaration order."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """Return True if the table has a column called ``name``."""
        return name in self._by_name

    def column(self, name: str) -> Column:
        """Return the :class:`Column` called ``name``.

        Raises :class:`SchemaError` if absent.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {self.column_names}"
            ) from None

    @property
    def row_width(self) -> int:
        """Byte width of a full row (sum of column widths)."""
        return sum(c.byte_width for c in self.columns)

    def width_of(self, columns: Iterable[str]) -> int:
        """Byte width of a projection onto ``columns``."""
        return sum(self.column(c).byte_width for c in columns)

    def foreign_key_to(self, ref_table: str) -> Optional[ForeignKey]:
        """Return the first foreign key referencing ``ref_table``, if any."""
        for fk in self.foreign_keys:
            if fk.ref_table == ref_table:
                return fk
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSchema({self.name!r}, columns={self.column_names})"


@dataclass
class Schema:
    """A database schema: a named collection of table schemas."""

    tables: dict[str, TableSchema] = field(default_factory=dict)

    def add(self, table: TableSchema) -> TableSchema:
        """Register ``table`` in the schema and return it."""
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        return table

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"no table named {name!r}; tables are {sorted(self.tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        """Return True if a table called ``name`` exists."""
        return name in self.tables

    def table_names(self) -> list[str]:
        """Names of all tables in the schema."""
        return sorted(self.tables)
