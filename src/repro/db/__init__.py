"""In-memory relational database substrate.

This package provides the database server that the COBRA reproduction runs
against.  It implements:

* a schema/catalog layer (:mod:`repro.db.schema`),
* row storage (:mod:`repro.db.table`),
* scalar and boolean expressions over rows (:mod:`repro.db.expressions`),
* a relational algebra with an iterator-style executor
  (:mod:`repro.db.algebra`, :mod:`repro.db.executor`),
* table statistics and cardinality estimation (:mod:`repro.db.statistics`),
* a small SQL dialect: parser and generator (:mod:`repro.db.sqlparser`,
  :mod:`repro.db.sqlgen`),
* and the :class:`repro.db.database.Database` facade tying it all together.

The engine favours clarity over raw speed: its role in the reproduction is to
return correct results, correct cardinalities and row widths, and server-side
cost estimates for the COBRA cost model.
"""

from repro.db.database import (
    Database,
    PreparedStatement,
    QueryResult,
    StatementCacheStats,
    Transaction,
    TransactionError,
)
from repro.db.mvcc import (
    MvccManager,
    MvccStats,
    MvccTransaction,
    SerializationError,
    Snapshot,
)
from repro.db.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.db.sharding import ShardedTable, ShardingError, ShardRouter
from repro.db.statistics import TableStatistics
from repro.db.wal import WalError, WalRecord, WriteAheadLog

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "ForeignKey",
    "MvccManager",
    "MvccStats",
    "MvccTransaction",
    "PreparedStatement",
    "SerializationError",
    "Snapshot",
    "QueryResult",
    "Schema",
    "ShardRouter",
    "ShardedTable",
    "ShardingError",
    "StatementCacheStats",
    "TableSchema",
    "TableStatistics",
    "Transaction",
    "TransactionError",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
]
