"""Write-ahead logging: typed records, the log, and crash-recovery replay.

Durability rule
---------------

Every mutation the :class:`~repro.db.database.Database` applies — row
inserts, UPDATE statements, and DDL (``create_table`` / ``shard_table``) —
is first appended to the :class:`WriteAheadLog` as a **typed record**, and
only then applied to storage.  A :class:`CommitRecord` is the durability
boundary: recovery (:meth:`repro.db.database.Database.recover`) replays
exactly the records of committed transactions, in log order, and discards
everything else — so a log crashed (truncated) at *any* prefix point
recovers to exactly the last committed state.

Physical logging
----------------

Inserts log the **normalised stored form** of every row (what
:meth:`repro.db.table.Table.prepare_row` produced), and updates log
``(row position, new column values)`` physical changes computed by the
two-phase update (:meth:`repro.db.table.Table.plan_update`).  Storage is
append-only (rollback is a truncation, never a hole), so row positions are
stable identifiers under replay.  Replaying an :class:`UpdateRecord` goes
through the same :meth:`~repro.db.table.Table.apply_update_at` hook the
live engine uses — on a :class:`~repro.db.sharding.ShardedTable` that hook
rehomes shard-key moves, so replayed updates place rows in partitions
exactly like the live path did.

Checkpoints
-----------

:meth:`repro.db.database.Database.enable_wal` on an already-populated
database writes a *checkpoint* first: the schema DDL, sharding DDL, and a
bulk :class:`InsertRecord` per table, all inside one committed transaction.
A checkpointed log is therefore self-contained — recovery of the log alone
reproduces the full database, not just the post-enable delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.db.schema import Column, ForeignKey
from repro.db.table import Row


class WalError(Exception):
    """Raised on invalid write-ahead-log operations."""


@dataclass(frozen=True)
class WalRecord:
    """Base class of every log record: the owning transaction id."""

    txn_id: int


@dataclass(frozen=True)
class CreateTableRecord(WalRecord):
    """DDL: ``create_table`` with its full column definition."""

    name: str
    columns: tuple[Column, ...]
    primary_key: Optional[str]
    foreign_keys: tuple[ForeignKey, ...]


@dataclass(frozen=True)
class ShardTableRecord(WalRecord):
    """DDL: ``shard_table`` — hash-shard ``name`` on ``key`` over N parts."""

    name: str
    key: str
    shards: int


@dataclass(frozen=True)
class InsertRecord(WalRecord):
    """Row inserts: the normalised stored form of every inserted row."""

    table: str
    rows: tuple[Row, ...]


@dataclass(frozen=True)
class UpdateRecord(WalRecord):
    """An UPDATE statement's physical changes: (row position, new values)."""

    table: str
    changes: tuple[tuple[int, dict], ...]


@dataclass(frozen=True)
class CommitRecord(WalRecord):
    """The durability boundary: ``txn_id``'s records are now recoverable."""


@dataclass(frozen=True)
class AbortRecord(WalRecord):
    """An explicit rollback; recovery skips the transaction regardless."""


@dataclass
class WalStats:
    """Counters over the life of one write-ahead log."""

    records: int = 0
    inserts: int = 0
    updates: int = 0
    ddl: int = 0
    commits: int = 0
    aborts: int = 0
    rows_logged: int = 0
    #: rough payload estimate: one cell (column value) = one unit.
    cells_logged: int = 0
    #: commits whose flush piggybacked on an earlier one (group commit).
    group_commits: int = 0

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "inserts": self.inserts,
            "updates": self.updates,
            "ddl": self.ddl,
            "commits": self.commits,
            "aborts": self.aborts,
            "rows_logged": self.rows_logged,
            "cells_logged": self.cells_logged,
            "group_commits": self.group_commits,
        }


class WriteAheadLog:
    """An append-only, in-memory sequence of typed :class:`WalRecord`\\ s.

    The log is the durable medium of the simulation: crashing the server is
    modelled as keeping only a prefix of it (:meth:`prefix`), and recovery
    replays the committed transactions of whatever survived.  Records are
    immutable and hold copies of row data, so a log can be replayed any
    number of times (the crash-at-every-prefix property test replays every
    prefix of one log).
    """

    def __init__(
        self,
        records: Optional[Sequence[WalRecord]] = None,
        *,
        flush_seconds: float = 0.0,
        group_window: float = 0.0,
    ) -> None:
        self.records: list[WalRecord] = []
        self.stats = WalStats()
        #: virtual cost of flushing a commit to the durable medium.
        self.flush_seconds = flush_seconds
        #: commits within this window of the last flush share it for free.
        self.group_window = group_window
        self._last_flush: Optional[float] = None
        if records:
            for record in records:
                self.append(record)

    # -- appending -------------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Append one record; returns its log sequence number (position)."""
        lsn = len(self.records)
        self.records.append(record)
        stats = self.stats
        stats.records += 1
        if isinstance(record, InsertRecord):
            stats.inserts += 1
            stats.rows_logged += len(record.rows)
            stats.cells_logged += sum(len(row) for row in record.rows)
        elif isinstance(record, UpdateRecord):
            stats.updates += 1
            stats.rows_logged += len(record.changes)
            stats.cells_logged += sum(
                len(values) for _, values in record.changes
            )
        elif isinstance(record, (CreateTableRecord, ShardTableRecord)):
            stats.ddl += 1
        elif isinstance(record, CommitRecord):
            stats.commits += 1
        elif isinstance(record, AbortRecord):
            stats.aborts += 1
        return lsn

    def commit_flush(self, now: float) -> float:
        """Virtual seconds this commit pays to flush the log at time ``now``.

        Models group commit: the first commit in a ``group_window`` pays the
        full ``flush_seconds`` and stamps the flush time; later commits
        inside the window piggyback on that flush for free (counted in
        ``stats.group_commits``).  With ``flush_seconds`` at 0 the log has
        no flush cost and this is always free.
        """
        if self.flush_seconds <= 0.0:
            return 0.0
        if (
            self._last_flush is not None
            and now - self._last_flush <= self.group_window
        ):
            self.stats.group_commits += 1
            return 0.0
        self._last_flush = now
        return self.flush_seconds

    # -- crash simulation and recovery views ------------------------------

    def prefix(self, length: int) -> "WriteAheadLog":
        """The log as it would survive a crash after ``length`` records.

        Records are immutable, so the prefix shares them with the live log.
        """
        if length < 0 or length > len(self.records):
            raise WalError(
                f"prefix length {length} out of range 0..{len(self.records)}"
            )
        return WriteAheadLog(self.records[:length])

    def committed_transactions(self) -> set[int]:
        """Transaction ids whose :class:`CommitRecord` made it into the log."""
        return {
            record.txn_id
            for record in self.records
            if isinstance(record, CommitRecord)
        }

    def committed_records(self) -> list[WalRecord]:
        """The committed subset of the log, in log order.

        This is what recovery replays: data/DDL records of committed
        transactions plus their commit records.  Uncommitted tails and
        explicitly aborted transactions are dropped.
        """
        committed = self.committed_transactions()
        return [
            record
            for record in self.records
            if record.txn_id in committed
            and not isinstance(record, AbortRecord)
        ]

    def max_txn_id(self) -> int:
        """The highest transaction id in the log (0 when empty)."""
        return max((record.txn_id for record in self.records), default=0)

    # -- introspection ---------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Expose the log's counters as a live ``wal`` view on ``registry``.

        The view re-reads :attr:`stats` on every render, so it stays
        current without the log pushing updates into the registry.
        """
        registry.register_view(
            "wal", lambda: {"records": len(self.records), **self.stats.as_dict()}
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WalRecord]:
        return iter(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(records={len(self.records)}, "
            f"commits={self.stats.commits})"
        )


__all__ = [
    "AbortRecord",
    "CommitRecord",
    "CreateTableRecord",
    "InsertRecord",
    "ShardTableRecord",
    "UpdateRecord",
    "WalError",
    "WalRecord",
    "WalStats",
    "WriteAheadLog",
]
