"""SQL text generation from relational algebra plans.

The COBRA transformations (T1–T5, N1, N2) rewrite F-IR whose query leaves are
algebra trees; the final chosen program needs SQL text to ship to the
database.  ``to_sql`` renders the canonical
``SELECT ... FROM ... JOIN ... WHERE ... GROUP BY ... ORDER BY ... LIMIT``
shape for the plan forms produced by the parser and the rewrite rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.db import algebra
from repro.db.expressions import ColumnRef, Expression, conjunction


class SQLGenerationError(Exception):
    """Raised when a plan shape cannot be rendered as a single SELECT."""


@dataclass
class _QueryParts:
    """Accumulated clauses for one SELECT statement."""

    select: list[str] = field(default_factory=list)
    from_clause: str = ""
    joins: list[str] = field(default_factory=list)
    where: list[Expression] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    order_by: list[str] = field(default_factory=list)
    limit: Optional[int] = None

    def render(self) -> str:
        select = ", ".join(self.select) if self.select else "*"
        sql = f"select {select} from {self.from_clause}"
        for join in self.joins:
            sql += f" {join}"
        predicate = conjunction(self.where)
        if predicate is not None:
            sql += f" where {predicate.to_sql()}"
        if self.group_by:
            sql += " group by " + ", ".join(self.group_by)
        if self.order_by:
            sql += " order by " + ", ".join(self.order_by)
        if self.limit is not None:
            sql += f" limit {self.limit}"
        return sql


def to_sql(plan: algebra.PlanNode) -> str:
    """Render ``plan`` as a single SELECT statement."""
    parts = _QueryParts()
    _fill(plan, parts)
    return parts.render()


def _fill(plan: algebra.PlanNode, parts: _QueryParts) -> None:
    if isinstance(plan, algebra.Limit):
        parts.limit = plan.count
        _fill(plan.child, parts)
        return
    if isinstance(plan, algebra.Sort):
        parts.order_by = [
            f"{key.column.qualified_name}{'' if key.ascending else ' desc'}"
            for key in plan.keys
        ]
        _fill(plan.child, parts)
        return
    if isinstance(plan, algebra.Project):
        _fill_project(plan, parts)
        return
    if isinstance(plan, algebra.Aggregate):
        _fill_aggregate(plan, parts)
        return
    if isinstance(plan, algebra.Select):
        parts.where.insert(0, plan.predicate)
        _fill(plan.child, parts)
        return
    if isinstance(plan, algebra.Join):
        _fill_join(plan, parts)
        return
    if isinstance(plan, algebra.Scan):
        parts.from_clause = _scan_text(plan)
        return
    raise SQLGenerationError(f"cannot render {type(plan).__name__} as SQL")


def _fill_project(plan: algebra.Project, parts: _QueryParts) -> None:
    child = plan.child
    if isinstance(child, algebra.Aggregate):
        _fill_aggregate(child, parts, projection=plan)
        return
    rendered = []
    for output in plan.outputs:
        expr_sql = output.expression.to_sql()
        if (
            isinstance(output.expression, ColumnRef)
            and output.expression.name == output.name
        ):
            rendered.append(expr_sql)
        else:
            rendered.append(f"{expr_sql} as {output.name}")
    if parts.select:
        raise SQLGenerationError("nested projections cannot be rendered")
    parts.select = rendered
    _fill(child, parts)


def _fill_aggregate(
    plan: algebra.Aggregate,
    parts: _QueryParts,
    projection: Optional[algebra.Project] = None,
) -> None:
    select: list[str] = []
    for key in plan.group_by:
        select.append(key.qualified_name)
        parts.group_by.append(key.qualified_name)
    for spec in plan.aggregates:
        argument = spec.argument.to_sql() if spec.argument is not None else "*"
        rendered = f"{spec.function}({argument})"
        default_name = (
            f"{spec.function}_{spec.argument.name}"
            if isinstance(spec.argument, ColumnRef)
            else None
        )
        if spec.name and spec.name != default_name:
            rendered += f" as {spec.name}"
        select.append(rendered)
    parts.select = select
    _fill(plan.child, parts)


def _fill_join(plan: algebra.Join, parts: _QueryParts) -> None:
    # Left-deep join chains render as FROM <leftmost> JOIN ... ON ...
    if isinstance(plan.left, (algebra.Join, algebra.Scan, algebra.Select)):
        _fill_join_side(plan.left, parts)
    else:
        raise SQLGenerationError(
            f"unsupported join input {type(plan.left).__name__}"
        )
    right_text = _join_operand_text(plan.right, parts)
    condition = plan.condition.to_sql() if plan.condition is not None else "1 = 1"
    parts.joins.append(f"join {right_text} on {condition}")


def _fill_join_side(plan: algebra.PlanNode, parts: _QueryParts) -> None:
    if isinstance(plan, algebra.Scan):
        parts.from_clause = _scan_text(plan)
        return
    if isinstance(plan, algebra.Select):
        parts.where.insert(0, plan.predicate)
        _fill_join_side(plan.child, parts)
        return
    if isinstance(plan, algebra.Join):
        _fill_join(plan, parts)
        return
    raise SQLGenerationError(
        f"unsupported join input {type(plan).__name__}"
    )


def _join_operand_text(plan: algebra.PlanNode, parts: _QueryParts) -> str:
    if isinstance(plan, algebra.Scan):
        return _scan_text(plan)
    if isinstance(plan, algebra.Select) and isinstance(plan.child, algebra.Scan):
        # Push the right-side filter into the WHERE clause.
        parts.where.append(plan.predicate)
        return _scan_text(plan.child)
    raise SQLGenerationError(
        f"unsupported right join operand {type(plan).__name__}"
    )


def _scan_text(plan: algebra.Scan) -> str:
    if plan.alias and plan.alias != plan.table:
        return f"{plan.table} {plan.alias}"
    return plan.table
