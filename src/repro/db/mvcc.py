"""Multi-version concurrency control: snapshot reads over versioned rows.

The engine's storage stays exactly what it was — append-only row dicts in
:class:`repro.db.table.Table` — and MVCC layers *time* on top of it:

* Every commit gets a **monotonically increasing commit timestamp** from the
  :class:`MvccManager`.  The live tables always hold the latest committed
  state; committing pushes **undo entries** (the WAL's before-image shape)
  tagged with the commit timestamp, so any older state can be reconstructed
  by applying undo entries newest-to-oldest down to a snapshot's timestamp.
* :meth:`repro.db.database.Database.begin` transactions **buffer their
  writes privately** (a deferred-apply write set) instead of mutating in
  place, and read through a materialised view: the live rows as of the
  transaction's start timestamp plus its own pending writes.  Readers —
  inside or outside transactions — therefore never block behind a writer,
  and a writer never makes uncommitted rows visible.
* **Visibility rule**: a context with start timestamp ``S`` sees exactly the
  rows committed with timestamp ``<= S``.  Storage is append-only, so the
  visible prefix of a table is ``min(length-before of every insert undo with
  ts > S)`` and updated rows are reconstructed by merging before-images
  newest-to-oldest (the oldest undo newer than ``S`` wins per column).
* **First-committer-wins**: commit re-checks every updated row position
  against the last committed write timestamp for that position; a position
  committed after the transaction began raises :class:`SerializationError`
  (retryable — the transaction is rolled back, nothing was applied).
* **Vacuum** reclaims undo entries older than the oldest live snapshot
  (they can never be needed again) and runs automatically whenever a
  context finishes; counters land in ``Engine.stats()["mvcc"]``.

WAL integration: a transaction's records are appended at commit time —
updates then inserts per table, followed by the :class:`CommitRecord` — so
the log-before-apply rule holds and the committed prefix of the log replays
to exactly the visible (committed) state.  Recovery re-derives the commit
timestamp counter from the :class:`CommitRecord` count of the replayed
prefix (:meth:`MvccManager.rederive_commit_timestamps`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.db.executor import Executor
from repro.db.table import Row, Table
from repro.db.wal import CommitRecord, InsertRecord, UpdateRecord


class SerializationError(Exception):
    """A first-committer-wins write conflict: another transaction committed
    a newer version of a row this transaction also updated.

    The losing transaction is rolled back before this is raised (none of
    its writes were applied — MVCC write sets are deferred-apply), so the
    application can simply retry it; see
    :meth:`repro.net.connection.SimulatedConnection.run_transaction`.
    """

    #: marker consumed by retry helpers: safe to re-run the transaction.
    retryable = True


@dataclass
class MvccStats:
    """Counters for the MVCC subsystem (``Engine.stats()["mvcc"]``)."""

    versions_created: int = 0
    versions_reclaimed: int = 0
    snapshots_taken: int = 0
    write_conflicts: int = 0
    vacuum_runs: int = 0

    def as_dict(self) -> dict:
        return {
            "versions_created": self.versions_created,
            "versions_reclaimed": self.versions_reclaimed,
            "snapshots_taken": self.snapshots_taken,
            "write_conflicts": self.write_conflicts,
            "vacuum_runs": self.vacuum_runs,
        }


class _UndoEntry:
    """One committed change, keyed by its commit timestamp.

    ``kind == "insert"``: ``payload`` is the table length before the commit
    (append-only storage, so undoing an insert is knowing where it started).
    ``kind == "update"``: ``payload`` is ``[(position, before_values)]`` —
    the same before-image shape the WAL's transaction rollback uses.
    ``rows`` counts the row versions the entry supersedes, for the
    versions_reclaimed counter.
    """

    __slots__ = ("commit_ts", "kind", "payload", "rows")

    def __init__(self, commit_ts: int, kind: str, payload, rows: int) -> None:
        self.commit_ts = commit_ts
        self.kind = kind
        self.payload = payload
        self.rows = rows


class _TableWrites:
    """One transaction's private write set against one table.

    ``pending`` holds prepared (stored-form) rows to append at commit;
    ``updates`` maps a live row position (aggregate position, stable under
    append-only storage) to the merged new column values.
    """

    __slots__ = ("pending", "updates")

    def __init__(self) -> None:
        self.pending: list[Row] = []
        self.updates: dict[int, dict] = {}


class _ReadContext:
    """Shared surface of :class:`Snapshot` and :class:`MvccTransaction`."""

    is_mvcc_context = True

    def __init__(self, manager: "MvccManager", start_ts: int) -> None:
        self.manager = manager
        self.start_ts = start_ts
        self.active = True
        #: bumped on every buffered write; stamps the view cache.
        self.writes_version = 0
        #: per-table materialised view cache: name -> (stamp, view, visible).
        self._views: dict[str, tuple] = {}
        #: cached snapshot executor: (stamp, executor).
        self._executor_cache: Optional[tuple] = None

    def table_writes(self, name: str) -> Optional[_TableWrites]:
        return None


class Snapshot(_ReadContext):
    """A read-only consistent view of the database as of one timestamp.

    Opened by :meth:`repro.db.database.Database.snapshot`; queries executed
    through :meth:`execute` (or inside ``database.using(snapshot)``) see
    exactly the state committed before the snapshot was taken, no matter
    what commits afterwards.  Writes through a snapshot raise — use a
    transaction.  Close it (or exit the ``with`` block) to release the
    version horizon so vacuum can reclaim old versions.
    """

    def __init__(self, manager: "MvccManager", start_ts: int) -> None:
        super().__init__(manager, start_ts)

    def execute(self, sql: str, params: Sequence[Any] = ()):
        """Run a SELECT against this snapshot's view of the database."""
        database = self.manager.database
        with database.using(self):
            return database.execute_sql(sql, params)

    def close(self) -> None:
        """Release the snapshot (idempotent); its versions become vacuumable."""
        if self.active:
            self.manager._finish_context(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.active else "closed"
        return f"<Snapshot ts={self.start_ts} {state}>"


class MvccTransaction(_ReadContext):
    """A snapshot-isolated transaction with a deferred-apply write set.

    Reads see the database as of the transaction's start timestamp plus the
    transaction's own buffered writes; nothing is applied to live storage
    (or the WAL) until :meth:`commit`, which conflict-checks first-committer
    -wins and raises :class:`SerializationError` on a lost race.  Mirrors
    the legacy :class:`repro.db.database.Transaction` context-manager
    surface so driver code works unchanged.
    """

    def __init__(
        self, manager: "MvccManager", txn_id: int, start_ts: int
    ) -> None:
        super().__init__(manager, start_ts)
        self.txn_id = txn_id
        self._writes: dict[str, _TableWrites] = {}

    def table_writes(self, name: str) -> Optional[_TableWrites]:
        return self._writes.get(name)

    def commit(self) -> None:
        """Apply the write set at the next commit timestamp (or conflict)."""
        self.manager.commit(self)

    def rollback(self) -> None:
        """Discard the write set; live storage was never touched."""
        self.manager.rollback(self)

    def __enter__(self) -> "MvccTransaction":
        if not self.active:
            from repro.db.database import TransactionError

            raise TransactionError("transaction is no longer active")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "finished"
        return f"<MvccTransaction {self.txn_id} ts={self.start_ts} {state}>"


class MvccManager:
    """Version bookkeeping for one database: timestamps, undo, conflicts.

    Installed by :meth:`repro.db.database.Database.enable_mvcc`.  The live
    tables always hold exactly the latest committed state; this manager
    keeps, per table, the undo entries needed to reconstruct any state an
    open context might still read, and the last-write timestamps needed for
    first-committer-wins conflict detection.
    """

    def __init__(self, database) -> None:
        self.database = database
        #: the timestamp of the most recent commit; new contexts start here.
        self.commit_ts = 0
        #: per-table undo entries, oldest first (commit order).
        self._undo: dict[str, list[_UndoEntry]] = {}
        #: per-table {position: commit_ts} of the last committed update.
        self._last_write: dict[str, dict[int, int]] = {}
        #: open contexts (transactions and snapshots).
        self._active: set[_ReadContext] = set()
        self.stats = MvccStats()

    # -- context lifecycle -------------------------------------------------

    def begin(self) -> MvccTransaction:
        """Open a snapshot-isolated transaction at the current timestamp."""
        database = self.database
        txn = MvccTransaction(
            self, database._allocate_txn_id(), self.commit_ts
        )
        self._active.add(txn)
        self.stats.snapshots_taken += 1
        database._txn = txn
        database.txn_stats.begun += 1
        return txn

    def snapshot(self) -> Snapshot:
        """Open a read-only snapshot at the current timestamp."""
        snap = Snapshot(self, self.commit_ts)
        self._active.add(snap)
        self.stats.snapshots_taken += 1
        return snap

    def has_contexts(self) -> bool:
        """True while any transaction or snapshot is open."""
        return bool(self._active)

    def active_transactions(self) -> int:
        return sum(
            1 for ctx in self._active if isinstance(ctx, MvccTransaction)
        )

    def active_snapshots(self) -> int:
        return sum(1 for ctx in self._active if isinstance(ctx, Snapshot))

    def _finish_context(self, ctx: _ReadContext) -> None:
        ctx.active = False
        ctx._views.clear()
        ctx._executor_cache = None
        self._active.discard(ctx)
        database = self.database
        if database._txn is ctx:
            database._txn = None
        if self._undo or self._last_write:
            self.vacuum()

    # -- buffered writes ---------------------------------------------------

    def _check_writable(self, ctx: _ReadContext) -> MvccTransaction:
        from repro.db.database import TransactionError

        if isinstance(ctx, Snapshot):
            raise TransactionError(
                "snapshot contexts are read-only; begin() a transaction "
                "to write"
            )
        if not isinstance(ctx, MvccTransaction) or not ctx.active:
            raise TransactionError("transaction is no longer active")
        return ctx

    def txn_insert(
        self, ctx: _ReadContext, table: str, rows: Iterable[Row]
    ) -> int:
        """Buffer inserts in the transaction's write set (deferred apply)."""
        txn = self._check_writable(ctx)
        storage = self.database.table(table)
        writes = txn._writes.setdefault(table, _TableWrites())
        count = 0
        for row in rows:
            writes.pending.append(storage.prepare_row(row))
            count += 1
        if count:
            txn.writes_version += 1
        return count

    def txn_update(
        self, ctx: _ReadContext, table: str, predicate, assignments: dict
    ) -> int:
        """Plan an UPDATE against the transaction's view and buffer it.

        The two-phase plan runs over the *view* (snapshot rows plus the
        transaction's own writes), so statement atomicity and SQL's
        simultaneous-assignment semantics are preserved.  Positions below
        the visible length are live aggregate positions (stable under
        append-only storage) and go into the update map; positions at or
        past it address the transaction's own pending inserts, which are
        patched in place.
        """
        txn = self._check_writable(ctx)
        view, visible = self._table_view(txn, table)
        planned = view.plan_update(predicate, assignments)
        if not planned:
            return 0
        writes = txn._writes.setdefault(table, _TableWrites())
        for position, _row, new_values in planned:
            if position < visible:
                writes.updates.setdefault(position, {}).update(new_values)
            else:
                writes.pending[position - visible].update(new_values)
        txn.writes_version += 1
        return len(planned)

    # -- commit / rollback -------------------------------------------------

    def commit(self, txn: MvccTransaction) -> None:
        """First-committer-wins conflict check, then apply the write set.

        On conflict the transaction is rolled back (an :class:`AbortRecord`
        lands in the WAL — it logged nothing else) and
        :class:`SerializationError` is raised.  On success the transaction's
        WAL records are appended (updates then inserts per table, then the
        commit record), the writes are applied to live storage, undo entries
        are pushed at the new commit timestamp, and the last-write map is
        stamped for future conflict checks.
        """
        from repro.db.database import TransactionError

        database = self.database
        if not txn.active:
            raise TransactionError("transaction is no longer active")
        for name, writes in txn._writes.items():
            last = self._last_write.get(name)
            if not last:
                continue
            for position in writes.updates:
                if last.get(position, 0) > txn.start_ts:
                    self.stats.write_conflicts += 1
                    self._abort(txn)
                    raise SerializationError(
                        f"write conflict on table {name!r} row {position}: "
                        f"a concurrent transaction committed first"
                    )
        commit_ts = self.commit_ts + 1
        wal = database._wal
        for name, writes in txn._writes.items():
            storage = database.table(name)
            updates = sorted(writes.updates.items())
            # Log-before-apply: the transaction's records are contiguous,
            # updates before inserts per table, matching the apply order
            # below so recovery replays positions identically.
            if wal is not None:
                if updates:
                    wal.append(
                        UpdateRecord(
                            txn.txn_id,
                            name,
                            tuple(
                                (position, dict(new_values))
                                for position, new_values in updates
                            ),
                        )
                    )
                if writes.pending:
                    wal.append(
                        InsertRecord(
                            txn.txn_id,
                            name,
                            tuple(dict(row) for row in writes.pending),
                        )
                    )
            if updates:
                before = [
                    (
                        position,
                        {
                            column: storage.rows[position][column]
                            for column in new_values
                        },
                    )
                    for position, new_values in updates
                ]
                storage.apply_update_at(updates)
                self._push_undo(
                    name, _UndoEntry(commit_ts, "update", before, len(before))
                )
                last = self._last_write.setdefault(name, {})
                for position, _values in updates:
                    last[position] = commit_ts
                self.stats.versions_created += len(before)
            if writes.pending:
                length_before = len(storage.rows)
                for stored in writes.pending:
                    storage.insert_stored(stored)
                self._push_undo(
                    name,
                    _UndoEntry(
                        commit_ts,
                        "insert",
                        length_before,
                        len(writes.pending),
                    ),
                )
                self.stats.versions_created += len(writes.pending)
        if wal is not None:
            wal.append(CommitRecord(txn.txn_id))
        self.commit_ts = commit_ts
        database.txn_stats.committed += 1
        self._finish_context(txn)

    def rollback(self, txn: MvccTransaction) -> None:
        """Discard the write set (nothing was applied — deferred writes)."""
        from repro.db.database import TransactionError

        if not txn.active:
            raise TransactionError("transaction is no longer active")
        self._abort(txn)

    def _abort(self, txn: MvccTransaction) -> None:
        database = self.database
        if database._wal is not None:
            from repro.db.wal import AbortRecord

            database._wal.append(AbortRecord(txn.txn_id))
        database.txn_stats.rolled_back += 1
        self._finish_context(txn)

    # -- autocommit version notes ------------------------------------------

    def note_insert(self, table: str, length_before: int, count: int) -> None:
        """Record an applied autocommit insert as a one-commit version."""
        commit_ts = self.commit_ts + 1
        self.commit_ts = commit_ts
        if self._active:
            self._push_undo(
                table, _UndoEntry(commit_ts, "insert", length_before, count)
            )
        self.stats.versions_created += count

    def note_update(
        self, table: str, before_images: list[tuple[int, dict]], count: int
    ) -> None:
        """Record an applied autocommit update as a one-commit version.

        The before-images are pushed as an undo entry only while someone can
        still read them (an open context); the last-write map is stamped
        unconditionally, because a future transaction that began before this
        autocommit must conflict on these positions.
        """
        commit_ts = self.commit_ts + 1
        self.commit_ts = commit_ts
        if self._active:
            self._push_undo(
                table, _UndoEntry(commit_ts, "update", before_images, count)
            )
        last = self._last_write.setdefault(table, {})
        for position, _values in before_images:
            last[position] = commit_ts
        self.stats.versions_created += count

    def _push_undo(self, table: str, entry: _UndoEntry) -> None:
        self._undo.setdefault(table, []).append(entry)

    # -- snapshot views ----------------------------------------------------

    def executor_for(self, context) -> Executor:
        """The executor serving ``context``'s reads.

        The live executor when the context is absent, finished, or its
        snapshot equals the live state for every table (the common fast
        path); otherwise a per-context executor over materialised view
        tables, cached until a commit, a buffered write, or DDL moves the
        stamp.
        """
        database = self.database
        if (
            context is None
            or not getattr(context, "is_mvcc_context", False)
            or not context.active
        ):
            return database._executor
        stamp = (
            self.commit_ts,
            context.writes_version,
            database.schema_generation,
        )
        cached = context._executor_cache
        if cached is not None and cached[0] == stamp:
            return cached[1]
        tables: dict[str, Table] = {}
        all_live = True
        for name, storage in database.tables.items():
            view, _visible = self._table_view(context, name)
            tables[name] = view
            if view is not storage:
                all_live = False
        if all_live:
            executor = database._executor
        else:
            # Snapshot views are plain materialised tables: no shard router
            # (unrouted execution over the aggregate view is the engine's
            # documented correctness-transparent fallback).
            executor = Executor(
                tables,
                compiled=database.compiled_execution,
                mode=database._executor.mode,
            )
        context._executor_cache = (stamp, executor)
        return executor

    def _table_view(self, context: _ReadContext, name: str):
        """``(view table, visible live length)`` for one context and table."""
        stamp = (
            self.commit_ts,
            context.writes_version,
            self.database.schema_generation,
        )
        cached = context._views.get(name)
        if cached is not None and cached[0] == stamp:
            return cached[1], cached[2]
        storage = self.database.table(name)
        view, visible = self._build_view(context, name, storage)
        context._views[name] = (stamp, view, visible)
        return view, visible

    def _build_view(self, context: _ReadContext, name: str, storage: Table):
        start_ts = context.start_ts
        undo = self._undo.get(name, ())
        writes = context.table_writes(name)
        has_writes = writes is not None and (
            writes.pending or writes.updates
        )
        newer = [entry for entry in undo if entry.commit_ts > start_ts]
        if not newer and not has_writes:
            # The snapshot equals the live table: read it directly.
            return storage, len(storage.rows)
        visible = len(storage.rows)
        overrides: dict[int, dict] = {}
        # Walk undo newest-to-oldest down to the snapshot; the oldest entry
        # newer than the snapshot wins per column (dict.update overwrites).
        for entry in reversed(undo):
            if entry.commit_ts <= start_ts:
                break
            if entry.kind == "insert":
                visible = min(visible, entry.payload)
            else:
                for position, old_values in entry.payload:
                    merged = overrides.get(position)
                    if merged is None:
                        overrides[position] = dict(old_values)
                    else:
                        merged.update(old_values)
        rows = storage.rows[:visible]
        for position, old_values in overrides.items():
            if position < visible:
                rows[position] = {**rows[position], **old_values}
        if has_writes:
            for position, new_values in writes.updates.items():
                if position < visible:
                    rows[position] = {**rows[position], **new_values}
            rows.extend(writes.pending)
        view = Table(storage.schema)
        for row in rows:
            view.adopt_row(row)
        return view, visible

    # -- vacuum ------------------------------------------------------------

    def horizon(self) -> int:
        """The oldest timestamp any open context can still read."""
        return min(
            (ctx.start_ts for ctx in self._active), default=self.commit_ts
        )

    def vacuum(self) -> int:
        """Reclaim undo entries no open context can reach; returns versions
        reclaimed.

        Entries with ``commit_ts <= horizon`` (the oldest live snapshot)
        can never be applied again — every reader already sees past them.
        Last-write stamps at or below the horizon are pruned too: no live or
        future transaction has a start timestamp below the horizon, so those
        stamps can never flag a conflict again.
        """
        horizon = self.horizon()
        reclaimed = 0
        for name in list(self._undo):
            undo = self._undo[name]
            keep_from = 0
            for entry in undo:
                if entry.commit_ts <= horizon:
                    reclaimed += entry.rows
                    keep_from += 1
                else:
                    break
            if keep_from:
                del undo[:keep_from]
            if not undo:
                del self._undo[name]
        for name in list(self._last_write):
            last = self._last_write[name]
            stale = [
                position for position, ts in last.items() if ts <= horizon
            ]
            for position in stale:
                del last[position]
            if not last:
                del self._last_write[name]
        self.stats.versions_reclaimed += reclaimed
        self.stats.vacuum_runs += 1
        return reclaimed

    # -- recovery ----------------------------------------------------------

    def rederive_commit_timestamps(self, committed: Iterable) -> None:
        """Re-derive the commit-timestamp counter after WAL replay.

        Commit timestamps are not logged — they are a pure commit-order
        counter — so recovery re-derives the counter from the
        :class:`CommitRecord` count of the committed prefix.  Replay applies
        everything directly to live storage with no open contexts, so the
        recovered database starts with empty undo and last-write maps.
        """
        self.commit_ts = sum(
            1 for record in committed if isinstance(record, CommitRecord)
        )

    # -- introspection -----------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Expose the manager's counters as a live ``mvcc`` registry view."""
        registry.register_view("mvcc", self.stats_dict)

    def stats_dict(self) -> dict:
        counters = self.stats.as_dict()
        counters.update(
            {
                "enabled": True,
                "commit_ts": self.commit_ts,
                "active_transactions": self.active_transactions(),
                "active_snapshots": self.active_snapshots(),
                "undo_entries": sum(
                    len(entries) for entries in self._undo.values()
                ),
            }
        )
        return counters


__all__ = [
    "MvccManager",
    "MvccStats",
    "MvccTransaction",
    "SerializationError",
    "Snapshot",
]
