"""Scalar and boolean expressions evaluated over rows.

These expressions are shared by the relational algebra (predicates, projection
expressions, aggregate arguments) and by the SQL parser.  Expressions are
immutable trees; evaluation takes a row dictionary.

Column references may be qualified (``o.o_id``) or unqualified (``o_id``);
qualified references resolve against rows whose keys carry the qualifier
(``"o.o_id"``) first and fall back to the bare name, so the same expression
works on both base-table rows and join-output rows.

Besides the tree-walking :meth:`Expression.evaluate` interpreter, every node
supports :meth:`Expression.compile`, which lowers the tree once into a plain
Python closure ``row -> value``.  The executor compiles each expression once
per operator and calls the closure per row, avoiding the per-row dispatch and
attribute lookups of the interpreter while producing byte-identical results
(including NULL semantics, qualified/unqualified fallback, and errors).

For the vectorized executor (:mod:`repro.db.vectorized`), nodes additionally
support :meth:`Expression.compile_batch`, which lowers the tree once into a
*batch kernel* ``batch -> value list``: one call evaluates the expression
over every row of a column batch, looping in comprehension form over whole
column arrays instead of dispatching per row.  ``compile_batch`` returns
``None`` for node types outside the vectorizable subset, which tells the
executor to fall back to the compiled (row-closure) tier for that subtree.
Kernels preserve the interpreter's value semantics exactly (NULL handling,
scalar folding of literals and parameter slots); evaluation-order-dependent
*error* behaviour (e.g. a division that a short-circuited AND would have
skipped) is preserved by the executor, which re-runs the query on the
compiled tier whenever a kernel raises.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

Row = Mapping[str, Any]

#: A compiled expression: a closure evaluating one row.
CompiledExpression = Callable[[Row], Any]

#: A column resolver lets callers that know the row layout supply a direct
#: getter for a column reference; returning ``None`` falls back to the
#: generic qualified/bare/suffix resolution of :meth:`ColumnRef.evaluate`.
ColumnResolver = Callable[["ColumnRef"], Optional[CompiledExpression]]

#: A batch kernel: evaluates an expression over every row of a column batch
#: (any object with a ``length`` attribute and column-array access supplied
#: by the resolver) and returns one value list aligned with the batch.
BatchKernel = Callable[[Any], list]

#: A batch resolver maps a column reference to the kernel producing that
#: column's value array; returning ``None`` marks the reference (and thus
#: the whole expression) as not vectorizable in the caller's context.
BatchResolver = Callable[["ColumnRef"], Optional[BatchKernel]]


class ExpressionError(Exception):
    """Raised when an expression cannot be evaluated against a row."""


class Expression:
    """Base class for row expressions."""

    def evaluate(self, row: Row) -> Any:
        """Evaluate this expression against ``row``."""
        raise NotImplementedError

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        """Lower the expression to a closure ``row -> value``.

        The closure must agree exactly with :meth:`evaluate` on every row,
        including raised errors.  The base implementation falls back to the
        interpreter, so node types without a specialised lowering still work.
        """
        return self.evaluate

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        """Lower the expression to a kernel ``batch -> value list``.

        The kernel's output must agree element-for-element with calling
        :meth:`evaluate` on each row of the batch.  Returns ``None`` when
        this node (or any subexpression) has no vectorized lowering; the
        caller then falls back to row-at-a-time execution for the subtree.
        """
        return None

    def referenced_columns(self) -> set[str]:
        """All column names (possibly qualified) referenced by the expression."""
        return set()

    def to_sql(self) -> str:
        """Render the expression in SQL syntax."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        value = self.value
        return lambda row: value

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        value = self.value
        return lambda batch: [value] * batch.length

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally qualified by a table/alias name."""

    name: str
    qualifier: str | None = None

    @property
    def qualified_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def evaluate(self, row: Row) -> Any:
        if self.qualifier:
            qualified = f"{self.qualifier}.{self.name}"
            if qualified in row:
                return row[qualified]
        if self.name in row:
            return row[self.name]
        # Fall back to any qualified key ending in ".name".
        suffix = f".{self.name}"
        matches = [k for k in row if k.endswith(suffix)]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise ExpressionError(
                f"ambiguous column {self.name!r}: candidates {sorted(matches)}"
            )
        raise ExpressionError(
            f"column {self.qualified_name!r} not found in row with keys "
            f"{sorted(row)}"
        )

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        if resolver is not None:
            getter = resolver(self)
            if getter is not None:
                return getter
        # Fast path: direct key lookups; the interpreter handles the rare
        # suffix-fallback and error cases so the semantics stay identical.
        name = self.name
        evaluate = self.evaluate
        if self.qualifier:
            qualified = f"{self.qualifier}.{name}"

            def getter(row: Row) -> Any:
                try:
                    return row[qualified]
                except KeyError:
                    pass
                try:
                    return row[name]
                except KeyError:
                    return evaluate(row)

        else:

            def getter(row: Row) -> Any:
                try:
                    return row[name]
                except KeyError:
                    return evaluate(row)

        return getter

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        if resolver is None:
            return None
        return resolver(self)

    def referenced_columns(self) -> set[str]:
        return {self.qualified_name}

    def to_sql(self) -> str:
        return self.qualified_name

    def __repr__(self) -> str:
        return f"ColumnRef({self.qualified_name!r})"


class ParameterSlot(Expression):
    """A positional parameter compiled against a shared slot buffer.

    Where :class:`repro.db.sqlparser.Parameter` must be substituted with a
    :class:`Literal` (rebuilding the expression tree) before every execution,
    a ``ParameterSlot`` reads its value out of a mutable ``slots`` sequence
    *at evaluation time*.  A prepared statement therefore rewrites its plan
    template once — every ``?`` becomes a slot bound to the statement's
    buffer — compiles that template once, and then merely writes fresh values
    into the buffer per execution.

    Slots deliberately use identity hashing/equality (no ``@dataclass``):
    each prepared statement owns distinct slot objects, so its rewritten plan
    stays equal to itself across executions (compile caches keyed on the
    expression hit every time) while never colliding with another statement's
    plan.
    """

    __slots__ = ("index", "slots")

    def __init__(self, index: int, slots: list) -> None:
        self.index = index
        self.slots = slots

    def evaluate(self, row: Row) -> Any:
        return self.slots[self.index]

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        slots = self.slots
        index = self.index
        return lambda row: slots[index]

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        # The buffer is read at kernel-call time, so a prepared statement's
        # vectorized plan stays reusable across executions.
        slots = self.slots
        index = self.index
        return lambda batch: [slots[index]] * batch.length

    def to_sql(self) -> str:
        return "?"

    def __repr__(self) -> str:
        return f"ParameterSlot(?{self.index})"


_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Operators with NULL-propagating (rather than NULL-is-false) semantics.
_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})

#: Operator symbol -> Python source operator, for source-level code
#: generation (the vectorized tier's fused-pipeline compiler).  Every
#: operator in :data:`_BINARY_OPS` has an entry.
BINARY_OP_SOURCE: dict[str, str] = {
    op: {"=": "==", "<>": "!="}.get(op, op) for op in _BINARY_OPS
}

#: Public view of the NULL-propagating operator set (see
#: :data:`_ARITHMETIC_OPS`); comparison operators instead collapse NULL
#: operands to ``False``.
ARITHMETIC_OPS = _ARITHMETIC_OPS


def scalar_function(name: str) -> Optional[Callable[..., Any]]:
    """The scalar-function implementation for ``name``, or ``None``.

    Exposes the same table :class:`FunctionCall` dispatches through, so
    source-level code generators bind the identical (NULL-tolerant)
    callables instead of duplicating their semantics.
    """
    return _SCALAR_FUNCTIONS.get(name.lower())


def _batch_scalar(expression: "Expression") -> Optional[Callable[[], Any]]:
    """A per-batch scalar reader for literal/parameter operands, else None.

    Batch kernels fold these operands to one read per batch instead of
    broadcasting them into a full value array.
    """
    if isinstance(expression, Literal):
        value = expression.value
        return lambda: value
    if isinstance(expression, ParameterSlot):
        slots = expression.slots
        index = expression.index
        return lambda: slots[index]
    return None


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary arithmetic or comparison operation."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise ExpressionError(f"unsupported binary operator {self.op!r}")

    def evaluate(self, row: Row) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            # SQL three-valued logic collapsed to None/False for simplicity.
            return None if self.op in {"+", "-", "*", "/", "%"} else False
        return _BINARY_OPS[self.op](left, right)

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        func = _BINARY_OPS[self.op]
        null_result = None if self.op in _ARITHMETIC_OPS else False
        # Fold literal operands into the closure: the common
        # ``column <op> constant`` shape then costs one lookup per row.
        if isinstance(self.right, Literal) and self.right.value is not None:
            left = self.left.compile(resolver)
            rhs_const = self.right.value

            def run(row: Row) -> Any:
                lhs = left(row)
                if lhs is None:
                    return null_result
                return func(lhs, rhs_const)

            return run
        if isinstance(self.left, Literal) and self.left.value is not None:
            right = self.right.compile(resolver)
            lhs_const = self.left.value

            def run(row: Row) -> Any:
                rhs = right(row)
                if rhs is None:
                    return null_result
                return func(lhs_const, rhs)

            return run
        left = self.left.compile(resolver)
        right = self.right.compile(resolver)

        def run(row: Row) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return null_result
            return func(lhs, rhs)

        return run

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        func = _BINARY_OPS[self.op]
        null_result = None if self.op in _ARITHMETIC_OPS else False
        left_scalar = _batch_scalar(self.left)
        right_scalar = _batch_scalar(self.right)
        if left_scalar is not None and right_scalar is not None:

            def run_const(batch: Any) -> list:
                if batch.length == 0:
                    return []
                lhs = left_scalar()
                rhs = right_scalar()
                value = (
                    null_result
                    if lhs is None or rhs is None
                    else func(lhs, rhs)
                )
                return [value] * batch.length

            return run_const
        if right_scalar is not None:
            left = self.left.compile_batch(resolver)
            if left is None:
                return None

            def run_right_const(batch: Any) -> list:
                values = left(batch)
                rhs = right_scalar()
                if rhs is None:
                    return [null_result] * len(values)
                return [
                    null_result if v is None else func(v, rhs) for v in values
                ]

            return run_right_const
        if left_scalar is not None:
            right = self.right.compile_batch(resolver)
            if right is None:
                return None

            def run_left_const(batch: Any) -> list:
                values = right(batch)
                lhs = left_scalar()
                if lhs is None:
                    return [null_result] * len(values)
                return [
                    null_result if v is None else func(lhs, v) for v in values
                ]

            return run_left_const
        left = self.left.compile_batch(resolver)
        right = self.right.compile_batch(resolver)
        if left is None or right is None:
            return None

        def run(batch: Any) -> list:
            return [
                null_result if lhs is None or rhs is None else func(lhs, rhs)
                for lhs, rhs in zip(left(batch), right(batch))
            ]

        return run

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        op = "=" if self.op == "==" else self.op
        return f"{self.left.to_sql()} {op} {self.right.to_sql()}"

    def __repr__(self) -> str:
        return f"BinaryOp({self.op!r}, {self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """AND/OR over a sequence of boolean expressions."""

    op: str  # "and" | "or"
    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.op not in {"and", "or"}:
            raise ExpressionError(f"unsupported boolean operator {self.op!r}")
        if len(self.operands) < 2:
            raise ExpressionError("BooleanOp requires at least two operands")

    def evaluate(self, row: Row) -> Any:
        values = (bool(o.evaluate(row)) for o in self.operands)
        return all(values) if self.op == "and" else any(values)

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        operands = tuple(o.compile(resolver) for o in self.operands)
        if self.op == "and":

            def run(row: Row) -> bool:
                for operand in operands:
                    if not operand(row):
                        return False
                return True

        else:

            def run(row: Row) -> bool:
                for operand in operands:
                    if operand(row):
                        return True
                return False

        return run

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        operands = []
        for operand in self.operands:
            kernel = operand.compile_batch(resolver)
            if kernel is None:
                return None
            operands.append(kernel)
        first, rest = operands[0], operands[1:]
        if self.op == "and":

            def run(batch: Any) -> list:
                result = [bool(v) for v in first(batch)]
                for kernel in rest:
                    values = kernel(batch)
                    result = [r and bool(v) for r, v in zip(result, values)]
                return result

        else:

            def run(batch: Any) -> list:
                result = [bool(v) for v in first(batch)]
                for kernel in rest:
                    values = kernel(batch)
                    result = [r or bool(v) for r, v in zip(result, values)]
                return result

        return run

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for operand in self.operands:
            cols |= operand.referenced_columns()
        return cols

    def to_sql(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(o.to_sql() for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Boolean negation."""

    operand: Expression

    def evaluate(self, row: Row) -> Any:
        return not bool(self.operand.evaluate(row))

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        operand = self.operand.compile(resolver)
        return lambda row: not operand(row)

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        operand = self.operand.compile_batch(resolver)
        if operand is None:
            return None
        return lambda batch: [not v for v in operand(batch)]

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL`` test."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Row) -> Any:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        operand = self.operand.compile(resolver)
        if self.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        operand = self.operand.compile_batch(resolver)
        if operand is None:
            return None
        if self.negated:
            return lambda batch: [v is not None for v in operand(batch)]
        return lambda batch: [v is None for v in operand(batch)]

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.to_sql()} {suffix}"


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` membership test over literal values."""

    operand: Expression
    values: tuple[Any, ...]

    def evaluate(self, row: Row) -> Any:
        return self.operand.evaluate(row) in self.values

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        operand = self.operand.compile(resolver)
        original = self.values
        try:
            values = frozenset(original)
        except TypeError:
            return lambda row: operand(row) in original

        def run(row: Row) -> bool:
            value = operand(row)
            try:
                return value in values
            except TypeError:
                # Unhashable row value: match the interpreter's tuple scan.
                return value in original

        return run

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        operand = self.operand.compile_batch(resolver)
        if operand is None:
            return None
        original = self.values
        try:
            values: Any = frozenset(original)
        except TypeError:
            values = None

        def run(batch: Any) -> list:
            out = []
            append = out.append
            for value in operand(batch):
                if values is None:
                    append(value in original)
                    continue
                try:
                    append(value in values)
                except TypeError:
                    append(value in original)
            return out

        return run

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        rendered = ", ".join(Literal(v).to_sql() for v in self.values)
        return f"{self.operand.to_sql()} IN ({rendered})"


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "upper": lambda v: v.upper() if v is not None else None,
    "lower": lambda v: v.lower() if v is not None else None,
    "abs": lambda v: abs(v) if v is not None else None,
    "length": lambda v: len(v) if v is not None else None,
    "coalesce": lambda *vs: next((v for v in vs if v is not None), None),
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call (e.g. ``upper(name)``, ``abs(x)``)."""

    name: str
    args: tuple[Expression, ...]

    def evaluate(self, row: Row) -> Any:
        func = _SCALAR_FUNCTIONS.get(self.name.lower())
        if func is None:
            raise ExpressionError(f"unknown scalar function {self.name!r}")
        return func(*(a.evaluate(row) for a in self.args))

    def compile(self, resolver: ColumnResolver | None = None) -> CompiledExpression:
        func = _SCALAR_FUNCTIONS.get(self.name.lower())
        if func is None:
            # Defer the "unknown function" error to call time, matching the
            # interpreter (which only fails once a row is evaluated).
            return self.evaluate
        args = tuple(a.compile(resolver) for a in self.args)
        return lambda row: func(*(a(row) for a in args))

    def compile_batch(
        self, resolver: BatchResolver | None = None
    ) -> Optional[BatchKernel]:
        func = _SCALAR_FUNCTIONS.get(self.name.lower())
        if func is None:
            # No lowering: the caller falls back to the row tiers, which
            # surface the unknown-function error at evaluation time.
            return None
        kernels = []
        for arg in self.args:
            kernel = arg.compile_batch(resolver)
            if kernel is None:
                return None
            kernels.append(kernel)
        if not kernels:

            def run_no_args(batch: Any) -> list:
                if batch.length == 0:
                    return []
                return [func() for _ in range(batch.length)]

            return run_no_args

        def run(batch: Any) -> list:
            columns = [kernel(batch) for kernel in kernels]
            return [func(*values) for values in zip(*columns)]

        return run

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for arg in self.args:
            cols |= arg.referenced_columns()
        return cols

    def to_sql(self) -> str:
        return f"{self.name}({', '.join(a.to_sql() for a in self.args)})"


def conjunction(predicates: Sequence[Expression]) -> Expression | None:
    """Combine ``predicates`` into a single AND expression.

    Returns ``None`` for an empty sequence and the lone predicate for a
    singleton, which keeps generated SQL tidy.
    """
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return BooleanOp("and", tuple(predicates))


def equals(column: str, value: Any, qualifier: str | None = None) -> BinaryOp:
    """Convenience constructor for ``column = value`` predicates."""
    return BinaryOp("=", ColumnRef(column, qualifier), Literal(value))


def compile_expression(
    expression: Expression, resolver: ColumnResolver | None = None
) -> CompiledExpression:
    """Compile ``expression`` to a closure (see :meth:`Expression.compile`)."""
    return expression.compile(resolver)
