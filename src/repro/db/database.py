"""The Database facade: DDL, DML, SQL queries, statistics, and cost estimates.

This is the "server" the simulated network talks to.  Everything the COBRA
cost model needs from the database side is exposed here:

* ``execute_sql`` / ``execute_plan`` return a :class:`QueryResult` carrying
  rows, cardinality, and the byte size of the result;
* ``estimate`` returns a :class:`QueryEstimate` with the estimated result
  cardinality, row width, and server-side time-to-first/last-row — these feed
  ``NQ``, ``Srow(Q)``, ``CFQ`` and ``CLQ`` in the cost model (the paper
  "consulted the database query optimizer to get an estimate of query
  execution times").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.db import algebra
from repro.db.executor import Executor
from repro.db.schema import Column, ForeignKey, Schema, TableSchema
from repro.db.sqlgen import to_sql
from repro.db.sqlparser import bind_parameters, count_parameters, parse_sql
from repro.db.statistics import StatisticsCatalog, TableStatistics
from repro.db.table import Row, Table

#: Server-side per-row processing cost, in seconds, used for CFQ/CLQ estimates.
DEFAULT_SERVER_ROW_COST = 2e-6


@dataclass
class QueryResult:
    """Result of executing a query: rows plus size accounting."""

    rows: list[Row]
    row_width: int
    sql: str

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def byte_size(self) -> int:
        return self.cardinality * self.row_width

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class QueryEstimate:
    """Optimizer-style estimate for one query."""

    cardinality: float
    row_width: int
    first_row_time: float
    last_row_time: float

    @property
    def byte_size(self) -> float:
        return self.cardinality * self.row_width


class Database:
    """An in-memory database: schema, tables, statistics, SQL execution."""

    def __init__(
        self,
        server_row_cost: float = DEFAULT_SERVER_ROW_COST,
        *,
        compiled_execution: bool = True,
    ) -> None:
        self.schema = Schema()
        self.tables: dict[str, Table] = {}
        self.statistics = StatisticsCatalog(self.schema)
        self.server_row_cost = server_row_cost
        self._executor = Executor(self.tables, compiled=compiled_execution)
        self.queries_executed = 0

    # -- DDL / DML -------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: Optional[str] = None,
        foreign_keys: Optional[Iterable[ForeignKey]] = None,
    ) -> Table:
        """Create a table and register it in the schema and catalog."""
        schema = TableSchema(name, columns, primary_key, foreign_keys)
        self.schema.add(schema)
        table = Table(schema)
        self.tables[name] = table
        return table

    def insert(self, table: str, rows: Iterable[Row]) -> int:
        """Insert rows into ``table``; returns the number inserted."""
        return self.table(table).insert_many(rows)

    def table(self, name: str) -> Table:
        """Return the :class:`Table` called ``name``."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r}; tables are {sorted(self.tables)}"
            ) from None

    def analyze(self) -> None:
        """Refresh catalog statistics from current table contents."""
        self.statistics.refresh(self.tables)

    def set_table_statistics(self, table: str, stats: TableStatistics) -> None:
        """Install statistics explicitly (analytical/full-scale experiments)."""
        self.statistics.set_table_stats(table, stats)

    # -- query execution -------------------------------------------------

    def execute_sql(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Parse, bind, and execute a SQL SELECT statement."""
        plan = parse_sql(sql)
        if count_parameters(plan):
            plan = bind_parameters(plan, params)
        return self.execute_plan(plan, sql=sql)

    def execute_plan(
        self, plan: algebra.PlanNode, sql: Optional[str] = None
    ) -> QueryResult:
        """Execute an algebra plan directly."""
        rows = self._executor.execute(plan)
        width = self.statistics.estimate_row_width(plan)
        self.queries_executed += 1
        return QueryResult(rows=rows, row_width=width, sql=sql or to_sql(plan))

    def execute_update_sql(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Execute a simple UPDATE statement; returns the number of rows changed.

        Supported shape: ``update <table> set <col> = <value> [where <col> =
        <value-or-?>]``.  This is enough for the evaluation programs that
        interleave updates with queries (Wilos pattern A); richer DML is out
        of scope for the reproduction.
        """
        import re

        pattern = re.compile(
            r"^\s*update\s+(?P<table>\w+)\s+set\s+(?P<set_col>\w+)\s*=\s*"
            r"(?P<set_val>\?|'[^']*'|[\w.-]+)"
            r"(?:\s+where\s+(?P<where_col>\w+)\s*=\s*"
            r"(?P<where_val>\?|'[^']*'|[\w.-]+))?\s*$",
            re.IGNORECASE,
        )
        match = pattern.match(sql)
        if match is None:
            raise ValueError(f"unsupported UPDATE statement: {sql!r}")
        params = list(params)

        def resolve(token: str) -> Any:
            if token == "?":
                if not params:
                    raise ValueError("missing parameter for UPDATE statement")
                return params.pop(0)
            if token.startswith("'") and token.endswith("'"):
                return token[1:-1]
            try:
                return int(token)
            except ValueError:
                try:
                    return float(token)
                except ValueError:
                    return token

        table = self.table(match.group("table"))
        set_value = resolve(match.group("set_val"))
        where_col = match.group("where_col")
        if where_col is None:
            predicate = lambda row: True  # noqa: E731 - tiny local predicate
        else:
            where_value = resolve(match.group("where_val"))
            predicate = lambda row: row.get(where_col) == where_value  # noqa: E731
        self.queries_executed += 1
        return table.update_rows(predicate, {match.group("set_col"): set_value})

    # -- estimation ------------------------------------------------------

    def estimate_sql(self, sql: str, params: Sequence[Any] = ()) -> QueryEstimate:
        """Estimate cost-model inputs for a SQL statement."""
        plan = parse_sql(sql)
        if count_parameters(plan) and params:
            plan = bind_parameters(plan, params)
        return self.estimate_plan(plan)

    def estimate_plan(self, plan: algebra.PlanNode) -> QueryEstimate:
        """Estimate cost-model inputs for an algebra plan."""
        cardinality = self.statistics.estimate_cardinality(plan)
        width = self.statistics.estimate_row_width(plan)
        first, last = self.statistics.estimate_server_time(
            plan, self.server_row_cost
        )
        return QueryEstimate(
            cardinality=cardinality,
            row_width=width,
            first_row_time=first,
            last_row_time=last,
        )

    # -- convenience -----------------------------------------------------

    def row_count(self, table: str) -> int:
        """Number of rows currently stored in ``table``."""
        return len(self.table(table))

    def reset_counters(self) -> None:
        """Reset the executed-query counter (per-experiment bookkeeping)."""
        self.queries_executed = 0
