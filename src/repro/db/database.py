"""The Database facade: DDL, DML, SQL queries, statistics, and cost estimates.

This is the "server" the simulated network talks to.  Everything the COBRA
cost model needs from the database side is exposed here:

* ``execute_sql`` / ``execute_plan`` return a :class:`QueryResult` carrying
  rows, cardinality, and the byte size of the result;
* ``estimate`` returns a :class:`QueryEstimate` with the estimated result
  cardinality, row width, and server-side time-to-first/last-row — these feed
  ``NQ``, ``Srow(Q)``, ``CFQ`` and ``CLQ`` in the cost model (the paper
  "consulted the database query optimizer to get an estimate of query
  execution times").

Statement preparation
---------------------

Database applications issue the same parameterized query shapes over and
over (the N+1 lazy-load loop is the canonical pattern), so the facade keeps
an LRU **statement cache** keyed by SQL text: :meth:`Database.prepare`
returns a :class:`PreparedStatement` holding the parsed plan, the plan-keyed
:class:`QueryEstimate`, the estimated output row width, and — for
point-lookup shapes (``select * from t where col = ?``) — an index-backed
execution fast path.  ``execute_sql`` / ``estimate_sql`` route through the
cache, so repeated statements parse once and estimate once.

Invalidation rules:

* ``create_table`` (DDL) clears the whole statement cache and bumps
  :attr:`Database.schema_generation`;
* ``analyze()`` / ``set_table_statistics`` bump
  :attr:`Database.stats_generation`, which lazily invalidates every cached
  estimate (statements re-estimate on next use);
* inserts/updates bump the affected :attr:`repro.db.table.Table.version`,
  which likewise invalidates the cached estimates of statements touching
  that table.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.db import algebra
from repro.db.executor import Executor, _FusedScan
from repro.db.expressions import BinaryOp, ColumnRef, Literal
from repro.db.schema import Column, ForeignKey, Schema, TableSchema
from repro.db.sqlgen import to_sql
from repro.db.sqlparser import (
    Parameter,
    SQLSyntaxError,
    UpdateStatement,
    bind_parameter_slots,
    bind_update_slots,
    count_parameters,
    count_update_parameters,
    parse_sql,
    parse_update,
)
from repro.db.sharding import (
    ShardedTable,
    ShardRouter,
    merge_execution_counters,
)
from repro.db.mvcc import MvccManager, MvccTransaction, Snapshot
from repro.db.statistics import StatisticsCatalog, TableStatistics
from repro.db.table import Row, Table
from repro.db.wal import (
    AbortRecord,
    CommitRecord,
    CreateTableRecord,
    InsertRecord,
    ShardTableRecord,
    UpdateRecord,
    WalError,
    WriteAheadLog,
)

#: Server-side per-row processing cost, in seconds, used for CFQ/CLQ estimates.
DEFAULT_SERVER_ROW_COST = 2e-6

#: Prepared statements kept in the LRU statement cache before eviction.
DEFAULT_STATEMENT_CACHE_SIZE = 128

_UPDATE_RE = re.compile(r"\s*update\b", re.IGNORECASE)


@dataclass
class QueryResult:
    """Result of executing a query: rows plus size accounting."""

    rows: list[Row]
    row_width: int
    sql: str

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def byte_size(self) -> int:
        return self.cardinality * self.row_width

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class QueryEstimate:
    """Optimizer-style estimate for one query."""

    cardinality: float
    row_width: int
    first_row_time: float
    last_row_time: float

    @property
    def byte_size(self) -> float:
        return self.cardinality * self.row_width


@dataclass
class StatementCacheStats:
    """Counters for the engine-level prepared-statement cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class _PointLookup:
    """Execution fast path for ``select * from t where col = <value>``.

    Prepared at plan-compilation time; executes through the table's lazy
    secondary hash index (:meth:`repro.db.table.Table.index_for`) instead of
    scanning.  Output rows are materialised by the executor's own
    :class:`~repro.db.executor._FusedScan` (the exact ``bare +
    alias.column`` layout every scan produces), so the fast path cannot
    drift from the generic path's row shape.
    """

    __slots__ = ("table", "column", "value", "_fused", "_router")

    def __init__(
        self,
        table: str,
        alias: str,
        column: str,
        value: Any,
        storage: Table,
        router: Optional[ShardRouter] = None,
    ) -> None:
        self.table = table
        self.column = column
        #: a :class:`Parameter` (bound per execution) or a constant.
        self.value = value
        self._fused = _FusedScan(storage, alias, [])
        self._router = router

    def rows(self, table: Table, params: Sequence[Any]) -> Optional[list[Row]]:
        """Matching output rows, or ``None`` when the fast path cannot run.

        Over a :class:`~repro.db.sharding.ShardedTable` the fast path is
        **shard-aware**: a lookup on the shard key probes only the secondary
        index of the shard the value hashes to (counted as a routed
        execution); lookups on other columns use the aggregate index.
        """
        value = self.value
        if isinstance(value, Parameter):
            if value.index >= len(params):
                raise SQLSyntaxError(
                    f"missing value for parameter ?{value.index}"
                )
            value = params[value.index]
        sharded = isinstance(table, ShardedTable)
        shard_routed = sharded and self.column == table.shard_key
        shard = None
        if shard_routed:
            shard = table.shard_index(value)
            index = table.shards[shard].index_for(self.column)
        else:
            index = table.index_for(self.column)
        try:
            bucket = index.get(value, ())
        except TypeError:  # unhashable lookup value; generic path handles it
            return None
        if sharded and self._router is not None:
            if shard_routed:
                self._router.stats.routed += 1
                self._router.last_route = {"kind": "routed", "shards": (shard,)}
            else:
                self._router.stats.fallback += 1
                self._router.last_route = {"kind": "fallback", "shards": None}
        return [self._fused.materialize(row) for row in bucket]


class PreparedStatement:
    """A parsed, plan-cached SQL statement bound to one :class:`Database`.

    Query statements cache the parsed algebra plan (with unbound ``?``
    parameters), the plan-keyed :class:`QueryEstimate`, and the estimated
    output row width; point-lookup shapes additionally carry an index-backed
    execution fast path.  UPDATE statements cache the parsed
    :class:`repro.db.sqlparser.UpdateStatement`.

    Execution is **slot-compiled**: at preparation time every ``?`` in the
    plan (or UPDATE) is rewritten once into a
    :class:`repro.db.expressions.ParameterSlot` reading the statement's
    mutable parameter buffer, so executing with fresh parameters writes the
    buffer and re-runs the *same* template object — no per-call plan
    substitution, and the executor's expression-compile caches hit on every
    execution.  This extends the prepared fast path to arbitrary
    parameterized statement shapes, not just point lookups.  Because the
    template plan object is stable, the executor caches the statement's
    *vectorized* lowering right next to its compiled closures (both keyed
    by the plan), so slot-compiled statements replay on the vectorized tier
    with zero per-call lowering as well.

    Cached estimates revalidate lazily against the database's statistics
    generation and the versions of every referenced table, so ``analyze()``
    and insert-driven table mutations are reflected on the next use without
    reparsing.
    """

    def __init__(
        self,
        database: "Database",
        sql: str,
        *,
        plan: Optional[algebra.PlanNode] = None,
        update: Optional[UpdateStatement] = None,
    ) -> None:
        if (plan is None) == (update is None):
            raise ValueError("exactly one of plan/update must be given")
        self.database = database
        self.sql = sql
        self.plan = plan
        self.update = update
        self.schema_generation = database.schema_generation
        if plan is not None:
            self.parameter_count = count_parameters(plan)
            self.tables = tuple(
                sorted({scan.table for scan in algebra.find_scans(plan)})
            )
        else:
            self.parameter_count = count_update_parameters(update)
            self.tables = (update.table,)
        #: per-execution parameter buffer read by the slotted template.
        self._slots: list[Any] = [None] * self.parameter_count
        if plan is not None:
            # The execution template: every ? rewritten to a ParameterSlot
            # reading self._slots.  Built once, so the executor's compile
            # caches see the *same* plan object on every execution and the
            # plan is never re-substituted or re-lowered per call.
            self._exec_plan = (
                bind_parameter_slots(plan, self._slots)
                if self.parameter_count
                else plan
            )
            self._exec_update: Optional[UpdateStatement] = None
        else:
            self._exec_plan = None
            self._exec_update = (
                bind_update_slots(update, self._slots)
                if self.parameter_count
                else update
            )
        #: compiled UPDATE template: (predicate closure, [(column, value)]).
        self._compiled_update: Optional[tuple] = None
        self.point_lookup = (
            self._analyze_point_lookup(plan) if plan is not None else None
        )
        #: executions through this statement (fast path included).
        self.executions = 0
        #: how often the plan-keyed estimate was (re)computed.
        self.estimates_computed = 0
        #: per-execution markers (tracing / EXPLAIN): the tier that served
        #: the most recent execution, the router's dispatch for it, and the
        #: vectorized fallback reason behind it, if any.
        self.last_tier: Optional[str] = None
        self.last_route: Optional[dict] = None
        self.last_fallback_reason: Optional[str] = None
        #: how the rows were actually produced: "codegen" / "kernel" inside
        #: the vectorized tier, the row-tier name, or "point-lookup".
        self.last_execution_path: Optional[str] = None
        #: runtime-feedback drift: traced executions whose actual output
        #: cardinality disagreed with the optimizer's estimate by more than
        #: the catalog's DRIFT_RATIO (either direction).
        self.drift_events = 0
        self._estimate: Optional[QueryEstimate] = None
        self._row_width: Optional[int] = None
        self._stamp: Optional[tuple] = None

    # -- properties ------------------------------------------------------

    @property
    def is_query(self) -> bool:
        """True for SELECT statements, False for UPDATE statements."""
        return self.plan is not None

    # -- execution -------------------------------------------------------

    def execute(self, params: Sequence[Any] = ()) -> QueryResult:
        """Execute the prepared query with ``params`` bound positionally.

        Parameters are written into the statement's slot buffer and the
        pre-built slotted plan template runs directly: no per-call plan
        rebuild, and the executor's compile caches hit because the template
        object is identical across executions.
        """
        if self.plan is None:
            raise SQLSyntaxError(
                f"prepared UPDATE cannot be executed as a query: {self.sql!r}"
            )
        database = self.database
        mvcc = database._mvcc
        # Reads run against the ambient context's snapshot view when MVCC
        # is on; the live executor otherwise.  The index-backed point-lookup
        # fast path probes live storage, so it only runs when the context's
        # snapshot *is* the live state (the common no-concurrency case).
        executor = (
            database._executor
            if mvcc is None
            else mvcc.executor_for(database._txn)
        )
        if (
            self.point_lookup is not None
            and database.compiled_execution
            and executor is database._executor
        ):
            table = database.tables.get(self.point_lookup.table)
            if table is not None:
                router = database._router
                if router is not None:
                    router.last_route = None
                rows = self.point_lookup.rows(table, params)
                if rows is not None:
                    database.queries_executed += 1
                    self.executions += 1
                    self.last_tier = "point-lookup"
                    self.last_route = (
                        router.last_route if router is not None else None
                    )
                    self.last_fallback_reason = None
                    self.last_execution_path = "point-lookup"
                    return QueryResult(
                        rows=rows, row_width=self.row_width(), sql=self.sql
                    )
        if self.parameter_count:
            self._bind_slots(params)
        rows = executor.execute(self._exec_plan)
        database.queries_executed += 1
        self.executions += 1
        self.last_tier = executor.last_tier
        self.last_fallback_reason = executor.last_fallback_reason
        self.last_execution_path = executor.last_execution_path
        self.last_route = (
            executor.router.last_route if executor.router is not None else None
        )
        return QueryResult(rows=rows, row_width=self.row_width(), sql=self.sql)

    def execute_update(self, params: Sequence[Any] = ()) -> int:
        """Execute the prepared UPDATE; returns the number of rows changed.

        Like queries, prepared UPDATEs are slot-compiled: the predicate and
        assignment expressions are lowered to closures exactly once over the
        statement's lifetime, and each execution only writes the parameter
        buffer.
        """
        if self.update is None:
            raise SQLSyntaxError(
                f"prepared query cannot be executed as an UPDATE: {self.sql!r}"
            )
        if self.parameter_count:
            self._bind_slots(params)
        if self._compiled_update is None:
            statement = self._exec_update
            if statement.predicate is None:
                predicate = lambda row: True  # noqa: E731 - trivial predicate
            else:
                predicate = statement.predicate.compile()
            assignments: dict[str, Any] = {}
            for column, expression in statement.assignments:
                if isinstance(expression, Literal):
                    assignments[column] = expression.value
                else:
                    assignments[column] = expression.compile()
            self._compiled_update = (predicate, assignments)
        predicate, assignments = self._compiled_update
        self.database.queries_executed += 1
        self.executions += 1
        # Route through the database-level chokepoint so the write-ahead
        # log and any active transaction observe the statement.
        return self.database.update_table(
            self._exec_update.table, predicate, assignments
        )

    def _bind_slots(self, params: Sequence[Any]) -> None:
        """Write ``params`` into the slot buffer, validating the count."""
        count = self.parameter_count
        if len(params) < count:
            raise SQLSyntaxError(
                f"missing value for parameter ?{len(params)}"
            )
        slots = self._slots
        for index in range(count):
            slots[index] = params[index]

    # -- runtime feedback ------------------------------------------------

    def observe_actual(self, actual_rows: int) -> bool:
        """Offer an executed cardinality to the statistics catalog.

        Called from the traced execution path with the actual result size;
        bumps this statement's :attr:`drift_events` when the observation
        disagrees with the plan-keyed estimate beyond the catalog's drift
        ratio.  Returns whether the observation drifted.
        """
        if self.plan is None:
            return False
        drifted = self.database.statistics.observe(self.plan, actual_rows)
        if drifted:
            self.drift_events += 1
        return drifted

    # -- estimation ------------------------------------------------------

    def estimate(self, params: Sequence[Any] = ()) -> QueryEstimate:
        """The plan-keyed estimate (cached; ``params`` do not affect it).

        Selectivity estimation treats a bound-later ``?`` parameter exactly
        like a literal (``1 / distinct(column)`` for equality), so the
        template plan prices identically to any bound instance — which is
        what lets one prepared statement serve every parameter value.
        """
        if self.plan is None:
            raise SQLSyntaxError(
                f"prepared UPDATE has no query estimate: {self.sql!r}"
            )
        self._revalidate()
        if self._estimate is None:
            self._estimate = self.database.estimate_plan(self.plan)
            self.estimates_computed += 1
        return self._estimate

    def row_width(self) -> int:
        """Estimated output row width in bytes (cached with the estimate)."""
        self._revalidate()
        if self._row_width is None:
            self._row_width = self.database.statistics.estimate_row_width(
                self.plan
            )
        return self._row_width

    def output_columns(self) -> Optional[list[str]]:
        """Statically-known output column names of the prepared query.

        Lets drivers describe a result set even when it is empty.  Returns
        ``None`` for UPDATE statements and for plan shapes whose output
        layout is only known at execution time (joins).
        """
        if self.plan is None:
            return None
        return _plan_output_columns(self.plan, self.database)

    # -- internals -------------------------------------------------------

    def _revalidate(self) -> None:
        """Drop cached estimates when statistics or table contents moved."""
        database = self.database
        stamp = (
            database.stats_generation,
            tuple(
                table.version
                for name in self.tables
                if (table := database.tables.get(name)) is not None
            ),
        )
        if stamp != self._stamp:
            self._stamp = stamp
            self._estimate = None
            self._row_width = None

    def _analyze_point_lookup(
        self, plan: algebra.PlanNode
    ) -> Optional[_PointLookup]:
        """Detect the ``select * from t where col = <value>`` shape."""
        if not isinstance(plan, algebra.Select):
            return None
        scan = plan.child
        if not isinstance(scan, algebra.Scan):
            return None
        predicate = plan.predicate
        if not isinstance(predicate, BinaryOp) or predicate.op not in {
            "=",
            "==",
        }:
            return None
        for column, value in (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        ):
            if isinstance(column, ColumnRef) and isinstance(
                value, (Parameter, Literal)
            ):
                break
        else:
            return None
        if isinstance(value, Literal):
            value = value.value
        storage = self.database.tables.get(scan.table)
        if storage is None:
            return None
        if not storage.schema.has_column(column.name):
            return None
        alias = scan.effective_alias
        if column.qualifier is not None and column.qualifier != alias:
            return None
        return _PointLookup(
            scan.table,
            alias,
            column.name,
            value,
            storage,
            router=self.database._router,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "query" if self.is_query else "update"
        return f"<PreparedStatement {kind} {self.sql!r}>"


def _plan_output_columns(
    plan: algebra.PlanNode, database: "Database"
) -> Optional[list[str]]:
    """Output column names of ``plan``, when derivable without executing."""
    if isinstance(plan, (algebra.Select, algebra.Sort, algebra.Limit)):
        return _plan_output_columns(plan.child, database)
    if isinstance(plan, algebra.Project):
        return [output.name for output in plan.outputs]
    if isinstance(plan, algebra.Aggregate):
        return [column.name for column in plan.group_by] + [
            spec.name for spec in plan.aggregates
        ]
    if isinstance(plan, algebra.Scan):
        if not database.schema.has_table(plan.table):
            return None
        columns = database.schema.table(plan.table).column_names
        alias = plan.effective_alias
        return list(columns) + [f"{alias}.{name}" for name in columns]
    # Joins: the merged-row key layout depends on bare-name collisions at
    # execution time; defer to row-derived description.
    return None


class TransactionError(Exception):
    """Raised on invalid transaction usage (nested begin, finished reuse)."""


@dataclass
class TransactionStats:
    """Counters for the database's transaction activity."""

    begun: int = 0
    committed: int = 0
    rolled_back: int = 0


class Transaction:
    """One explicit server-side transaction (single-writer model).

    Created by :meth:`Database.begin`.  While active, every write to the
    database belongs to this transaction: its WAL records are tagged with
    the transaction id (durable only once the :class:`CommitRecord` lands),
    and an in-memory undo list of before-images makes :meth:`rollback`
    restore the pre-transaction state exactly — inserts are truncated away
    (storage is append-only) and updates re-apply their old values through
    the same :meth:`repro.db.table.Table.apply_update` hook the live path
    uses, so shard rehoming on rollback matches the forward path.

    The engine is deliberately **single-writer**: beginning a second
    transaction while one is active raises :class:`TransactionError` (MVCC
    snapshot isolation is future work — see ROADMAP).  Reads are always
    allowed and see the transaction's own writes.
    """

    def __init__(self, database: "Database", txn_id: int) -> None:
        self.database = database
        self.txn_id = txn_id
        self.active = True
        #: undo entries, applied in reverse on rollback:
        #: ("insert", table, length_before) | ("update", table, before_images)
        self._undo: list[tuple] = []

    def _record_insert(self, table: str, length_before: int) -> None:
        self._undo.append(("insert", table, length_before))

    def _record_update(
        self, table: str, before_images: list[tuple[Row, dict]]
    ) -> None:
        self._undo.append(("update", table, before_images))

    def commit(self) -> None:
        """Make the transaction's writes durable (appends the commit record)."""
        self.database._commit(self)

    def rollback(self) -> None:
        """Undo every write of this transaction and mark it aborted."""
        self.database._rollback(self)

    def __enter__(self) -> "Transaction":
        if not self.active:
            raise TransactionError("transaction is no longer active")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "finished"
        return f"<Transaction {self.txn_id} {state}>"


class Database:
    """An in-memory database: schema, tables, statistics, SQL execution."""

    def __init__(
        self,
        server_row_cost: float = DEFAULT_SERVER_ROW_COST,
        *,
        compiled_execution: bool = True,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        execution_mode: Optional[str] = None,
        vector_backend: Optional[str] = None,
        wal: Any = None,
        mvcc: bool = False,
    ) -> None:
        self.schema = Schema()
        self.tables: dict[str, Table] = {}
        self.statistics = StatisticsCatalog(self.schema)
        self.server_row_cost = server_row_cost
        if execution_mode is not None:
            # An explicit mode wins over the legacy compiled flag; the
            # point-lookup fast path follows it (enabled unless the
            # database is fully interpreted).
            compiled_execution = execution_mode != "interpreted"
        self.compiled_execution = compiled_execution
        self._executor = Executor(
            self.tables,
            compiled=compiled_execution,
            mode=execution_mode,
            vector_backend=vector_backend,
        )
        self.queries_executed = 0
        #: set once a table is sharded; consulted by the executor before
        #: normal execution and by the point-lookup fast path.
        self._router: Optional[ShardRouter] = None
        #: pending (workers, mode) parallel-scatter config, applied to the
        #: router when sharding is enabled (or immediately if it already is).
        self._parallel_config: Optional[tuple[Optional[int], str]] = None
        #: LRU prepared-statement cache, keyed by SQL text.
        self._statements: OrderedDict[str, PreparedStatement] = OrderedDict()
        self.statement_cache_size = statement_cache_size
        self.statement_cache = StatementCacheStats()
        #: bumped on DDL; prepared plans built before a bump are discarded.
        self.schema_generation = 0
        #: bumped on analyze()/set_table_statistics; invalidates estimates.
        self.stats_generation = 0
        #: the write-ahead log (None = durability off, the default).
        self._wal: Optional[WriteAheadLog] = None
        #: the ambient transaction/snapshot context: the single active
        #: explicit transaction in the legacy single-writer model, or —
        #: with MVCC enabled — whichever MVCC context the current server
        #: operation runs under (set per operation via :meth:`using`).
        self._txn: Optional[Any] = None
        self._next_txn_id = 1
        self.txn_stats = TransactionStats()
        #: MVCC version manager (None = legacy single-writer mode).
        self._mvcc: Optional[MvccManager] = None
        #: observability tracer (set by the engine when tracing is on);
        #: consulted for prepare cache-hit notes and EXPLAIN ANALYZE.
        self._tracer: Optional[Any] = None
        if mvcc:
            self.enable_mvcc()
        # Identity test, not truthiness: an *empty* WriteAheadLog is falsy
        # (it defines __len__), and attaching one must still enable
        # durability rather than silently skipping it.
        if wal is not None and wal is not False:
            self.enable_wal(wal if isinstance(wal, WriteAheadLog) else None)

    # -- DDL / DML -------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: Optional[str] = None,
        foreign_keys: Optional[Iterable[ForeignKey]] = None,
    ) -> Table:
        """Create a table and register it in the schema and catalog.

        DDL is autocommit-only (raises :class:`TransactionError` inside an
        explicit transaction) and, when the write-ahead log is enabled, is
        logged as a :class:`~repro.db.wal.CreateTableRecord` before apply.
        """
        self._check_no_transaction("create_table")
        schema = TableSchema(name, columns, primary_key, foreign_keys)
        ddl_txn = self._log_ddl(
            lambda txn_id: CreateTableRecord(
                txn_id,
                name,
                tuple(schema.columns),
                schema.primary_key,
                tuple(schema.foreign_keys),
            )
        )
        self.schema.add(schema)
        table = Table(schema)
        self.tables[name] = table
        self._finish_autocommit(ddl_txn)
        # DDL: plans compiled against the old schema may now resolve
        # differently (and their fast-path analysis is stale), so the whole
        # statement cache is dropped, along with the executor's
        # resolver-context closures (keyed by table object identity).
        self.schema_generation += 1
        self.stats_generation += 1
        self.invalidate_statements()
        self._executor.invalidate_context_cache()
        if self._router is not None:
            self._router.invalidate()
        return table

    def shard_table(
        self,
        name: str,
        key: Optional[str] = None,
        shards: int = 2,
    ) -> ShardedTable:
        """Convert ``name`` into a hash-sharded table on ``key``.

        ``key`` defaults to the table's primary key.  Existing rows are
        redistributed over ``shards`` partitions, preserving insertion
        order in the aggregate view.  Sharding is DDL-like: the statement
        cache and the executor's table-identity-keyed caches are dropped,
        and the shard router is (re)installed so subsequent plans route
        through single-shard / shard-local / scatter-gather execution.
        """
        self._check_no_transaction("shard_table")
        table = self.table(name)
        if isinstance(table, ShardedTable):
            raise ValueError(f"table {name!r} is already sharded")
        if key is None:
            key = table.schema.primary_key
            if key is None:
                raise ValueError(
                    f"table {name!r} has no primary key; pass an explicit "
                    f"shard key"
                )
        table.schema.column(key)  # validate before logging the DDL record
        ddl_txn = self._log_ddl(
            lambda txn_id: ShardTableRecord(txn_id, name, key, shards)
        )
        sharded = ShardedTable(table.schema, key, shards)
        sharded.insert_many(table.rows)
        self.tables[name] = sharded
        self.schema_generation += 1
        self.stats_generation += 1
        self.invalidate_statements()
        self._executor.invalidate_context_cache()
        if self._router is None:
            self._router = ShardRouter(
                self.tables,
                mode=self._executor.mode,
                vector_backend=self._executor.vector_backend,
            )
            self._executor.router = self._router
            if self._parallel_config is not None:
                self._router.set_parallel(*self._parallel_config)
        else:
            # Reuse the router (it reads the live table mapping): dropping
            # it would zero the sharding stats and the retired per-shard
            # executor counters invalidate() exists to preserve.
            self._router.invalidate()
        self._finish_autocommit(ddl_txn)
        return sharded

    def insert(self, table: str, rows: Iterable[Row]) -> int:
        """Insert rows into ``table``; returns the number inserted.

        With the write-ahead log enabled, the rows are first normalised
        (validated against the schema), logged as one
        :class:`~repro.db.wal.InsertRecord` holding their stored form, and
        only then applied — the WAL's log-before-apply rule.  Inside an
        explicit transaction the record is tagged with the transaction id
        and becomes durable at COMMIT; standalone inserts autocommit.
        """
        storage = self.table(table)
        mvcc = self._mvcc
        txn, wal = self._txn, self._wal
        if mvcc is not None:
            if txn is not None:
                # Buffered in the transaction's write set; logged and
                # applied at commit time (never visible to other readers).
                return mvcc.txn_insert(txn, table, rows)
            stored_rows = [storage.prepare_row(row) for row in rows]
            length_before = len(storage.rows)
            auto_txn = self._log_write(
                lambda txn_id: InsertRecord(
                    txn_id, table, tuple(dict(row) for row in stored_rows)
                )
            )
            for stored in stored_rows:
                storage.insert_stored(stored)
            self._finish_autocommit(auto_txn)
            mvcc.note_insert(table, length_before, len(stored_rows))
            return len(stored_rows)
        if txn is None and wal is None:
            return storage.insert_many(rows)
        stored_rows = [storage.prepare_row(row) for row in rows]
        if txn is not None:
            txn._record_insert(table, len(storage.rows))
        auto_txn = self._log_write(
            lambda txn_id: InsertRecord(
                txn_id, table, tuple(dict(row) for row in stored_rows)
            )
        )
        for stored in stored_rows:
            storage.insert_stored(stored)
        self._finish_autocommit(auto_txn)
        return len(stored_rows)

    def update_table(self, table: str, predicate, assignments: dict) -> int:
        """Statement-atomic UPDATE on ``table`` with WAL + transaction hooks.

        Runs the two-phase update: :meth:`repro.db.table.Table.plan_update`
        computes and validates every change first (an error leaves the table
        untouched), the physical ``(position, new values)`` changes are
        logged before apply, the transaction (if any) records before-images
        for rollback, and only then are the changes applied.  This is the
        single UPDATE chokepoint: prepared statements, cursors, and the
        application runtime all route through it.
        """
        storage = self.table(table)
        mvcc = self._mvcc
        txn, wal = self._txn, self._wal
        if mvcc is not None:
            if txn is not None:
                # Planned against the transaction's snapshot view and
                # buffered; applied (and conflict-checked) at commit time.
                return mvcc.txn_update(txn, table, predicate, assignments)
            planned = storage.plan_update(predicate, assignments)
            if not planned:
                return 0
            before_images = [
                (
                    position,
                    {column: row[column] for column in new_values},
                )
                for position, row, new_values in planned
            ]
            auto_txn = self._log_write(
                lambda txn_id: UpdateRecord(
                    txn_id,
                    table,
                    tuple(
                        (position, dict(new_values))
                        for position, _, new_values in planned
                    ),
                )
            )
            storage.apply_update(
                (row, new_values) for _, row, new_values in planned
            )
            self._finish_autocommit(auto_txn)
            mvcc.note_update(table, before_images, len(planned))
            return len(planned)
        if txn is None and wal is None:
            return storage.update_rows(predicate, assignments)
        planned = storage.plan_update(predicate, assignments)
        if not planned:
            return 0
        if txn is not None:
            txn._record_update(
                table,
                [
                    (row, {column: row[column] for column in new_values})
                    for _, row, new_values in planned
                ],
            )
        auto_txn = self._log_write(
            lambda txn_id: UpdateRecord(
                txn_id,
                table,
                tuple(
                    (position, dict(new_values))
                    for position, _, new_values in planned
                ),
            )
        )
        storage.apply_update(
            (row, new_values) for _, row, new_values in planned
        )
        self._finish_autocommit(auto_txn)
        return len(planned)

    # -- durability and transactions --------------------------------------

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The attached write-ahead log, or ``None`` when durability is off."""
        return self._wal

    def enable_wal(
        self, log: Optional[WriteAheadLog] = None
    ) -> WriteAheadLog:
        """Attach a write-ahead log; every subsequent write is logged.

        If the database already holds data, a **checkpoint** is written
        first — the schema DDL, sharding DDL, and one bulk insert record per
        table, inside a single committed transaction — so the log alone
        reproduces the full database under :meth:`recover`, not just the
        post-enable delta.
        """
        if self._wal is not None:
            raise WalError("write-ahead log is already enabled")
        if self._txn is not None or (
            self._mvcc is not None and self._mvcc.has_contexts()
        ):
            raise TransactionError(
                "cannot enable the WAL inside an active transaction"
            )
        log = log if log is not None else WriteAheadLog()
        # An attached log may already hold committed history; new txn ids
        # must not collide with ids that already have commit records, or a
        # crash before our commit record would still replay the records
        # (mirrors Database.recover).
        self._next_txn_id = max(self._next_txn_id, log.max_txn_id() + 1)
        if self.tables:
            txn_id = self._allocate_txn_id()
            for name, table in self.tables.items():
                schema = table.schema
                log.append(
                    CreateTableRecord(
                        txn_id,
                        name,
                        tuple(schema.columns),
                        schema.primary_key,
                        tuple(schema.foreign_keys),
                    )
                )
                if isinstance(table, ShardedTable):
                    log.append(
                        ShardTableRecord(
                            txn_id, name, table.shard_key, table.shard_count
                        )
                    )
                if table.rows:
                    log.append(
                        InsertRecord(
                            txn_id,
                            name,
                            tuple(dict(row) for row in table.rows),
                        )
                    )
            log.append(CommitRecord(txn_id))
        self._wal = log
        return log

    @classmethod
    def recover(
        cls, log: WriteAheadLog, *, wal: bool = True, **kwargs: Any
    ) -> "Database":
        """Rebuild a database from the committed prefix of ``log``.

        Replays the records of committed transactions in log order —
        uncommitted tails (a crash mid-transaction, or mid-autocommit before
        the commit record landed) and aborted transactions are discarded, so
        recovery yields exactly the last committed state.  Inserts re-adopt
        the logged stored rows; updates re-apply their physical changes
        through :meth:`repro.db.table.Table.apply_update_at`, which on a
        sharded table rehomes shard-key moves exactly like the live path.

        ``kwargs`` are forwarded to the :class:`Database` constructor
        (``execution_mode=...`` etc.).  Unless ``wal=False``, the recovered
        database carries a fresh log seeded with the committed history, so
        it keeps logging (and can itself be recovered) seamlessly.
        """
        database = cls(**kwargs)
        committed = log.committed_records()
        for record in committed:
            if isinstance(record, CreateTableRecord):
                database.create_table(
                    record.name,
                    list(record.columns),
                    record.primary_key,
                    list(record.foreign_keys) or None,
                )
            elif isinstance(record, ShardTableRecord):
                database.shard_table(record.name, record.key, record.shards)
            elif isinstance(record, InsertRecord):
                storage = database.table(record.table)
                for row in record.rows:
                    storage.insert_stored(dict(row))
            elif isinstance(record, UpdateRecord):
                database.table(record.table).apply_update_at(
                    (position, dict(new_values))
                    for position, new_values in record.changes
                )
            # CommitRecords carry no data to apply.
        if wal:
            database._wal = WriteAheadLog(committed)
        database._next_txn_id = max(
            database._next_txn_id, log.max_txn_id() + 1
        )
        if database._mvcc is not None:
            # Replay applied everything directly to live storage with no
            # open contexts; only the commit-order counter is re-derived.
            database._mvcc.rederive_commit_timestamps(committed)
        return database

    def begin(self) -> Transaction:
        """Start an explicit transaction (single-writer: one at a time).

        Until :meth:`Transaction.commit`, every write — from any connection
        — belongs to the transaction: none of it is durable (the WAL commit
        record is the durability boundary) and all of it is undone by
        :meth:`Transaction.rollback`.  Beginning a second transaction while
        one is active raises :class:`TransactionError`.

        With MVCC enabled (:meth:`enable_mvcc`), transactions are
        snapshot-isolated instead: any number may run concurrently, each
        reading the database as of its start timestamp and buffering its
        writes privately; commit applies first-committer-wins and raises
        :class:`repro.db.mvcc.SerializationError` on a lost race.
        """
        if self._mvcc is not None:
            return self._mvcc.begin()
        if self._txn is not None:
            raise TransactionError(
                "a transaction is already active; the engine is "
                "single-writer (MVCC is future work)"
            )
        txn = Transaction(self, self._allocate_txn_id())
        self._txn = txn
        self.txn_stats.begun += 1
        return txn

    def snapshot(self) -> Snapshot:
        """A read-only consistent snapshot of the current committed state.

        Requires MVCC (:meth:`enable_mvcc`).  The snapshot keeps seeing the
        state as of its start timestamp no matter what commits afterwards;
        close it to release the version horizon for vacuum.
        """
        if self._mvcc is None:
            raise TransactionError(
                "snapshots require MVCC: call enable_mvcc() first"
            )
        return self._mvcc.snapshot()

    @contextmanager
    def using(self, context):
        """Run server-side work under ``context`` (an MVCC transaction or
        snapshot, or ``None`` for the latest committed state).

        Connections wrap every server exchange in this, so concurrent
        clients of one MVCC database each read and write under their own
        context even though the server executes them one at a time.
        """
        previous = self._txn
        self._txn = context
        try:
            yield self
        finally:
            self._txn = previous

    @property
    def in_transaction(self) -> bool:
        """True while an explicit transaction is active."""
        if self._mvcc is not None:
            return self._mvcc.active_transactions() > 0
        return self._txn is not None

    @property
    def current_transaction(self) -> Optional[Transaction]:
        """The active explicit transaction (the ambient context under MVCC)."""
        return self._txn

    @property
    def mvcc_enabled(self) -> bool:
        """True once :meth:`enable_mvcc` has installed the version manager."""
        return self._mvcc is not None

    def enable_mvcc(self) -> MvccManager:
        """Switch the database to MVCC snapshot isolation (idempotent).

        From here on, :meth:`begin` returns snapshot-isolated
        :class:`repro.db.mvcc.MvccTransaction`\\ s (any number may run
        concurrently), :meth:`snapshot` opens read-only consistent views,
        and autocommit writes register version history so open snapshots
        keep reading the state they started from.
        """
        if self._mvcc is not None:
            return self._mvcc
        if self._txn is not None:
            raise TransactionError(
                "cannot enable MVCC inside an active transaction"
            )
        self._mvcc = MvccManager(self)
        return self._mvcc

    def vacuum(self) -> int:
        """Reclaim row versions older than the oldest open snapshot.

        Runs automatically whenever a transaction or snapshot finishes;
        call explicitly to reclaim after autocommit churn.  Returns the
        number of row versions reclaimed (0 with MVCC off).
        """
        if self._mvcc is None:
            return 0
        return self._mvcc.vacuum()

    def mvcc_stats(self) -> dict:
        """MVCC version/snapshot/conflict counters (``{"enabled": False}``
        when MVCC is off)."""
        if self._mvcc is None:
            return {"enabled": False}
        return self._mvcc.stats_dict()

    def wal_stats(self) -> dict:
        """WAL record/commit counters plus transaction activity counters."""
        stats: dict[str, Any] = {"enabled": self._wal is not None}
        if self._wal is not None:
            stats.update(self._wal.stats.as_dict())
        if self._mvcc is not None:
            active = self._mvcc.active_transactions()
        else:
            active = 1 if self._txn is not None else 0
        stats["transactions"] = {
            "begun": self.txn_stats.begun,
            "committed": self.txn_stats.committed,
            "rolled_back": self.txn_stats.rolled_back,
            "active": active,
        }
        return stats

    # -- durability internals ---------------------------------------------

    def _allocate_txn_id(self) -> int:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return txn_id

    def _check_no_transaction(self, operation: str) -> None:
        if self._mvcc is not None and self._mvcc.has_contexts():
            raise TransactionError(
                f"{operation} is autocommit-only: finish the active "
                f"transactions and snapshots first"
            )
        if self._txn is not None:
            raise TransactionError(
                f"{operation} is autocommit-only: finish the active "
                f"transaction first"
            )

    def _log_write(self, make_record) -> Optional[int]:
        """Append a data record ahead of its apply (the WAL rule).

        Inside a transaction the record joins it (durable at COMMIT) and
        ``None`` is returned; standalone writes get their own transaction id
        whose commit record the caller appends *after* a successful apply
        via :meth:`_finish_autocommit`.
        """
        txn, wal = self._txn, self._wal
        if txn is not None:
            if wal is not None:
                wal.append(make_record(txn.txn_id))
            return None
        if wal is None:
            return None
        txn_id = self._allocate_txn_id()
        wal.append(make_record(txn_id))
        return txn_id

    def _log_ddl(self, make_record) -> Optional[int]:
        """Append a DDL record (always autocommit; WAL may be off)."""
        if self._wal is None:
            return None
        txn_id = self._allocate_txn_id()
        self._wal.append(make_record(txn_id))
        return txn_id

    def _finish_autocommit(self, txn_id: Optional[int]) -> None:
        if txn_id is not None:
            self._wal.append(CommitRecord(txn_id))

    def _commit(self, txn: Transaction) -> None:
        if not txn.active or txn is not self._txn:
            raise TransactionError("transaction is no longer active")
        txn.active = False
        self._txn = None
        if self._wal is not None:
            self._wal.append(CommitRecord(txn.txn_id))
        self.txn_stats.committed += 1

    def _rollback(self, txn: Transaction) -> None:
        if not txn.active or txn is not self._txn:
            raise TransactionError("transaction is no longer active")
        txn.active = False
        self._txn = None
        for kind, name, payload in reversed(txn._undo):
            storage = self.table(name)
            if kind == "insert":
                storage.truncate_to(payload)
            else:
                storage.apply_update(payload)
        if self._wal is not None:
            self._wal.append(AbortRecord(txn.txn_id))
        self.txn_stats.rolled_back += 1

    def table(self, name: str) -> Table:
        """Return the :class:`Table` called ``name``."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r}; tables are {sorted(self.tables)}"
            ) from None

    def analyze(self) -> None:
        """Refresh catalog statistics from current table contents.

        Bumps :attr:`stats_generation`, so every cached prepared-statement
        estimate is recomputed on its next use.
        """
        self.statistics.refresh(self.tables)
        self.stats_generation += 1

    def set_table_statistics(self, table: str, stats: TableStatistics) -> None:
        """Install statistics explicitly (analytical/full-scale experiments)."""
        self.statistics.set_table_stats(table, stats)
        self.stats_generation += 1

    # -- statement preparation -------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse ``sql`` once and return the cached prepared statement.

        Statements are cached in an LRU keyed by the exact SQL text
        (capacity :attr:`statement_cache_size`); repeated preparation of the
        same text is a cache hit and costs two dict operations.  Both SELECT
        and UPDATE statements are supported — check
        :attr:`PreparedStatement.is_query` before choosing
        :meth:`PreparedStatement.execute` or
        :meth:`PreparedStatement.execute_update`.
        """
        tracer = self._tracer
        statement = self._statements.get(sql)
        if statement is not None:
            self._statements.move_to_end(sql)
            self.statement_cache.hits += 1
            if tracer is not None and tracer.enabled:
                tracer.note_prepare(sql, True)
            return statement
        self.statement_cache.misses += 1
        if tracer is not None and tracer.enabled:
            tracer.note_prepare(sql, False)
        if _UPDATE_RE.match(sql):
            statement = PreparedStatement(self, sql, update=parse_update(sql))
        else:
            statement = PreparedStatement(self, sql, plan=parse_sql(sql))
        self._statements[sql] = statement
        if len(self._statements) > self.statement_cache_size:
            self._statements.popitem(last=False)
            self.statement_cache.evictions += 1
        return statement

    def invalidate_statements(self) -> None:
        """Drop every cached prepared statement (DDL, explicit resets)."""
        if self._statements:
            self._statements.clear()
            self.statement_cache.invalidations += 1

    # -- query execution -------------------------------------------------

    def execute_sql(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a SQL SELECT statement through the statement cache."""
        return self.prepare(sql).execute(params)

    def explain(self, sql: str, params: Sequence[Any] = ()):
        """EXPLAIN: the chosen plan, routing class, and predicted tier.

        Returns an :class:`repro.obs.explain.ExplainResult` — one line per
        operator with the optimizer's cardinality and server-time
        estimates; nothing is executed.
        """
        from repro.obs.explain import explain_statement

        return explain_statement(self, sql, params, analyze=False)

    def explain_analyze(self, sql: str, params: Sequence[Any] = ()):
        """EXPLAIN ANALYZE: execute ``sql`` and annotate each operator with
        the actual row count and modeled virtual time next to the
        estimates.  The root's actual row count is exactly the executed
        result size; the observation is fed back to the statistics catalog
        (see :meth:`StatisticsCatalog.observe`).
        """
        from repro.obs.explain import explain_statement

        return explain_statement(self, sql, params, analyze=True)

    def execute_plan(
        self, plan: algebra.PlanNode, sql: Optional[str] = None
    ) -> QueryResult:
        """Execute an algebra plan directly."""
        mvcc = self._mvcc
        executor = (
            self._executor if mvcc is None else mvcc.executor_for(self._txn)
        )
        rows = executor.execute(plan)
        width = self.statistics.estimate_row_width(plan)
        self.queries_executed += 1
        return QueryResult(rows=rows, row_width=width, sql=sql or to_sql(plan))

    def execute_update_sql(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Execute an UPDATE statement; returns the number of rows changed.

        The statement is parsed by :func:`repro.db.sqlparser.parse_update`
        (and cached like any prepared statement), so multiple SET
        assignments, expressions over the updated row (``set n = n + 1``),
        compound WHERE predicates, and positional parameters on both sides
        all work.  Statements that do not parse keep raising the historical
        ``unsupported UPDATE statement`` error.
        """
        try:
            statement = self.prepare(sql)
        except SQLSyntaxError as exc:
            raise ValueError(f"unsupported UPDATE statement: {sql!r}") from exc
        if statement.is_query:
            raise ValueError(f"unsupported UPDATE statement: {sql!r}")
        params = tuple(params)
        if statement.parameter_count > len(params):
            raise ValueError("missing parameter for UPDATE statement")
        return statement.execute_update(params)

    # -- estimation ------------------------------------------------------

    def estimate_sql(self, sql: str, params: Sequence[Any] = ()) -> QueryEstimate:
        """Estimate cost-model inputs for a SQL statement.

        Routed through the statement cache: the estimate is computed once
        per prepared plan and revalidated only when statistics or the
        referenced tables change.  ``params`` are accepted for signature
        compatibility but do not affect the estimate — selectivity treats a
        parameter exactly like a bound literal.
        """
        return self.prepare(sql).estimate(params)

    def estimate_plan(self, plan: algebra.PlanNode) -> QueryEstimate:
        """Estimate cost-model inputs for an algebra plan."""
        cardinality = self.statistics.estimate_cardinality(plan)
        width = self.statistics.estimate_row_width(plan)
        first, last = self.statistics.estimate_server_time(
            plan, self.server_row_cost
        )
        return QueryEstimate(
            cardinality=cardinality,
            row_width=width,
            first_row_time=first,
            last_row_time=last,
        )

    # -- convenience -----------------------------------------------------

    @property
    def execution_mode(self) -> str:
        """The executor's tier selection: vectorized/compiled/interpreted."""
        return self._executor.mode

    def set_vector_backend(self, backend: Optional[str]) -> None:
        """Select the vectorized tier's filter backend ("python"/"numpy").

        A ``numpy`` request degrades gracefully to pure Python when numpy
        is not importable.  Rebuilds the vectorized executor and, under
        sharding, the per-shard executors, so their kernels agree on the
        backend.
        """
        self._executor.set_vector_backend(backend)
        if self._router is not None:
            self._router._vector_backend = backend
            self._router.invalidate()

    def set_parallel(
        self, workers: Optional[int] = None, mode: str = "thread"
    ) -> None:
        """Configure parallel scatter-gather execution.

        ``mode`` is ``"thread"`` (shared-memory worker threads, the
        default), ``"process"`` (worker processes fed pickled
        ColumnBatches), or ``"serial"`` (the sequential baseline — no
        pool).  ``workers=None`` sizes the pool to the CPU count.  Takes
        effect immediately when sharding is already enabled, otherwise
        when the first table is sharded; reconfiguring shuts the previous
        pool down first.
        """
        from repro.db.parallel import PARALLEL_MODES, ParallelConfigError

        if mode not in PARALLEL_MODES:
            raise ParallelConfigError(
                f"unknown parallel mode {mode!r}; modes are {PARALLEL_MODES}"
            )
        self._parallel_config = (workers, mode)
        if self._router is not None:
            self._router.set_parallel(workers, mode)

    def close_parallel(self) -> None:
        """Shut down the scatter worker pool (recreated lazily on use)."""
        if self._router is not None:
            self._router.close()

    def execution_stats(self) -> dict:
        """Per-tier execution counters of the underlying executor.

        ``tiers`` counts which tier produced each query's rows (a
        vectorized attempt that fell back is counted under the tier that
        actually served it); ``vectorized`` details the vectorized tier's
        own fallback counters, including per-reason counts
        (``fallback_reasons``).  Under sharding, routed / shard-local /
        scatter executions run on per-shard executors — their counters are
        folded in here (one count per shard that executed), so tier and
        fallback observability survives sharding.  Surfaced by
        ``Engine.stats()``.
        """
        executor = self._executor
        tiers = dict(executor.tier_counts)
        vectorized = executor.vectorized_stats
        if self._router is not None:
            shard_tiers, shard_vectorized = self._router.execution_counters()
            merge_execution_counters(
                tiers, vectorized, shard_tiers, shard_vectorized
            )
        # Non-summable annotations ride above the counter merge: the filter
        # backend names and a census of column encodings across the
        # currently-built columnar views (empty for never-scanned tables).
        if executor._vectorized is not None:
            vectorized["backend"] = {
                "requested": executor._vectorized.backend_requested,
                "active": executor._vectorized.backend,
            }
        else:
            vectorized["backend"] = {"requested": None, "active": None}
        encodings: dict[str, int] = {}
        for table in self.tables.values():
            # Sharded tables scan their partitions, not the aggregate view,
            # so their columnar state lives in the shard Tables.
            for view in (table, *getattr(table, "shards", ())):
                for encoding in view.column_encodings().values():
                    encodings[encoding] = encodings.get(encoding, 0) + 1
        vectorized["encodings"] = encodings
        return {
            "mode": executor.mode,
            "tiers": tiers,
            "vectorized": vectorized,
        }

    def sharding_stats(self) -> dict:
        """Shard-routing counters and per-table shard configuration.

        ``routed`` counts single-shard executions (point predicates on the
        shard key, including the prepared point-lookup fast path),
        ``local`` counts shard-local parallel executions (co-partitioned
        equi-joins and partial-aggregate merges), ``scatter`` counts
        scatter-gather executions, and ``fallback`` counts plans over
        sharded tables that ran unrouted against the aggregate view.  All
        zeros (and an empty ``tables`` map) when nothing is sharded.
        """
        router = self._router
        if router is None:
            return {
                "routed": 0,
                "local": 0,
                "scatter": 0,
                "fallback": 0,
                "tables": {},
                "parallel": {"mode": "serial", "workers": 1, "scatters": 0},
            }
        stats = router.stats.as_dict()
        stats["tables"] = {
            name: table.shard_count
            for name, table in router.sharded_tables().items()
        }
        stats["parallel"] = router.parallel_stats()
        return stats

    def row_count(self, table: str) -> int:
        """Number of rows currently stored in ``table``."""
        return len(self.table(table))

    def reset_counters(self) -> None:
        """Reset the executed-query counter (per-experiment bookkeeping)."""
        self.queries_executed = 0
