"""Vectorized batch execution over columnar storage.

This is the engine's third execution tier (see :mod:`repro.db.executor` for
the compiled and interpreted row tiers).  Plans are lowered once into a
pipeline of *batch operators* flowing :class:`ColumnBatch` objects — bundles
of column value arrays plus a shared selection (row-index) vector — instead
of streams of per-row dictionaries:

* **Scans** wrap the table's lazy columnar view (:meth:`repro.db.table.
  Table.columns`) without copying anything: every column is the table's own
  value array with an identity selection.
* **Filters** evaluate predicate kernels (:meth:`repro.db.expressions.
  Expression.compile_batch`) over whole columns and *compose selection
  vectors*; no row is copied, and AND conjunctions shrink the selection
  stage by stage like the row tier's fused filter chain.
* **Hash joins** build and probe on key arrays and carry the match as a pair
  of (left positions, right positions); the joined batch merely re-points
  both sides' columns at the new selections.
* **Late materialization**: output row dictionaries are built only at the
  root of the operator tree, by a code-generated row constructor that turns
  the surviving selections into ``{key: value, ...}`` dict displays in a
  single comprehension — eliminating the per-operator dict construction that
  bounds the row tiers on full-width joins.

Operators or expressions outside the vectorizable subset fall back
*per-subtree* to the compiled tier: the subtree executes as rows, which are
adapted back into a batch for the vectorized ancestors.  Any error raised
during a vectorized run makes the owning :class:`~repro.db.executor.
Executor` re-run the whole plan on the compiled tier, so evaluation-order
and error semantics can never diverge from the row tiers; both tiers are
property-tested row-identical.
"""

from __future__ import annotations

import heapq
import math
import os
from collections import OrderedDict, defaultdict
from itertools import repeat
from typing import Any, Callable, Iterable, NamedTuple, Optional, Sequence

from repro.db import algebra
from repro.db.executor import (
    ExecutionError,
    _equi_join_columns,
    _flatten_and,
    _sort_key,
    plan_aggregate_arguments,
)
from repro.db.expressions import (
    ARITHMETIC_OPS,
    BINARY_OP_SOURCE,
    BatchKernel,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Not,
    ParameterSlot,
    scalar_function,
)
from repro.db.table import Row


class BatchResolutionError(Exception):
    """A column reference did not resolve against a batch at run time.

    Raised inside batch kernels; the executor responds by re-running the
    plan on the compiled tier, which reproduces the row tiers' exact
    behaviour (a value via suffix fallback, or the user-visible error).
    """


#: A lowered batch operator: produces one ColumnBatch per execution.
BatchOp = Callable[[], "ColumnBatch"]


class _Unvectorizable:
    """Cached lowering failure: remembers *why* the plan fell back.

    Stored in the lowered-plan cache in place of a :data:`BatchOp`, so
    repeated executions of an unvectorizable shape keep counting the same
    fallback reason without re-deriving the failed lowering.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason


class ColumnBatch:
    """A columnar slice of intermediate results.

    ``columns`` maps output key (bare and ``alias.column`` qualified names,
    matching the row tiers' output layout) to ``(array, selection)`` where
    ``selection`` is a list of row indices into ``array`` — or ``None`` for
    the identity selection.  Distinct columns share selection *objects*, so
    operators that filter or join re-point many columns by rebuilding only
    one or two index vectors.  ``key_order`` fixes the materialized dict
    layout; ``rows`` optionally carries already-materialized row dicts
    (aggregate outputs, fallback subtrees) so the root does not rebuild
    them.
    """

    __slots__ = ("columns", "length", "key_order", "rows", "_gathered")

    def __init__(
        self,
        columns: dict[str, tuple[list, Optional[list[int]]]],
        length: int,
        key_order: tuple[str, ...],
        rows: Optional[list[Row]] = None,
    ) -> None:
        self.columns = columns
        self.length = length
        self.key_order = key_order
        self.rows = rows
        #: (id(array), id(selection)) -> (array, selection, gathered value
        #: list), memoized so several expressions over one column gather it
        #: once per batch.  The entry *holds* the array and selection: a live
        #: entry therefore pins both objects, so their ids cannot be recycled
        #: behind the memo's back, and the identity check below turns any
        #: remaining id collision into a plain cache miss instead of serving
        #: a stale column.
        self._gathered: dict[tuple[int, int], tuple[list, list, list]] = {}

    def values_for(self, name: str) -> list:
        """The value array of column ``name``, gathered through its selection."""
        array, selection = self.columns[name]
        if selection is None:
            return array
        key = (id(array), id(selection))
        entry = self._gathered.get(key)
        if entry is not None and entry[0] is array and entry[1] is selection:
            return entry[2]
        gathered = [array[i] for i in selection]
        self._gathered[key] = (array, selection, gathered)
        return gathered

    def resolve(self, column: ColumnRef) -> Optional[str]:
        """Resolve a column reference to one of this batch's keys.

        Mirrors :meth:`ColumnRef.evaluate`: qualified key first, then the
        bare name, then a unique ``.name`` suffix match.  Returns ``None``
        when the reference is missing or ambiguous.
        """
        columns = self.columns
        if column.qualifier:
            qualified = f"{column.qualifier}.{column.name}"
            if qualified in columns:
                return qualified
        if column.name in columns:
            return column.name
        suffix = f".{column.name}"
        matches = [key for key in columns if key.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        return None

    def column_values(self, column: ColumnRef) -> list:
        """The value array for a column reference (the kernel entry point)."""
        name = self.resolve(column)
        if name is None:
            if self.length == 0:
                # No rows would ever be evaluated by the row tiers either.
                return []
            raise BatchResolutionError(column.qualified_name)
        return self.values_for(name)

    def take(self, positions: list[int]) -> "ColumnBatch":
        """A new batch selecting ``positions`` (batch-relative row indices).

        Selection vectors are composed per *distinct* selection object, not
        per column, so a filter over an N-column batch rebuilds one or two
        index lists and re-points every column at them.
        """
        rebuilt: dict[int, list[int]] = {}
        columns: dict[str, tuple[list, Optional[list[int]]]] = {}
        for name, (array, selection) in self.columns.items():
            cache_key = id(selection)
            new_selection = rebuilt.get(cache_key)
            if new_selection is None:
                if selection is None:
                    new_selection = positions
                else:
                    new_selection = [selection[p] for p in positions]
                rebuilt[cache_key] = new_selection
            columns[name] = (array, new_selection)
        rows = self.rows
        if rows is not None:
            rows = [rows[p] for p in positions]
        return ColumnBatch(columns, len(positions), self.key_order, rows)

    # -- pickling ---------------------------------------------------------
    # Batches cross process boundaries in the sharding layer's process-pool
    # scatter.  The gather memo is transient (its id()-keyed entries would
    # be meaningless in another process) and is dropped; everything else is
    # plain data.

    def __getstate__(self) -> tuple:
        return (self.columns, self.length, self.key_order, self.rows)

    def __setstate__(self, state: tuple) -> None:
        self.columns, self.length, self.key_order, self.rows = state
        self._gathered = {}


def _empty_batch() -> ColumnBatch:
    return ColumnBatch({}, 0, ())


def pack_batch(batch: ColumnBatch) -> tuple:
    """A compact payload for shipping a batch between processes.

    Each column is gathered through its selection and re-encoded onto
    typed ``array`` / dictionary sidecars (:func:`~repro.db.table.
    encode_column` + :func:`~repro.db.table.pack_column`), so the pickle
    carries raw buffers instead of per-value boxed objects — the PR-5
    ship-ColumnBatches-not-row-lists rule, applied across the process
    boundary.  Round-trips through :func:`unpack_batch`.
    """
    from repro.db.table import encode_column, pack_column

    columns = tuple(
        (key, pack_column(encode_column(batch.values_for(key), "dictionary")))
        for key in batch.key_order
    )
    return (columns, batch.length)


def unpack_batch(payload: tuple) -> ColumnBatch:
    """Rebuild a :class:`ColumnBatch` from a :func:`pack_batch` payload."""
    from repro.db.table import unpack_column

    packed_columns, length = payload
    columns: dict[str, tuple[list, Optional[list[int]]]] = {
        key: (unpack_column(packed), None) for key, packed in packed_columns
    }
    return ColumnBatch(
        columns, length, tuple(key for key, _ in packed_columns)
    )


def batch_output_rows(batch: ColumnBatch) -> list[Row]:
    """Materialize a batch's output rows with a plain zip (no row maker).

    Used where no :class:`VectorizedExecutor` is at hand (unpacking a
    shipped batch on the gather side); ``key_order`` is the dict layout,
    exactly as :meth:`VectorizedExecutor._materialize` would emit it.
    """
    if batch.rows is not None:
        return batch.rows
    keys = batch.key_order
    if not keys or not batch.length:
        return []
    arrays = [batch.values_for(key) for key in keys]
    return [dict(zip(keys, values)) for values in zip(*arrays)]


def gather_batches(batches: Sequence[ColumnBatch]) -> Optional[ColumnBatch]:
    """Concatenate per-shard batches into one batch (the gather node).

    Used by the sharding layer's scatter-gather execution: each shard runs
    the same lowered pipeline over its own columnar view, and the resulting
    batches are shipped to the gather node, which concatenates them in shard
    order so late materialization still happens exactly once, at the root.
    Returns ``None`` when the shard layouts disagree (the caller then falls
    back to gathering rows instead).
    """
    live = [batch for batch in batches if batch.length]
    if not live:
        return _empty_batch()
    if len(live) == 1:
        # One shard produced every surviving row (skewed filters are
        # common): its batch still points zero-copy at the shard's arrays.
        return live[0]
    key_order = live[0].key_order
    for batch in live[1:]:
        if batch.key_order != key_order:
            return None
    columns: dict[str, tuple[list, Optional[list[int]]]] = {}
    for key in key_order:
        values: list = []
        for batch in live:
            values.extend(batch.values_for(key))
        columns[key] = (values, None)
    rows: Optional[list[Row]] = None
    if all(batch.rows is not None for batch in live):
        rows = [row for batch in live for row in batch.rows]
    return ColumnBatch(columns, sum(batch.length for batch in live), key_order, rows)


def gather_completed_batches(
    indexed: Iterable[tuple[int, ColumnBatch]],
) -> Optional[ColumnBatch]:
    """Gather ``(shard index, batch)`` pairs arriving in completion order.

    The parallel scatter hands batches over as workers finish, in whatever
    order the pool completes them; the gather stays order-preserving by
    reassembling shard order before concatenating, so the output is
    bit-identical to the sequential scatter's :func:`gather_batches`.
    """
    pairs = sorted(indexed, key=lambda pair: pair[0])
    return gather_batches([batch for _, batch in pairs])


def merge_sorted_runs(
    runs: Sequence[list[Row]], key: Callable[[Row], Any]
) -> list[Row]:
    """K-way merge of per-shard sorted runs (the gather under a ``Sort``).

    Each run arrives already sorted by ``key`` (the shards executed the
    ``Sort`` locally); ``heapq.merge`` is stable across runs in run order,
    which matches the sequential gather's stable concatenate-then-sort on
    ties — so the merged ordering is row-identical to the serial path.
    """
    live = [run for run in runs if run]
    if len(live) <= 1:
        return live[0] if live else []
    return list(heapq.merge(*live, key=key))


# -- partial-aggregate / merge kernels -----------------------------------
#
# Grouped aggregation is computed in two phases that share these kernels:
# an *accumulate* phase folds a value column into one partial state per
# group in a single pass (used by the vectorized aggregate operator below),
# and a *merge* phase combines partial states computed independently (used
# by the sharding layer's gather node to merge per-shard partial
# aggregates).  ``avg`` is decomposed into sum + count partials and
# finalized with :func:`finalize_avg`, so the merge table only needs the
# four primitive functions.


def _accumulate_count(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    counts = [0] * ngroups
    for gid, value in zip(group_ids, values):
        if value is not None:
            counts[gid] += 1
    return counts


def _accumulate_sum(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    sums: list = [None] * ngroups
    for gid, value in zip(group_ids, values):
        if value is None:
            continue
        state = sums[gid]
        # Seed with 0 + value, exactly like the row tiers' sum(): a
        # non-numeric value must raise here so the kernel-error fallback
        # reproduces the row-tier TypeError instead of silently summing.
        sums[gid] = 0 + value if state is None else state + value
    return sums


def _accumulate_min(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    mins: list = [None] * ngroups
    for gid, value in zip(group_ids, values):
        if value is None:
            continue
        state = mins[gid]
        if state is None or value < state:
            mins[gid] = value
    return mins


def _accumulate_max(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    maxs: list = [None] * ngroups
    for gid, value in zip(group_ids, values):
        if value is None:
            continue
        state = maxs[gid]
        if state is None or value > state:
            maxs[gid] = value
    return maxs


#: function -> single-pass per-group accumulation kernel.
AGGREGATE_ACCUMULATORS = {
    "count": _accumulate_count,
    "sum": _accumulate_sum,
    "min": _accumulate_min,
    "max": _accumulate_max,
}


def _merge_count(a, b):
    return a + b


def _merge_sum(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a + b


def _merge_min(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return b if b < a else a


def _merge_max(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return b if b > a else a


#: function -> merge of two independently-computed partial states.
AGGREGATE_MERGERS = {
    "count": _merge_count,
    "sum": _merge_sum,
    "min": _merge_min,
    "max": _merge_max,
}


def finalize_avg(partial_sum, partial_count):
    """Finalize an ``avg`` decomposed into sum + count partial states."""
    if not partial_count:
        return None
    return partial_sum / partial_count


def _batch_from_rows(rows: list[Row]) -> ColumnBatch:
    """Adapt row-tier output (a fallback subtree) into a column batch."""
    if not rows:
        return _empty_batch()
    keys = tuple(rows[0])
    columns: dict[str, tuple[list, Optional[list[int]]]] = {
        key: ([row[key] for row in rows], None) for key in keys
    }
    return ColumnBatch(columns, len(rows), keys, rows)


def _hash_join_positions(
    probe_values: Sequence, build_values: Sequence
) -> tuple[Optional[list[int]], list[int]]:
    """Matching (probe, build) position pairs of an equi join.

    Returns ``(probe_positions, build_positions)``; a ``None`` probe side
    means the identity selection (every probe row matched exactly once, in
    order).  NULL keys never match, mirroring the row tiers.  The common
    unique-build-key case (foreign key to primary key) probes through one
    C-level ``map`` over the build table instead of a Python loop.
    """
    build_count = len(build_values)
    unique = dict(zip(build_values, range(build_count)))
    if len(unique) == build_count and None not in unique:
        build_positions = list(map(unique.get, probe_values))
        if None in build_positions:
            probe_positions = [
                i for i, b in enumerate(build_positions) if b is not None
            ]
            build_positions = [build_positions[i] for i in probe_positions]
            return probe_positions, build_positions
        return None, build_positions
    # Duplicate (or NULL) build keys: classic bucket build and probe.
    buckets: dict[Any, list[int]] = {}
    for position, key in enumerate(build_values):
        if key is None:
            continue
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [position]
        else:
            bucket.append(position)
    probe_out: list[int] = []
    build_out: list[int] = []
    append_probe = probe_out.append
    append_build = build_out.append
    for position, key in enumerate(probe_values):
        if key is None:
            continue
        bucket = buckets.get(key)
        if bucket is None:
            continue
        if len(bucket) == 1:
            append_probe(position)
            append_build(bucket[0])
        else:
            probe_out.extend([position] * len(bucket))
            build_out.extend(bucket)
    return probe_out, build_out


# -- fused-pipeline code generation ---------------------------------------
#
# The batch kernels above still make one full pass over Python lists of
# boxed values per filter/projection expression.  For the dominant pipeline
# spine — an optional Project or Aggregate over any number of Selects over a
# single Scan — the executor goes one step further and compiles the *whole
# pipeline* into one ``exec``-compiled fused loop, specialized to each
# referenced column's physical representation (see
# :class:`repro.db.table.ColumnData`):
#
# * dictionary-encoded string filters translate the comparison literal (or
#   parameter value) through the dictionary once per execution and compare
#   small-int codes inside the loop;
# * non-nullable typed columns drop their ``is None`` guards entirely;
# * ``ParameterSlot``s read the statement's slot buffer in the loop
#   prologue, so prepared templates replay with zero re-lowering.
#
# Compiled pipelines are cached per (plan, column-layout signature): a table
# rebuild that changes an encoding (or grows a null bitmap) recompiles, a
# rebuild that keeps the layout reuses the cached function against the fresh
# column store.  Lowering failures surface as :class:`_CodegenUnsupported`
# and fall back to the batch-kernel path (counted as
# ``codegen_unsupported``); a *runtime* error in a generated pipeline also
# re-runs via the kernel path, so error semantics never diverge from the
# row tiers.


class _CodegenUnsupported(Exception):
    """An eligible pipeline spine contains an unlowerable expression."""


#: Shape-cache entry for eligible spines whose expressions cannot be
#: lowered; distinct from ``None`` ("not a pipeline spine at all" — joins,
#: sorts and limits stay on the kernel path without counting anything).
_CODEGEN_UNSUPPORTED = object()

#: Shape-cache miss marker (``None`` and the sentinel above are both
#: meaningful cached values).
_SHAPE_MISSING = object()


class _PipelineShape:
    """The analyzed spine of a codegen-eligible plan."""

    __slots__ = ("table", "alias", "conjuncts", "outputs", "aggregate")

    def __init__(
        self,
        table: str,
        alias: str,
        conjuncts: tuple[Expression, ...],
        outputs: Optional[tuple[algebra.OutputColumn, ...]],
        aggregate: Optional[algebra.Aggregate],
    ) -> None:
        self.table = table
        self.alias = alias
        self.conjuncts = conjuncts
        self.outputs = outputs
        self.aggregate = aggregate


def _analyze_pipeline(plan: algebra.PlanNode) -> Optional[_PipelineShape]:
    """Peel ``plan`` into a [Project | Aggregate] → Select* → Scan spine.

    Returns ``None`` for every other shape.  Sorts in particular must stay
    ineligible: prepared statements rely on sorted plans populating the
    batch-kernel cache (``_ops``).
    """
    outputs: Optional[tuple[algebra.OutputColumn, ...]] = None
    aggregate: Optional[algebra.Aggregate] = None
    node = plan
    if isinstance(node, algebra.Aggregate):
        aggregate = node
        node = node.child
    elif isinstance(node, algebra.Project):
        outputs = node.outputs
        node = node.child
        if isinstance(node, algebra.Aggregate):
            # The parser wraps every aggregate query in a Project that
            # renames / reorders the aggregate's outputs; the projection is
            # applied at emit time against the aggregate's output columns.
            aggregate = node
            node = node.child
    predicates: list[Expression] = []
    while isinstance(node, algebra.Select):
        predicates.append(node.predicate)
        node = node.child
    if not isinstance(node, algebra.Scan):
        return None
    predicates.reverse()  # the innermost Select applies first
    conjuncts: list[Expression] = []
    for predicate in predicates:
        conjuncts.extend(_flatten_and(predicate))
    return _PipelineShape(
        node.table, node.effective_alias, tuple(conjuncts), outputs, aggregate
    )


class _Lowered(NamedTuple):
    """One lowered expression: a source fragment plus its static facts.

    ``trivial`` marks plain variable/constant atoms — the only fragments
    that can be freely repeated *or skipped* by a parent's null guard,
    because their evaluation cannot raise.  Anything composite (including a
    bare comparison, which can raise ``TypeError`` on mixed operands) must
    be evaluated exactly as often as the row tiers would evaluate it.
    """

    src: str
    nullable: bool
    is_bool: bool
    trivial: bool


_AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


class _PipelineCompiler:
    """Lowers one pipeline's expressions into Python source fragments.

    One instance compiles one (pipeline shape, column-layout signature)
    pair: null-guard elision and dictionary code comparison are decided by
    each referenced column's physical encoding, which is why compiled
    pipelines are cached per layout signature.  With ``store=None`` the
    compiler runs in *trial mode* — every column is assumed boxed and
    nullable — which exercises the identical supportability decisions
    without a live column store (used to cache unsupportable shapes once).

    The generated function has the signature ``_pipeline(_cols, _n)`` where
    ``_cols`` is the table's current column store and ``_n`` its row count:
    nothing store-specific is baked into the compiled code — dictionary
    lookups, column arrays and null layouts are all read from ``_cols`` in
    the loop prologue — so a cached pipeline stays valid across table
    rebuilds that preserve the layout signature.
    """

    def __init__(self, schema, store) -> None:
        self._schema = schema
        self._store = store
        self.globals: dict[str, Any] = {"_zip": zip, "_range": range}
        self.prologue: list[str] = []
        self.zip_names: list[str] = []
        self.zip_sources: list[str] = []
        self._column_vars: dict[str, str] = {}
        self._boxed_vars: dict[str, str] = {}
        self._code_vars: dict[str, str] = {}
        self._dict_vars: dict[str, str] = {}
        self._buffer_vars: dict[int, str] = {}
        self._slot_vars: dict[int, str] = {}
        self._counter = 0
        #: when set, column references resolve against these emit-scope
        #: sources (an aggregate's output namespace) instead of the scanned
        #: table's columns — used to lower a projection over an aggregate.
        self.emit_columns: Optional[dict[str, str]] = None
        #: whether the generated function reads the table's prebuilt
        #: full-width row templates (the ``_wide`` parameter); set by the
        #: full-width select generator, which emits survivors as
        #: ``dict.copy`` of those templates.
        self.uses_wide = False

    def gensym(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- column / parameter access ----------------------------------------

    def resolve(self, column: ColumnRef) -> str:
        """Resolve a reference to a schema column name, or refuse.

        Single-table pipelines resolve exactly like the row tiers: the
        qualified lookup and the unique-suffix fallback both land on the
        bare schema column when it exists, so the bare name is the whole
        story here.
        """
        if not self._schema.has_column(column.name):
            raise _CodegenUnsupported(column.qualified_name)
        return column.name

    def _resolve_emit(self, column: ColumnRef) -> str:
        """Resolve a reference against the emit-scope namespace.

        Mirrors :meth:`ColumnRef.evaluate` over the aggregate's output row:
        qualified key first, then the bare name, then a unique ``.name``
        suffix; anything missing or ambiguous refuses (the row tiers raise
        their own error for it).
        """
        available = self.emit_columns
        if column.qualifier:
            qualified = f"{column.qualifier}.{column.name}"
            if qualified in available:
                return available[qualified]
        if column.name in available:
            return available[column.name]
        suffix = f".{column.name}"
        matches = [key for key in available if key.endswith(suffix)]
        if len(matches) == 1:
            return available[matches[0]]
        raise _CodegenUnsupported(column.qualified_name)

    def encoding(self, name: str) -> str:
        if self._store is None:  # trial mode: pessimistic
            return "boxed"
        return self._store[name].encoding

    def nullable(self, name: str) -> bool:
        if self._store is None:  # trial mode: pessimistic
            return True
        data = self._store[name]
        return data.encoding == "boxed" or data.nulls is not None

    def column_var(self, name: str) -> str:
        """Prologue variable holding the column's :class:`ColumnData`."""
        var = self._column_vars.get(name)
        if var is None:
            var = self.gensym("_c")
            self._column_vars[name] = var
            self.prologue.append(f"{var} = _cols[{name!r}]")
        return var

    def boxed_var(self, name: str) -> str:
        """Loop variable over the column's boxed values."""
        var = self._boxed_vars.get(name)
        if var is None:
            var = self.gensym("_v")
            self._boxed_vars[name] = var
            self.zip_names.append(var)
            self.zip_sources.append(self.column_var(name))
        return var

    def codes_var(self, name: str) -> str:
        """Loop variable over a dictionary column's code array."""
        var = self._code_vars.get(name)
        if var is None:
            var = self.gensym("_x")
            self._code_vars[name] = var
            self.zip_names.append(var)
            self.zip_sources.append(f"{self.column_var(name)}.codes")
        return var

    def dictionary_var(self, name: str) -> str:
        """Prologue variable holding a dictionary column's value list."""
        var = self._dict_vars.get(name)
        if var is None:
            var = self.gensym("_d")
            self._dict_vars[name] = var
            self.prologue.append(f"{var} = {self.column_var(name)}.dictionary")
        return var

    def slot_var(self, slot: ParameterSlot) -> str:
        """Prologue variable reading a parameter slot's current value."""
        var = self._slot_vars.get(id(slot))
        if var is None:
            buffer_var = self._buffer_vars.get(id(slot.slots))
            if buffer_var is None:
                buffer_var = self.bind(slot.slots)
                self._buffer_vars[id(slot.slots)] = buffer_var
            var = self.gensym("_p")
            self._slot_vars[id(slot)] = var
            self.prologue.append(f"{var} = {buffer_var}[{slot.index}]")
        return var

    def bind(self, value: Any) -> str:
        """Bind ``value`` into the generated function's globals."""
        var = self.gensym("_b")
        self.globals[var] = value
        return var

    def const(self, value: Any) -> str:
        """A source literal for ``value`` (bound when repr is not exact)."""
        if value is None or value is True or value is False:
            return repr(value)
        if isinstance(value, str):
            return repr(value)
        if isinstance(value, int):
            return repr(value) if value >= 0 else f"({value!r})"
        if isinstance(value, float):
            if math.isfinite(value):
                return repr(value) if value >= 0.0 else f"({value!r})"
            return self.bind(value)
        return self.bind(value)

    def loop_clause(self) -> str:
        """The ``for ...`` clause iterating every referenced column."""
        names, sources = self.zip_names, self.zip_sources
        if not names:
            return "for _i in _range(_n)"
        if len(names) == 1:
            return f"for {names[0]} in {sources[0]}"
        return f"for {', '.join(names)} in _zip({', '.join(sources)})"

    # -- expression lowering -----------------------------------------------

    def lower(self, expression: Expression) -> _Lowered:
        if isinstance(expression, Literal):
            value = expression.value
            return _Lowered(
                self.const(value), value is None, isinstance(value, bool), True
            )
        if isinstance(expression, ColumnRef):
            if self.emit_columns is not None:
                return _Lowered(self._resolve_emit(expression), True, False, False)
            name = self.resolve(expression)
            return _Lowered(self.boxed_var(name), self.nullable(name), False, True)
        if isinstance(expression, ParameterSlot):
            return _Lowered(self.slot_var(expression), True, False, True)
        if isinstance(expression, BinaryOp):
            return self._lower_binary(expression)
        if isinstance(expression, BooleanOp):
            operands = [self.lower(o) for o in expression.operands]
            joiner = " and " if expression.op == "and" else " or "
            src = joiner.join(
                o.src if o.is_bool else f"bool({o.src})" for o in operands
            )
            # The row tiers short-circuit AND/OR exactly like this.
            return _Lowered(f"({src})", False, True, False)
        if isinstance(expression, Not):
            operand = self.lower(expression.operand)
            return _Lowered(f"(not {operand.src})", False, True, False)
        if isinstance(expression, IsNull):
            operand = self.lower(expression.operand)
            test = "is not" if expression.negated else "is"
            return _Lowered(f"({operand.src} {test} None)", False, True, False)
        if isinstance(expression, InList):
            operand = self.lower(expression.operand)
            try:
                values: Any = frozenset(expression.values)
            except TypeError:
                values = expression.values
            bound = self.bind(values)
            # An unhashable *operand value* raises against the frozenset
            # where the row tiers scan the tuple; that runtime error re-runs
            # via the kernel path, which reproduces the row-tier result.
            return _Lowered(f"({operand.src} in {bound})", False, True, False)
        if isinstance(expression, FunctionCall):
            function = scalar_function(expression.name)
            if function is None:
                raise _CodegenUnsupported(expression.name)
            arguments = [self.lower(a) for a in expression.args]
            bound = self.bind(function)
            src = f"{bound}({', '.join(a.src for a in arguments)})"
            return _Lowered(src, True, False, False)
        raise _CodegenUnsupported(type(expression).__name__)

    def _lower_binary(self, expression: BinaryOp) -> _Lowered:
        arithmetic = expression.op in ARITHMETIC_OPS
        if not arithmetic:
            fast = self._dict_compare(expression)
            if fast is not None:
                return fast
        operator_src = BINARY_OP_SOURCE[expression.op]
        left = self.lower(expression.left)
        right = self.lower(expression.right)
        if not left.nullable and not right.nullable:
            src = f"({left.src} {operator_src} {right.src})"
            return _Lowered(src, False, not arithmetic, False)
        if left.trivial and right.trivial:
            # Atoms are free to repeat, so no temporaries are needed.
            nullable_atoms = [o for o in (left, right) if o.nullable]
            if arithmetic:
                guard = " or ".join(f"{o.src} is None" for o in nullable_atoms)
                src = (
                    f"(None if {guard} else "
                    f"({left.src} {operator_src} {right.src}))"
                )
                return _Lowered(src, True, False, False)
            guard = " and ".join(f"{o.src} is not None" for o in nullable_atoms)
            src = f"({guard} and {left.src} {operator_src} {right.src})"
            return _Lowered(src, False, True, False)
        # A composite operand can raise, and the row tiers always evaluate
        # both operands before the null check — so evaluate both into
        # temporaries unconditionally (a tuple display fixes the order),
        # then guard.
        left_temp = self.gensym("_t")
        right_temp = self.gensym("_t")
        null_checks = []
        live_checks = []
        if left.nullable:
            null_checks.append(f"{left_temp} is None")
            live_checks.append(f"{left_temp} is not None")
        if right.nullable:
            null_checks.append(f"{right_temp} is None")
            live_checks.append(f"{right_temp} is not None")
        prefix = f"(({left_temp} := {left.src}), ({right_temp} := {right.src}), "
        if arithmetic:
            src = (
                prefix
                + f"(None if {' or '.join(null_checks)} else "
                + f"({left_temp} {operator_src} {right_temp})))[2]"
            )
            return _Lowered(src, True, False, False)
        src = (
            prefix
            + f"({' and '.join(live_checks)} and "
            + f"{left_temp} {operator_src} {right_temp}))[2]"
        )
        return _Lowered(src, False, True, False)

    def _dict_compare(self, expression: BinaryOp) -> Optional[_Lowered]:
        """``dict_col = scalar`` / ``!=`` as a small-int code comparison.

        The scalar is translated through the column's dictionary once per
        execution (in the loop prologue); inside the loop only the per-row
        code is compared.  Sentinels: row code ``-1`` is NULL, translated
        key ``-2`` means "scalar is NULL", ``-3`` "scalar not in the
        dictionary" — both compare unequal to every row code, and the NULL
        cases collapse to ``False`` exactly like the row tiers' comparison
        semantics.
        """
        if self.emit_columns is not None:
            return None  # emit scope has no dictionary columns
        equality = expression.op in ("=", "==")
        if not equality and expression.op not in ("!=", "<>"):
            return None
        column, scalar = expression.left, expression.right
        if isinstance(scalar, ColumnRef) and not isinstance(column, ColumnRef):
            column, scalar = scalar, column
        if not isinstance(column, ColumnRef) or not isinstance(
            scalar, (Literal, ParameterSlot)
        ):
            return None
        name = self.resolve(column)
        if self.encoding(name) != "dict":
            return None
        codes = self.codes_var(name)
        holder = self.column_var(name)
        key = self.gensym("_k")
        if isinstance(scalar, Literal):
            value = scalar.value
            if value is None:
                # NULL never compares equal (or unequal) to anything.
                return _Lowered("False", False, True, True)
            try:
                hash(value)
            except TypeError:
                return None  # generic lowering compares boxed values
            self.prologue.append(
                f"{key} = {holder}.code_of.get({self.const(value)}, -2)"
            )
            if equality:
                return _Lowered(f"({codes} == {key})", False, True, True)
            return _Lowered(
                f"({codes} >= 0 and {codes} != {key})", False, True, True
            )
        slot = self.slot_var(scalar)
        self.prologue.append(
            f"{key} = -2 if {slot} is None else {holder}.code_of.get({slot}, -3)"
        )
        if equality:
            return _Lowered(f"({codes} == {key})", False, True, True)
        return _Lowered(
            f"({codes} >= 0 and {key} != -2 and {codes} != {key})",
            False,
            True,
            True,
        )


def _assemble_pipeline(
    compiler: _PipelineCompiler, body: list[str]
) -> tuple[str, dict, bool]:
    lines = ["def _pipeline(_cols, _n, _wide):"]
    lines.extend(f"    {line}" for line in compiler.prologue)
    lines.extend(f"    {line}" for line in body)
    return "\n".join(lines), compiler.globals, compiler.uses_wide


def _generate_select(
    shape: _PipelineShape, schema, store
) -> tuple[str, dict, bool]:
    """Source for a Scan → Select* → [Project] pipeline."""
    compiler = _PipelineCompiler(schema, store)
    conditions = [compiler.lower(conjunct) for conjunct in shape.conjuncts]
    condition = " and ".join(lowered.src for lowered in conditions)
    suffix = f" if {condition}" if condition else ""
    if shape.outputs is None:
        # Full-width output: each survivor is a C-level ``dict.copy`` of
        # the table's prebuilt template for this alias (bare keys then
        # alias-qualified keys — the kernel scan's key order, and
        # therefore the row tiers').  Only filter columns are zipped.
        compiler.uses_wide = True
        names, sources = compiler.zip_names, compiler.zip_sources
        if names:
            loop = (
                f"for _r, {', '.join(names)} in "
                f"_zip(_wide, {', '.join(sources)})"
            )
        else:
            loop = "for _r in _wide"
        body = [f"return [_r.copy() {loop}{suffix}]"]
        return _assemble_pipeline(compiler, body)
    items: list[str] = []
    for output in shape.outputs:
        lowered = compiler.lower(output.expression)
        items.append(f"{output.name!r}: {lowered.src}")
    body = [
        f"return [{{{', '.join(items)}}} {compiler.loop_clause()}{suffix}]"
    ]
    return _assemble_pipeline(compiler, body)


def _emit_items(
    compiler: _PipelineCompiler,
    shape: _PipelineShape,
    available: dict[str, str],
) -> list[str]:
    """Dict-display items for an aggregate's emit row.

    ``available`` is the aggregate's output namespace (key -> value source)
    in row-dict insertion order.  Without an outer projection it *is* the
    output row; with one, each projection output is lowered in emit scope so
    references resolve against the aggregate's outputs like the row tiers'
    projection over aggregate rows.
    """
    if shape.outputs is None:
        return [f"{key!r}: {value}" for key, value in available.items()]
    compiler.emit_columns = available
    try:
        items = []
        for output in shape.outputs:
            lowered = compiler.lower(output.expression)
            items.append(f"{output.name!r}: {lowered.src}")
        return items
    finally:
        compiler.emit_columns = None


def _generate_aggregate(
    shape: _PipelineShape, schema, store
) -> tuple[str, dict]:
    """Source for a Scan → Select* → Aggregate pipeline (one fused pass)."""
    plan = shape.aggregate
    compiler = _PipelineCompiler(schema, store)
    conditions = [compiler.lower(conjunct) for conjunct in shape.conjuncts]
    for spec in plan.aggregates:
        if spec.function not in _AGGREGATE_FUNCTIONS:
            raise _CodegenUnsupported(spec.function)
    argument_exprs: list[Expression] = []

    def compile_argument(expression: Expression) -> Optional[_Lowered]:
        try:
            lowered = compiler.lower(expression)
        except _CodegenUnsupported:
            return None
        argument_exprs.append(expression)
        return lowered

    planned = plan_aggregate_arguments(plan.aggregates, compile_argument)
    if planned is None:
        raise _CodegenUnsupported("aggregate argument")
    arguments, spec_slots = planned
    # Distinct (function, slot) partials, exactly like the kernel path, so
    # the emit loop stays slot-compatible with the sharding layer's merge.
    partial_keys: list[tuple[str, int]] = []
    partial_index: dict[tuple[str, int], int] = {}

    def partial_slot(function: str, slot: int) -> int:
        key = (function, slot)
        index = partial_index.get(key)
        if index is None:
            index = len(partial_keys)
            partial_index[key] = index
            partial_keys.append(key)
        return index

    emitters: list[tuple[str, str, tuple[int, ...]]] = []
    needs_sizes = False
    for spec, slot in spec_slots:
        if slot is None:
            needs_sizes = True
            emitters.append((spec.name, "size", ()))
        elif spec.function == "avg":
            pair = (partial_slot("sum", slot), partial_slot("count", slot))
            emitters.append((spec.name, "avg", pair))
        else:
            emitters.append((spec.name, "partial", (partial_slot(spec.function, slot),)))
    # Argument slots: trivial arguments are referenced in place, composite
    # arguments are evaluated once per surviving row into a temporary.
    value_srcs: list[str] = []
    value_assigns: list[str] = []
    for slot, lowered in enumerate(arguments):
        if lowered.trivial:
            value_srcs.append(lowered.src)
        else:
            temp = f"_a{slot}"
            value_srcs.append(temp)
            value_assigns.append(f"{temp} = {lowered.src}")

    def fast_numeric(slot: int) -> bool:
        """True when the slot is a non-nullable typed numeric column —
        ``sum`` then skips None seeding and uses ``+=`` directly."""
        expression = argument_exprs[slot]
        if arguments[slot].nullable or not isinstance(expression, ColumnRef):
            return False
        return compiler.encoding(compiler.resolve(expression)) in (
            "int64",
            "float64",
        )

    grouped = bool(plan.group_by)
    condition = " and ".join(lowered.src for lowered in conditions)
    body: list[str] = []
    if grouped:
        group_srcs: list[str] = []
        group_emits: list[tuple[str, str, Optional[str]]] = []
        for column in plan.group_by:
            name = compiler.resolve(column)
            if compiler.encoding(name) == "dict":
                # Group on the injective small-int codes; decode at emit.
                group_srcs.append(compiler.codes_var(name))
                group_emits.append(
                    (column.name, column.qualified_name, compiler.dictionary_var(name))
                )
            else:
                group_srcs.append(compiler.boxed_var(name))
                group_emits.append((column.name, column.qualified_name, None))
        if len(group_srcs) == 1:
            key_src = group_srcs[0]
        else:
            key_src = f"({', '.join(group_srcs)})"
        # Per-group accumulation strategy.  The common single-argument
        # shape (any mix of sum/count/min/max/avg over one expression)
        # appends each surviving value to a per-group values list — a
        # ``defaultdict(list)`` subscript creates missing groups at C
        # level, so the hot loop is one probe plus one append with no
        # Python-level branch — and reduces with the C builtins at emit
        # time, which accumulate left-to-right exactly like the kernels'
        # sequential folds.  Everything else keeps one mutable state list
        # per group, indexed by partial slot.
        single = len(arguments) == 1
        if single and needs_sizes and arguments[0].nullable:
            single = False  # len(values) would miss NULL-argument rows
        loop: list[str] = []
        if condition:
            loop.append(f"if not ({condition}):")
            loop.append("    continue")
        loop.extend(value_assigns)
        reductions: list[str] = []
        available: dict[str, str] = {}
        compiler.globals["_defaultdict"] = defaultdict
        if single:
            compiler.globals.update(
                {
                    "_sum": sum,
                    "_len": len,
                    "_min": min,
                    "_max": max,
                    "_list": list,
                    "_lap": list.append,
                }
            )
            value = value_srcs[0]
            guard = arguments[0].nullable
            if guard:
                loop.append(f"_l = _ids[{key_src}]")
                loop.append(f"if {value} is not None:")
                loop.append(f"    _lap(_l, {value})")
            else:
                loop.append(f"_lap(_ids[{key_src}], {value})")
            state_var = "_l"
            for index, (function, _) in enumerate(partial_keys):
                if function == "count":
                    reductions.append(f"_r{index} = _len(_l)")
                elif guard:
                    reductions.append(
                        f"_r{index} = _{function}(_l) if _l else None"
                    )
                else:
                    reductions.append(f"_r{index} = _{function}(_l)")
            # needs_sizes forces a non-nullable argument here, so a count
            # partial's reduction doubles as the surviving-row count.
            size_src = next(
                (
                    f"_r{index}"
                    for index, (function, _) in enumerate(partial_keys)
                    if function == "count"
                ),
                "_len(_l)",
            )
            partial_src = ["_r{}".format(i) for i in range(len(partial_keys))]
            factory = "_list"
        else:
            inits: list[str] = []
            updates: dict[int, list[str]] = {}  # slot -> update lines
            for index, (function, slot) in enumerate(partial_keys):
                value = value_srcs[slot]
                cell = f"_st[{index}]"
                if function == "count":
                    inits.append("0")
                    updates.setdefault(slot, []).append(f"{cell} += 1")
                elif function == "sum" and fast_numeric(slot):
                    inits.append("0")
                    updates.setdefault(slot, []).append(f"{cell} += {value}")
                elif function == "sum":
                    temp = compiler.gensym("_m")
                    inits.append("None")
                    updates.setdefault(slot, []).extend(
                        [
                            f"{temp} = {cell}",
                            f"{cell} = (0 + {value}) if {temp} is None"
                            f" else {temp} + {value}",
                        ]
                    )
                else:  # min / max
                    comparator = "<" if function == "min" else ">"
                    temp = compiler.gensym("_m")
                    inits.append("None")
                    updates.setdefault(slot, []).extend(
                        [
                            f"{temp} = {cell}",
                            f"if {temp} is None or {value} {comparator} {temp}:",
                            f"    {cell} = {value}",
                        ]
                    )
            # Surviving-row counts (count(*)) share an unguarded count
            # partial's cell when one exists; otherwise they get their own.
            size_cell: Optional[int] = None
            if needs_sizes:
                for index, (function, slot) in enumerate(partial_keys):
                    if function == "count" and not arguments[slot].nullable:
                        size_cell = index
                        break
                if size_cell is None:
                    size_cell = len(partial_keys)
                    inits.append("0")
            loop.append(f"_st = _ids[{key_src}]")
            if size_cell is not None and size_cell >= len(partial_keys):
                loop.append(f"_st[{size_cell}] += 1")
            for slot, lines in updates.items():
                if arguments[slot].nullable:
                    loop.append(f"if {value_srcs[slot]} is not None:")
                    loop.extend(f"    {line}" for line in lines)
                else:
                    loop.extend(lines)
            state_var = "_st"
            size_src = f"_st[{size_cell}]" if size_cell is not None else "0"
            partial_src = [f"_st[{i}]" for i in range(len(partial_keys))]
            factory = f"lambda: [{', '.join(inits)}]"
        body.append(f"_ids = _defaultdict({factory})")
        body.append(f"{compiler.loop_clause()}:")
        body.extend(f"    {line}" for line in loop)
        # Emit: one output row per group, in first-encounter order.
        key_names = [f"_k{i}" for i in range(len(group_srcs))]
        if len(key_names) == 1:
            unpack = key_names[0]
        else:
            unpack = f"({', '.join(key_names)})"
        # The aggregate's output namespace, as the row tiers build it:
        # group columns (bare and qualified keys) first, then spec outputs;
        # later assignments overwrite, exactly like row-dict insertion.
        for key_name, (bare, qualified, dictionary) in zip(key_names, group_emits):
            value = (
                key_name
                if dictionary is None
                else f"({dictionary}[{key_name}] if {key_name} >= 0 else None)"
            )
            available[bare] = value
            available[qualified] = value
        for name, kind, indices in emitters:
            if kind == "size":
                available[name] = size_src
            elif kind == "avg":
                count_slot = partial_keys[indices[1]][1]
                if arguments[count_slot].nullable:
                    available[name] = (
                        f"(({partial_src[indices[0]]}"
                        f" / {partial_src[indices[1]]})"
                        f" if {partial_src[indices[1]]} else None)"
                    )
                else:
                    # A group only exists once a surviving row landed in
                    # it, so a non-nullable argument's count is >= 1.
                    available[name] = (
                        f"({partial_src[indices[0]]}"
                        f" / {partial_src[indices[1]]})"
                    )
            else:
                available[name] = partial_src[indices[0]]
        emit_items = _emit_items(compiler, shape, available)
        body.append("_out = []")
        body.append("_emit = _out.append")
        body.append(f"for {unpack}, {state_var} in _ids.items():")
        body.extend(f"    {line}" for line in reductions)
        body.append(f"    _emit({{{', '.join(emit_items)}}})")
        body.append("return _out")
        return _assemble_pipeline(compiler, body)
    # Scalar aggregation: plain accumulator locals, always one output row.
    if not condition and not partial_keys:
        # count(*)-only over an unfiltered scan: the answer is the row count.
        available = {name: "_n" for name, _, _ in emitters}
        emit_items = _emit_items(compiler, shape, available)
        body.append(f"return [{{{', '.join(emit_items)}}}]")
        return _assemble_pipeline(compiler, body)
    inits = []
    updates = {}
    for index, (function, slot) in enumerate(partial_keys):
        value = value_srcs[slot]
        state = f"_s{index}"
        if function == "count":
            inits.append(f"{state} = 0")
            updates.setdefault(slot, []).append(f"{state} += 1")
        elif function == "sum":
            inits.append(f"{state} = None")
            updates.setdefault(slot, []).append(
                f"{state} = (0 + {value}) if {state} is None else {state} + {value}"
            )
        else:
            comparator = "<" if function == "min" else ">"
            inits.append(f"{state} = None")
            updates.setdefault(slot, []).extend(
                [
                    f"if {state} is None or {value} {comparator} {state}:",
                    f"    {state} = {value}",
                ]
            )
    if needs_sizes:
        body.append("_sz = 0")
    body.extend(inits)
    body.append(f"{compiler.loop_clause()}:")
    loop = []
    if condition:
        loop.append(f"if not ({condition}):")
        loop.append("    continue")
    if needs_sizes:
        loop.append("_sz += 1")
    loop.extend(value_assigns)
    for slot, lines in updates.items():
        if arguments[slot].nullable:
            loop.append(f"if {value_srcs[slot]} is not None:")
            loop.extend(f"    {line}" for line in lines)
        else:
            loop.extend(lines)
    if not loop:
        loop.append("pass")
    body.extend(f"    {line}" for line in loop)
    available = {}
    for name, kind, indices in emitters:
        if kind == "size":
            available[name] = "_sz"
        elif kind == "avg":
            available[name] = (
                f"((_s{indices[0]} / _s{indices[1]})"
                f" if _s{indices[1]} else None)"
            )
        else:
            available[name] = f"_s{indices[0]}"
    emit_items = _emit_items(compiler, shape, available)
    body.append(f"return [{{{', '.join(emit_items)}}}]")
    return _assemble_pipeline(compiler, body)


def _generate_pipeline(
    shape: _PipelineShape, schema, store
) -> tuple[str, dict, bool]:
    if shape.aggregate is not None:
        return _generate_aggregate(shape, schema, store)
    return _generate_select(shape, schema, store)


class VectorizedExecutor:
    """Lowers algebra plans to batch pipelines and runs them.

    Owned by an :class:`~repro.db.executor.Executor` in ``vectorized`` mode.
    Lowered pipelines are cached in an LRU keyed by the plan object, so a
    prepared statement's slot-compiled template re-executes with zero
    lowering work; the cache is dropped on DDL together with the executor's
    resolver-context closures.
    """

    #: Lowered-plan cache entries kept before LRU eviction.
    OP_CACHE_LIMIT = 256
    #: Compiled fused-pipeline cache entries kept before LRU eviction.
    PIPELINE_CACHE_LIMIT = 256

    def __init__(self, executor, backend: Optional[str] = None) -> None:
        from repro.db.vector_backend import make_filter_backend, resolve_backend

        self._executor = executor
        self._tables = executor._tables
        #: plan -> lowered BatchOp (or the unvectorizable sentinel), LRU.
        self._ops: OrderedDict[algebra.PlanNode, BatchOp] = OrderedDict()
        #: materializer-layout signature -> code-generated row constructor,
        #: LRU-evicted like the executor's compile caches.
        self._makers: OrderedDict[tuple, Callable] = OrderedDict()
        #: plan -> analyzed pipeline shape, ``None`` (not a pipeline spine)
        #: or the unsupported sentinel; LRU alongside the op cache.
        self._shapes: OrderedDict[algebra.PlanNode, Any] = OrderedDict()
        #: (plan, column-layout signature) -> compiled fused pipeline, LRU.
        self._pipelines: OrderedDict[tuple, Callable] = OrderedDict()
        #: whether fused-pipeline codegen is attempted at all (the
        #: ``REPRO_VECTOR_CODEGEN=0`` escape hatch forces the kernel path).
        self.codegen_enabled = os.environ.get(
            "REPRO_VECTOR_CODEGEN", "1"
        ).lower() not in ("0", "false", "off")
        #: requested / active kernel filter backend ("python" or "numpy";
        #: "numpy" silently degrades to "python" when numpy is absent).
        self.backend_requested, self.backend = resolve_backend(backend)
        self._filter_backend = make_filter_backend(
            self.backend, self._count_reason
        )
        #: queries served entirely by this tier.
        self.executions = 0
        #: of which: served by a compiled fused pipeline.
        self.codegen_executions = 0
        #: fused pipelines compiled (cache misses on a supported shape).
        self.pipelines_compiled = 0
        #: fused-pipeline cache hits.
        self.codegen_cache_hits = 0
        #: codegen attempts aborted by an unexpected error (the query then
        #: re-runs via the kernel path, so this is not a fallback).
        self.codegen_errors = 0
        #: queries that bailed to the compiled tier (no lowering, or a
        #: kernel raised at run time).
        self.fallbacks = 0
        #: subtrees executed on the compiled tier inside a vectorized run.
        self.subtree_fallbacks = 0
        #: fallback reason -> count, across whole-plan and subtree
        #: fallbacks: ``theta_join`` (non-equi join condition),
        #: ``unknown_function`` (an expression with no batch kernel —
        #: unknown scalar functions and foreign expression types),
        #: ``unsupported_operator`` (a plan node outside the vectorized
        #: subset), ``kernel_error`` (a kernel raised at run time),
        #: ``codegen_unsupported`` (an eligible pipeline spine with an
        #: unlowerable expression ran on the kernel path instead), and
        #: ``untyped_column`` (the numpy backend declined a boxed column).
        self.fallback_reasons: dict[str, int] = {}
        #: reason of the most recent lowering failure (set by _lower).
        self._last_reason = "unsupported_operator"
        #: reason behind the most recent try_execute fallback; ``None``
        #: after a vectorized success.  Read by the executor's per-call
        #: tier markers (tracing / EXPLAIN).
        self.last_fallback_reason: Optional[str] = None
        #: how the most recent vectorized success ran: ``"codegen"`` or
        #: ``"kernel"``; ``None`` after a fallback.
        self.last_path: Optional[str] = None

    # -- public API ------------------------------------------------------

    def try_execute(self, plan: algebra.PlanNode) -> Optional[list[Row]]:
        """Execute ``plan`` vectorized, or return ``None`` to fall back.

        Any exception other than :class:`~repro.db.executor.ExecutionError`
        (which the row tiers raise identically, e.g. for unknown tables)
        aborts the vectorized attempt; the caller re-runs the plan on the
        compiled tier, which reproduces genuine user-visible errors with
        row-tier semantics.
        """
        rows = self.try_codegen_rows(plan)
        if rows is not None:
            self.executions += 1
            self.codegen_executions += 1
            self.last_fallback_reason = None
            self.last_path = "codegen"
            return rows
        op = self._op(plan)
        if op is None:
            self.fallbacks += 1
            self.last_fallback_reason = self._last_reason
            self.last_path = None
            self._count_reason(self._last_reason)
            return None
        try:
            batch = op()
            rows = self._materialize(batch)
        except ExecutionError:
            raise
        except Exception:
            self.fallbacks += 1
            self.last_fallback_reason = "kernel_error"
            self.last_path = None
            self._count_reason("kernel_error")
            return None
        self.executions += 1
        self.last_fallback_reason = None
        self.last_path = "kernel"
        return rows

    def try_codegen_rows(self, plan: algebra.PlanNode) -> Optional[list[Row]]:
        """Run ``plan`` through a compiled fused pipeline, or ``None``.

        Returns the output rows on success and ``None`` whenever the plan
        must take the batch-kernel path instead: codegen disabled, the plan
        is not a [Project | Aggregate] → Select* → Scan spine, the spine
        contains an unlowerable expression (counted as
        ``codegen_unsupported``), the scanned table is missing (the kernel
        path raises the row-tier error), or the generated code failed at
        compile or run time (counted in ``codegen_errors``; the kernel
        re-run reproduces row-tier error semantics).  Does *not* touch the
        execution counters — callers (``try_execute``, the sharding layer's
        scatter) account for successes themselves.
        """
        if not self.codegen_enabled:
            return None
        try:
            shape = self._pipeline_shape(plan)
            if shape is None:
                return None
            if shape is _CODEGEN_UNSUPPORTED:
                self._count_reason("codegen_unsupported")
                return None
            table = self._tables.get(shape.table)
            if table is None:
                return None
            store = table.columns()
            signature = tuple(
                (data.encoding, data.nulls is not None)
                for data in store.values()
            )
            pipeline, uses_wide = self._pipeline_fn(
                plan, shape, table, store, signature
            )
            wide = table.wide_rows(shape.alias) if uses_wide else None
            return pipeline(store, len(table.rows), wide)
        except Exception:
            self.codegen_errors += 1
            return None

    def invalidate(self) -> None:
        """Drop every cached lowered pipeline (call on DDL)."""
        self._ops.clear()
        self._shapes.clear()
        self._pipelines.clear()

    # -- fused-pipeline compilation ---------------------------------------

    def _pipeline_shape(self, plan: algebra.PlanNode) -> Any:
        """The cached shape analysis of ``plan``.

        Supportability is layout-independent (the boxed fallback always
        exists, and trial mode makes the pessimistic lowering decisions), so
        one trial compile per plan settles eligibility for good.
        """
        try:
            cached = self._shapes.get(plan, _SHAPE_MISSING)
        except TypeError:  # unhashable literal buried in the plan
            return self._analyze_shape(plan, cache=False)
        if cached is not _SHAPE_MISSING:
            self._shapes.move_to_end(plan)
            return cached
        return self._analyze_shape(plan, cache=True)

    def _analyze_shape(self, plan: algebra.PlanNode, cache: bool) -> Any:
        shape: Any = _analyze_pipeline(plan)
        if shape is not None:
            table = self._tables.get(shape.table)
            if table is None:
                # Can't settle supportability without a schema; don't cache
                # (the table may exist under a future resolver context).
                return shape
            try:
                source, _, _ = _generate_pipeline(shape, table.schema, None)
                compile(source, "<pipeline-trial>", "exec")
            except _CodegenUnsupported:
                shape = _CODEGEN_UNSUPPORTED
        if cache:
            if len(self._shapes) >= self.OP_CACHE_LIMIT:
                self._shapes.popitem(last=False)
            self._shapes[plan] = shape
        return shape

    def _pipeline_fn(
        self,
        plan: algebra.PlanNode,
        shape: _PipelineShape,
        table,
        store: dict,
        signature: tuple,
    ) -> tuple[Callable, bool]:
        key = (plan, signature)
        try:
            pipeline = self._pipelines.get(key)
        except TypeError:  # unhashable literal buried in the plan
            return self._compile_pipeline(shape, table.schema, store)
        if pipeline is not None:
            self._pipelines.move_to_end(key)
            self.codegen_cache_hits += 1
            return pipeline
        pipeline = self._compile_pipeline(shape, table.schema, store)
        if len(self._pipelines) >= self.PIPELINE_CACHE_LIMIT:
            self._pipelines.popitem(last=False)
        self._pipelines[key] = pipeline
        return pipeline

    def _compile_pipeline(
        self, shape: _PipelineShape, schema, store: dict
    ) -> tuple[Callable, bool]:
        source, bindings, uses_wide = _generate_pipeline(shape, schema, store)
        exec(  # noqa: S102 - internal codegen, identifiers repr-escaped
            compile(source, "<pipeline>", "exec"), bindings
        )
        self.pipelines_compiled += 1
        return bindings["_pipeline"], uses_wide

    # -- lowering --------------------------------------------------------

    def _count_reason(self, reason: str) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    def _fallback(self, reason: str) -> None:
        """Record why the current lowering failed; returns ``None``."""
        self._last_reason = reason
        return None

    def _op(self, plan: algebra.PlanNode) -> Optional[BatchOp]:
        """The cached lowering of ``plan`` (None when unvectorizable)."""
        try:
            cached = self._ops.get(plan)
        except TypeError:  # unhashable literal buried in the plan
            return self._lower(plan)
        if cached is None:
            op = self._lower(plan)
            if len(self._ops) >= self.OP_CACHE_LIMIT:
                self._ops.popitem(last=False)
            self._ops[plan] = (
                op if op is not None else _Unvectorizable(self._last_reason)
            )
            return op
        self._ops.move_to_end(plan)
        if isinstance(cached, _Unvectorizable):
            self._last_reason = cached.reason
            return None
        return cached

    def _lower(self, plan: algebra.PlanNode) -> Optional[BatchOp]:
        if isinstance(plan, algebra.Scan):
            return self._lower_scan(plan)
        if isinstance(plan, algebra.Select):
            return self._lower_select(plan)
        if isinstance(plan, algebra.Project):
            return self._lower_project(plan)
        if isinstance(plan, algebra.Join):
            return self._lower_join(plan)
        if isinstance(plan, algebra.Aggregate):
            return self._lower_aggregate(plan)
        if isinstance(plan, algebra.Sort):
            return self._lower_sort(plan)
        if isinstance(plan, algebra.Limit):
            return self._lower_limit(plan)
        return self._fallback("unsupported_operator")

    def _source(self, plan: algebra.PlanNode) -> BatchOp:
        """The lowering of a child plan, with per-subtree fallback.

        A child outside the vectorizable subset executes on the compiled
        tier and its rows are adapted into a batch, so one unsupported
        operator or expression does not force the whole query off the
        vectorized path.
        """
        op = self._op(plan)
        if op is not None:
            return op
        reason = self._last_reason
        executor = self._executor

        def run() -> ColumnBatch:
            self.subtree_fallbacks += 1
            self._count_reason(reason)
            return _batch_from_rows(list(executor._execute(plan)))

        return run

    def _kernel(self, expression: Expression) -> Optional[BatchKernel]:
        return expression.compile_batch(self._resolve_column)

    def _resolve_column(self, column: ColumnRef) -> BatchKernel:
        """The batch resolver: columns resolve dynamically per batch."""

        def kernel(batch: ColumnBatch) -> list:
            return batch.column_values(column)

        return kernel

    # -- operators -------------------------------------------------------

    def _lower_scan(self, plan: algebra.Scan) -> BatchOp:
        tables = self._tables
        name = plan.table
        alias = plan.effective_alias

        def run() -> ColumnBatch:
            table = tables.get(name)
            if table is None:
                raise ExecutionError(f"unknown table {name!r}")
            store = table.columns()
            columns: dict[str, tuple[list, Optional[list[int]]]] = {}
            for column, array in store.items():
                columns[column] = (array, None)
            for column, array in store.items():
                columns[f"{alias}.{column}"] = (array, None)
            key_order = tuple(store) + tuple(
                f"{alias}.{column}" for column in store
            )
            return ColumnBatch(columns, len(table.rows), key_order)

        return run

    def _lower_select(self, plan: algebra.Select) -> Optional[BatchOp]:
        filter_backend = self._filter_backend
        kernels = []
        for conjunct in _flatten_and(plan.predicate):
            kernel = self._kernel(conjunct)
            if kernel is None:
                return self._fallback("unknown_function")
            # The optional vector backend (numpy) may supply a faster
            # position filter for this conjunct; ``None`` (unsupported
            # shape, or at run time an untyped column) defers to the
            # Python kernel, which is always present and authoritative.
            position_filter = (
                filter_backend.position_filter(conjunct)
                if filter_backend is not None
                else None
            )
            kernels.append((kernel, position_filter))
        child = self._source(plan.child)

        def run() -> ColumnBatch:
            batch = child()
            # Conjuncts shrink the selection stage by stage: each kernel
            # only sees rows that survived the previous conjunct, which is
            # the batch equivalent of the row tiers' short-circuit AND.
            for kernel, position_filter in kernels:
                if batch.length == 0:
                    return batch
                keep = (
                    position_filter(batch)
                    if position_filter is not None
                    else None
                )
                if keep is None:
                    values = kernel(batch)
                    keep = [i for i, v in enumerate(values) if v]
                if len(keep) != batch.length:
                    batch = batch.take(keep)
            return batch

        return run

    def _lower_project(self, plan: algebra.Project) -> Optional[BatchOp]:
        outputs = []
        for output in plan.outputs:
            kernel = self._kernel(output.expression)
            if kernel is None:
                return self._fallback("unknown_function")
            outputs.append((output.name, kernel))
        child = self._source(plan.child)
        key_order = tuple(name for name, _ in outputs)

        def run() -> ColumnBatch:
            batch = child()
            columns: dict[str, tuple[list, Optional[list[int]]]] = {}
            for name, kernel in outputs:
                columns[name] = (kernel(batch), None)
            return ColumnBatch(columns, batch.length, key_order)

        return run

    def _lower_join(self, plan: algebra.Join) -> Optional[BatchOp]:
        equi = _equi_join_columns(plan.condition)
        if equi is None:
            # Theta and cross joins stay on the row tiers.
            return self._fallback("theta_join")
        left_col, right_col = equi
        left_source = self._source(plan.left)
        right_source = self._source(plan.right)
        right_plan = plan.right
        tables = self._tables
        # For a join of two bare scans the matching positions are a pure
        # function of the two tables' contents, so the computed selection
        # pair is memoized against their versions — a join index in the
        # spirit of Table.index_for, letting repeated executions skip the
        # probe entirely.  Filtered or parameterized inputs are excluded
        # (their batches depend on more than the table versions).
        cacheable = isinstance(plan.left, algebra.Scan) and isinstance(
            plan.right, algebra.Scan
        )
        selection_cache: dict[tuple, tuple] = {}

        def run() -> ColumnBatch:
            left_batch = left_source()
            if left_batch.length == 0:
                # Empty probe side: never execute or build the right side,
                # but still validate its table references (row-tier rule).
                for scan in algebra.find_scans(right_plan):
                    if scan.table not in tables:
                        raise ExecutionError(f"unknown table {scan.table!r}")
                return _empty_batch()
            right_batch = right_source()
            probe_name = left_batch.resolve(left_col)
            build_name = right_batch.resolve(right_col)
            if probe_name is None or build_name is None:
                # The condition may name the sides right-to-left.
                probe_name = left_batch.resolve(right_col)
                build_name = right_batch.resolve(left_col)
            if probe_name is None or build_name is None:
                # Neither orientation resolves; let the row tier decide
                # (it matches nothing, or raises on ambiguity).
                raise BatchResolutionError(
                    f"{left_col.qualified_name} = {right_col.qualified_name}"
                )
            if cacheable:
                left_table = tables[plan.left.table]
                right_table = tables[plan.right.table]
                stamp = (
                    probe_name,
                    build_name,
                    id(left_table),
                    left_table.version,
                    id(right_table),
                    right_table.version,
                )
                cached = selection_cache.get(stamp)
                if cached is None:
                    cached = _hash_join_positions(
                        left_batch.values_for(probe_name),
                        right_batch.values_for(build_name),
                    )
                    selection_cache.clear()
                    selection_cache[stamp] = cached
                probe_positions, build_positions = cached
            else:
                probe_positions, build_positions = _hash_join_positions(
                    left_batch.values_for(probe_name),
                    right_batch.values_for(build_name),
                )
            taken_right = right_batch.take(build_positions)
            if probe_positions is None:
                left_columns = left_batch.columns
            else:
                left_columns = left_batch.take(probe_positions).columns
            # Merge like _merge_rows: right keys first, left overwrites
            # colliding bare names (qualified keys never collide).
            columns = dict(taken_right.columns)
            columns.update(left_columns)
            key_order = taken_right.key_order + tuple(
                key
                for key in left_batch.key_order
                if key not in taken_right.columns
            )
            return ColumnBatch(columns, len(build_positions), key_order)

        return run

    def _lower_aggregate(self, plan: algebra.Aggregate) -> Optional[BatchOp]:
        group_kernels = []
        for column in plan.group_by:
            kernel = self._kernel(column)
            if kernel is None:
                return self._fallback("unknown_function")
            group_kernels.append(kernel)
        # Aggregates often share their argument (sum(x) next to avg(x)):
        # evaluate each distinct argument column once per batch.
        planned = plan_aggregate_arguments(plan.aggregates, self._kernel)
        if planned is None:
            return self._fallback("unknown_function")
        arg_kernels, spec_slots = planned
        child = self._source(plan.child)
        group_by = plan.group_by
        # Each output spec maps onto one or two *partial-aggregate kernels*
        # over its argument slot (avg decomposes into sum + count); distinct
        # (function, slot) partials are accumulated once even when several
        # specs share them.  The same kernels back the sharding layer's
        # per-shard partial aggregation (merged by AGGREGATE_MERGERS at the
        # gather node).
        partial_keys: list[tuple[str, int]] = []
        partial_index: dict[tuple[str, int], int] = {}

        def partial_slot(function: str, slot: int) -> int:
            key = (function, slot)
            index = partial_index.get(key)
            if index is None:
                index = len(partial_keys)
                partial_index[key] = index
                partial_keys.append(key)
            return index

        #: (spec name, emit kind, partial indices) per output spec, where
        #: kind is "size" (count(*)), "avg" (sum+count pair), or "partial".
        emitters: list[tuple[str, str, tuple[int, ...]]] = []
        needs_sizes = False
        for spec, slot in spec_slots:
            if slot is None:  # count(*): group sizes, no argument column
                needs_sizes = True
                emitters.append((spec.name, "size", ()))
            elif spec.function == "avg":
                pair = (
                    partial_slot("sum", slot),
                    partial_slot("count", slot),
                )
                emitters.append((spec.name, "avg", pair))
            else:
                index = partial_slot(spec.function, slot)
                emitters.append((spec.name, "partial", (index,)))
        accumulators = [
            (AGGREGATE_ACCUMULATORS[function], slot)
            for function, slot in partial_keys
        ]

        def run() -> ColumnBatch:
            batch = child()
            arg_columns = [kernel(batch) for kernel in arg_kernels]
            # Phase 1: one pass over the grouping arrays assigns every row a
            # dense group id (group order = first encounter, matching the
            # row tiers' dict-insertion order).
            length = batch.length
            if not group_by:
                ngroups = 1
                group_ids: Any = repeat(0)
                sizes = [length]
                group_keys: Iterable[Any] = ()
            else:
                ids_of: dict[Any, int] = {}
                get_gid = ids_of.get
                group_ids = []
                append = group_ids.append
                if len(group_kernels) == 1:
                    keys_iter: Iterable[Any] = group_kernels[0](batch)
                else:
                    keys_iter = zip(*(kernel(batch) for kernel in group_kernels))
                for key in keys_iter:
                    gid = get_gid(key)
                    if gid is None:
                        gid = len(ids_of)
                        ids_of[key] = gid
                    append(gid)
                ngroups = len(ids_of)
                group_keys = ids_of
                if needs_sizes:
                    sizes = [0] * ngroups
                    for gid in group_ids:
                        sizes[gid] += 1
            # Phase 2: one single-pass accumulation per distinct partial.
            partials = [
                accumulate(arg_columns[slot], group_ids, ngroups)
                for accumulate, slot in accumulators
            ]
            # Phase 3: emit one output row per group.
            rows: list[Row] = []
            if not group_by:
                out: Row = {}
                for name, kind, indices in emitters:
                    if kind == "size":
                        out[name] = sizes[0]
                    elif kind == "avg":
                        out[name] = finalize_avg(
                            partials[indices[0]][0], partials[indices[1]][0]
                        )
                    else:
                        out[name] = partials[indices[0]][0]
                return _batch_from_rows([out])
            single_key = len(group_by) == 1
            only_column = group_by[0] if single_key else None
            for gid, key in enumerate(group_keys):
                out = {}
                if single_key:
                    out[only_column.name] = key
                    out[only_column.qualified_name] = key
                else:
                    for column, value in zip(group_by, key):
                        out[column.name] = value
                        out[column.qualified_name] = value
                for name, kind, indices in emitters:
                    if kind == "size":
                        out[name] = sizes[gid]
                    elif kind == "avg":
                        out[name] = finalize_avg(
                            partials[indices[0]][gid], partials[indices[1]][gid]
                        )
                    else:
                        out[name] = partials[indices[0]][gid]
                rows.append(out)
            return _batch_from_rows(rows)

        return run

    def _lower_sort(self, plan: algebra.Sort) -> Optional[BatchOp]:
        key_kernels = []
        for key in plan.keys:
            kernel = self._kernel(key.column)
            if kernel is None:
                return self._fallback("unknown_function")
            key_kernels.append(kernel)
        child = self._source(plan.child)
        keys = plan.keys

        def run() -> ColumnBatch:
            batch = child()
            if batch.length == 0:
                return batch
            positions = list(range(batch.length))
            # Sort by the last key first; stable sorts make earlier keys
            # take precedence, exactly like the row tiers.
            for key, kernel in zip(reversed(keys), reversed(key_kernels)):
                decorated = [_sort_key(v) for v in kernel(batch)]
                positions.sort(
                    key=decorated.__getitem__, reverse=not key.ascending
                )
            return batch.take(positions)

        return run

    def _lower_limit(self, plan: algebra.Limit) -> BatchOp:
        child = self._source(plan.child)
        count = plan.count

        def run() -> ColumnBatch:
            batch = child()
            if count >= batch.length:
                return batch
            return batch.take(list(range(count)))

        return run

    # -- late materialization --------------------------------------------

    def _materialize(self, batch: ColumnBatch) -> list[Row]:
        """Build the output row dicts — the only per-row dict work.

        The row constructor is code-generated per column layout: every
        distinct selection vector becomes one ``zip`` variable and every
        output key becomes one entry of a dict display (identity-selected
        columns are zipped directly; selected columns are subscripted once
        per distinct array and reused via assignment expressions).  The
        constructors are cached by layout, so steady-state queries pay a
        single comprehension per execution.
        """
        if batch.rows is not None:
            return batch.rows
        if batch.length == 0:
            return []
        if not batch.key_order:
            return [{} for _ in range(batch.length)]
        arrays: list[list] = []
        array_slots: dict[int, int] = {}
        zips: list[list] = []
        zip_slots: dict[int, int] = {}
        entries: list[tuple[str, int, int]] = []
        for key in batch.key_order:
            array, selection = batch.columns[key]
            if selection is None:
                slot = zip_slots.get(id(array))
                if slot is None:
                    slot = len(zips)
                    zips.append(array)
                    zip_slots[id(array)] = slot
                entries.append((key, -1, slot))
            else:
                zip_slot = zip_slots.get(id(selection))
                if zip_slot is None:
                    zip_slot = len(zips)
                    zips.append(selection)
                    zip_slots[id(selection)] = zip_slot
                array_slot = array_slots.get(id(array))
                if array_slot is None:
                    array_slot = len(arrays)
                    arrays.append(array)
                    array_slots[id(array)] = array_slot
                entries.append((key, array_slot, zip_slot))
        maker = self._row_maker(tuple(entries), len(arrays), len(zips))
        return maker(zip, *arrays, *zips)

    def _row_maker(
        self, entries: tuple[tuple[str, int, int], ...], narrays: int, nzips: int
    ) -> Callable:
        """The (cached) code-generated row constructor for one layout."""
        signature = (entries, narrays, nzips)
        maker = self._makers.get(signature)
        if maker is not None:
            self._makers.move_to_end(signature)
            return maker
        bound: dict[tuple[int, int], str] = {}
        items = []
        for key, array_slot, zip_slot in entries:
            if array_slot < 0:
                items.append(f"{key!r}: v{zip_slot}")
                continue
            pair = (array_slot, zip_slot)
            name = bound.get(pair)
            if name is None:
                name = f"w{array_slot}_{zip_slot}"
                bound[pair] = name
                items.append(f"{key!r}: ({name} := a{array_slot}[v{zip_slot}])")
            else:
                items.append(f"{key!r}: {name}")
        params = "".join(f"a{i}, " for i in range(narrays)) + ", ".join(
            f"z{i}" for i in range(nzips)
        )
        loop_vars = ", ".join(f"v{i}" for i in range(nzips))
        zip_args = ", ".join(f"z{i}" for i in range(nzips))
        source = (
            f"lambda _zip, {params}: "
            f"[{{{', '.join(items)}}} for ({loop_vars},) in _zip({zip_args})]"
        )
        maker = eval(source)  # noqa: S307 - internal codegen, keys repr-escaped
        if len(self._makers) >= 512:
            self._makers.popitem(last=False)
        self._makers[signature] = maker
        return maker
