"""Vectorized batch execution over columnar storage.

This is the engine's third execution tier (see :mod:`repro.db.executor` for
the compiled and interpreted row tiers).  Plans are lowered once into a
pipeline of *batch operators* flowing :class:`ColumnBatch` objects — bundles
of column value arrays plus a shared selection (row-index) vector — instead
of streams of per-row dictionaries:

* **Scans** wrap the table's lazy columnar view (:meth:`repro.db.table.
  Table.columns`) without copying anything: every column is the table's own
  value array with an identity selection.
* **Filters** evaluate predicate kernels (:meth:`repro.db.expressions.
  Expression.compile_batch`) over whole columns and *compose selection
  vectors*; no row is copied, and AND conjunctions shrink the selection
  stage by stage like the row tier's fused filter chain.
* **Hash joins** build and probe on key arrays and carry the match as a pair
  of (left positions, right positions); the joined batch merely re-points
  both sides' columns at the new selections.
* **Late materialization**: output row dictionaries are built only at the
  root of the operator tree, by a code-generated row constructor that turns
  the surviving selections into ``{key: value, ...}`` dict displays in a
  single comprehension — eliminating the per-operator dict construction that
  bounds the row tiers on full-width joins.

Operators or expressions outside the vectorizable subset fall back
*per-subtree* to the compiled tier: the subtree executes as rows, which are
adapted back into a batch for the vectorized ancestors.  Any error raised
during a vectorized run makes the owning :class:`~repro.db.executor.
Executor` re-run the whole plan on the compiled tier, so evaluation-order
and error semantics can never diverge from the row tiers; both tiers are
property-tested row-identical.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import repeat
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.db import algebra
from repro.db.executor import (
    ExecutionError,
    _equi_join_columns,
    _flatten_and,
    _sort_key,
    plan_aggregate_arguments,
)
from repro.db.expressions import BatchKernel, ColumnRef, Expression
from repro.db.table import Row


class BatchResolutionError(Exception):
    """A column reference did not resolve against a batch at run time.

    Raised inside batch kernels; the executor responds by re-running the
    plan on the compiled tier, which reproduces the row tiers' exact
    behaviour (a value via suffix fallback, or the user-visible error).
    """


#: A lowered batch operator: produces one ColumnBatch per execution.
BatchOp = Callable[[], "ColumnBatch"]


class _Unvectorizable:
    """Cached lowering failure: remembers *why* the plan fell back.

    Stored in the lowered-plan cache in place of a :data:`BatchOp`, so
    repeated executions of an unvectorizable shape keep counting the same
    fallback reason without re-deriving the failed lowering.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason


class ColumnBatch:
    """A columnar slice of intermediate results.

    ``columns`` maps output key (bare and ``alias.column`` qualified names,
    matching the row tiers' output layout) to ``(array, selection)`` where
    ``selection`` is a list of row indices into ``array`` — or ``None`` for
    the identity selection.  Distinct columns share selection *objects*, so
    operators that filter or join re-point many columns by rebuilding only
    one or two index vectors.  ``key_order`` fixes the materialized dict
    layout; ``rows`` optionally carries already-materialized row dicts
    (aggregate outputs, fallback subtrees) so the root does not rebuild
    them.
    """

    __slots__ = ("columns", "length", "key_order", "rows", "_gathered")

    def __init__(
        self,
        columns: dict[str, tuple[list, Optional[list[int]]]],
        length: int,
        key_order: tuple[str, ...],
        rows: Optional[list[Row]] = None,
    ) -> None:
        self.columns = columns
        self.length = length
        self.key_order = key_order
        self.rows = rows
        #: (id(array), id(selection)) -> gathered value list, memoized so
        #: several expressions over one column gather it once per batch.
        self._gathered: dict[tuple[int, int], list] = {}

    def values_for(self, name: str) -> list:
        """The value array of column ``name``, gathered through its selection."""
        array, selection = self.columns[name]
        if selection is None:
            return array
        key = (id(array), id(selection))
        gathered = self._gathered.get(key)
        if gathered is None:
            gathered = [array[i] for i in selection]
            self._gathered[key] = gathered
        return gathered

    def resolve(self, column: ColumnRef) -> Optional[str]:
        """Resolve a column reference to one of this batch's keys.

        Mirrors :meth:`ColumnRef.evaluate`: qualified key first, then the
        bare name, then a unique ``.name`` suffix match.  Returns ``None``
        when the reference is missing or ambiguous.
        """
        columns = self.columns
        if column.qualifier:
            qualified = f"{column.qualifier}.{column.name}"
            if qualified in columns:
                return qualified
        if column.name in columns:
            return column.name
        suffix = f".{column.name}"
        matches = [key for key in columns if key.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        return None

    def column_values(self, column: ColumnRef) -> list:
        """The value array for a column reference (the kernel entry point)."""
        name = self.resolve(column)
        if name is None:
            if self.length == 0:
                # No rows would ever be evaluated by the row tiers either.
                return []
            raise BatchResolutionError(column.qualified_name)
        return self.values_for(name)

    def take(self, positions: list[int]) -> "ColumnBatch":
        """A new batch selecting ``positions`` (batch-relative row indices).

        Selection vectors are composed per *distinct* selection object, not
        per column, so a filter over an N-column batch rebuilds one or two
        index lists and re-points every column at them.
        """
        rebuilt: dict[int, list[int]] = {}
        columns: dict[str, tuple[list, Optional[list[int]]]] = {}
        for name, (array, selection) in self.columns.items():
            cache_key = id(selection)
            new_selection = rebuilt.get(cache_key)
            if new_selection is None:
                if selection is None:
                    new_selection = positions
                else:
                    new_selection = [selection[p] for p in positions]
                rebuilt[cache_key] = new_selection
            columns[name] = (array, new_selection)
        rows = self.rows
        if rows is not None:
            rows = [rows[p] for p in positions]
        return ColumnBatch(columns, len(positions), self.key_order, rows)


def _empty_batch() -> ColumnBatch:
    return ColumnBatch({}, 0, ())


def gather_batches(batches: Sequence[ColumnBatch]) -> Optional[ColumnBatch]:
    """Concatenate per-shard batches into one batch (the gather node).

    Used by the sharding layer's scatter-gather execution: each shard runs
    the same lowered pipeline over its own columnar view, and the resulting
    batches are shipped to the gather node, which concatenates them in shard
    order so late materialization still happens exactly once, at the root.
    Returns ``None`` when the shard layouts disagree (the caller then falls
    back to gathering rows instead).
    """
    live = [batch for batch in batches if batch.length]
    if not live:
        return _empty_batch()
    if len(live) == 1:
        # One shard produced every surviving row (skewed filters are
        # common): its batch still points zero-copy at the shard's arrays.
        return live[0]
    key_order = live[0].key_order
    for batch in live[1:]:
        if batch.key_order != key_order:
            return None
    columns: dict[str, tuple[list, Optional[list[int]]]] = {}
    for key in key_order:
        values: list = []
        for batch in live:
            values.extend(batch.values_for(key))
        columns[key] = (values, None)
    rows: Optional[list[Row]] = None
    if all(batch.rows is not None for batch in live):
        rows = [row for batch in live for row in batch.rows]
    return ColumnBatch(columns, sum(batch.length for batch in live), key_order, rows)


# -- partial-aggregate / merge kernels -----------------------------------
#
# Grouped aggregation is computed in two phases that share these kernels:
# an *accumulate* phase folds a value column into one partial state per
# group in a single pass (used by the vectorized aggregate operator below),
# and a *merge* phase combines partial states computed independently (used
# by the sharding layer's gather node to merge per-shard partial
# aggregates).  ``avg`` is decomposed into sum + count partials and
# finalized with :func:`finalize_avg`, so the merge table only needs the
# four primitive functions.


def _accumulate_count(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    counts = [0] * ngroups
    for gid, value in zip(group_ids, values):
        if value is not None:
            counts[gid] += 1
    return counts


def _accumulate_sum(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    sums: list = [None] * ngroups
    for gid, value in zip(group_ids, values):
        if value is None:
            continue
        state = sums[gid]
        # Seed with 0 + value, exactly like the row tiers' sum(): a
        # non-numeric value must raise here so the kernel-error fallback
        # reproduces the row-tier TypeError instead of silently summing.
        sums[gid] = 0 + value if state is None else state + value
    return sums


def _accumulate_min(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    mins: list = [None] * ngroups
    for gid, value in zip(group_ids, values):
        if value is None:
            continue
        state = mins[gid]
        if state is None or value < state:
            mins[gid] = value
    return mins


def _accumulate_max(values: Sequence, group_ids: Sequence[int], ngroups: int) -> list:
    maxs: list = [None] * ngroups
    for gid, value in zip(group_ids, values):
        if value is None:
            continue
        state = maxs[gid]
        if state is None or value > state:
            maxs[gid] = value
    return maxs


#: function -> single-pass per-group accumulation kernel.
AGGREGATE_ACCUMULATORS = {
    "count": _accumulate_count,
    "sum": _accumulate_sum,
    "min": _accumulate_min,
    "max": _accumulate_max,
}


def _merge_count(a, b):
    return a + b


def _merge_sum(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a + b


def _merge_min(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return b if b < a else a


def _merge_max(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return b if b > a else a


#: function -> merge of two independently-computed partial states.
AGGREGATE_MERGERS = {
    "count": _merge_count,
    "sum": _merge_sum,
    "min": _merge_min,
    "max": _merge_max,
}


def finalize_avg(partial_sum, partial_count):
    """Finalize an ``avg`` decomposed into sum + count partial states."""
    if not partial_count:
        return None
    return partial_sum / partial_count


def _batch_from_rows(rows: list[Row]) -> ColumnBatch:
    """Adapt row-tier output (a fallback subtree) into a column batch."""
    if not rows:
        return _empty_batch()
    keys = tuple(rows[0])
    columns: dict[str, tuple[list, Optional[list[int]]]] = {
        key: ([row[key] for row in rows], None) for key in keys
    }
    return ColumnBatch(columns, len(rows), keys, rows)


def _hash_join_positions(
    probe_values: Sequence, build_values: Sequence
) -> tuple[Optional[list[int]], list[int]]:
    """Matching (probe, build) position pairs of an equi join.

    Returns ``(probe_positions, build_positions)``; a ``None`` probe side
    means the identity selection (every probe row matched exactly once, in
    order).  NULL keys never match, mirroring the row tiers.  The common
    unique-build-key case (foreign key to primary key) probes through one
    C-level ``map`` over the build table instead of a Python loop.
    """
    build_count = len(build_values)
    unique = dict(zip(build_values, range(build_count)))
    if len(unique) == build_count and None not in unique:
        build_positions = list(map(unique.get, probe_values))
        if None in build_positions:
            probe_positions = [
                i for i, b in enumerate(build_positions) if b is not None
            ]
            build_positions = [build_positions[i] for i in probe_positions]
            return probe_positions, build_positions
        return None, build_positions
    # Duplicate (or NULL) build keys: classic bucket build and probe.
    buckets: dict[Any, list[int]] = {}
    for position, key in enumerate(build_values):
        if key is None:
            continue
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [position]
        else:
            bucket.append(position)
    probe_out: list[int] = []
    build_out: list[int] = []
    append_probe = probe_out.append
    append_build = build_out.append
    for position, key in enumerate(probe_values):
        if key is None:
            continue
        bucket = buckets.get(key)
        if bucket is None:
            continue
        if len(bucket) == 1:
            append_probe(position)
            append_build(bucket[0])
        else:
            probe_out.extend([position] * len(bucket))
            build_out.extend(bucket)
    return probe_out, build_out


class VectorizedExecutor:
    """Lowers algebra plans to batch pipelines and runs them.

    Owned by an :class:`~repro.db.executor.Executor` in ``vectorized`` mode.
    Lowered pipelines are cached in an LRU keyed by the plan object, so a
    prepared statement's slot-compiled template re-executes with zero
    lowering work; the cache is dropped on DDL together with the executor's
    resolver-context closures.
    """

    #: Lowered-plan cache entries kept before LRU eviction.
    OP_CACHE_LIMIT = 256

    def __init__(self, executor) -> None:
        self._executor = executor
        self._tables = executor._tables
        #: plan -> lowered BatchOp (or the unvectorizable sentinel), LRU.
        self._ops: OrderedDict[algebra.PlanNode, BatchOp] = OrderedDict()
        #: materializer-layout signature -> code-generated row constructor,
        #: LRU-evicted like the executor's compile caches.
        self._makers: OrderedDict[tuple, Callable] = OrderedDict()
        #: queries served entirely by this tier.
        self.executions = 0
        #: queries that bailed to the compiled tier (no lowering, or a
        #: kernel raised at run time).
        self.fallbacks = 0
        #: subtrees executed on the compiled tier inside a vectorized run.
        self.subtree_fallbacks = 0
        #: fallback reason -> count, across whole-plan and subtree
        #: fallbacks: ``theta_join`` (non-equi join condition),
        #: ``unknown_function`` (an expression with no batch kernel —
        #: unknown scalar functions and foreign expression types),
        #: ``unsupported_operator`` (a plan node outside the vectorized
        #: subset), ``kernel_error`` (a kernel raised at run time).
        self.fallback_reasons: dict[str, int] = {}
        #: reason of the most recent lowering failure (set by _lower).
        self._last_reason = "unsupported_operator"
        #: reason behind the most recent try_execute fallback; ``None``
        #: after a vectorized success.  Read by the executor's per-call
        #: tier markers (tracing / EXPLAIN).
        self.last_fallback_reason: Optional[str] = None

    # -- public API ------------------------------------------------------

    def try_execute(self, plan: algebra.PlanNode) -> Optional[list[Row]]:
        """Execute ``plan`` vectorized, or return ``None`` to fall back.

        Any exception other than :class:`~repro.db.executor.ExecutionError`
        (which the row tiers raise identically, e.g. for unknown tables)
        aborts the vectorized attempt; the caller re-runs the plan on the
        compiled tier, which reproduces genuine user-visible errors with
        row-tier semantics.
        """
        op = self._op(plan)
        if op is None:
            self.fallbacks += 1
            self.last_fallback_reason = self._last_reason
            self._count_reason(self._last_reason)
            return None
        try:
            batch = op()
            rows = self._materialize(batch)
        except ExecutionError:
            raise
        except Exception:
            self.fallbacks += 1
            self.last_fallback_reason = "kernel_error"
            self._count_reason("kernel_error")
            return None
        self.executions += 1
        self.last_fallback_reason = None
        return rows

    def invalidate(self) -> None:
        """Drop every cached lowered pipeline (call on DDL)."""
        self._ops.clear()

    # -- lowering --------------------------------------------------------

    def _count_reason(self, reason: str) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    def _fallback(self, reason: str) -> None:
        """Record why the current lowering failed; returns ``None``."""
        self._last_reason = reason
        return None

    def _op(self, plan: algebra.PlanNode) -> Optional[BatchOp]:
        """The cached lowering of ``plan`` (None when unvectorizable)."""
        try:
            cached = self._ops.get(plan)
        except TypeError:  # unhashable literal buried in the plan
            return self._lower(plan)
        if cached is None:
            op = self._lower(plan)
            if len(self._ops) >= self.OP_CACHE_LIMIT:
                self._ops.popitem(last=False)
            self._ops[plan] = (
                op if op is not None else _Unvectorizable(self._last_reason)
            )
            return op
        self._ops.move_to_end(plan)
        if isinstance(cached, _Unvectorizable):
            self._last_reason = cached.reason
            return None
        return cached

    def _lower(self, plan: algebra.PlanNode) -> Optional[BatchOp]:
        if isinstance(plan, algebra.Scan):
            return self._lower_scan(plan)
        if isinstance(plan, algebra.Select):
            return self._lower_select(plan)
        if isinstance(plan, algebra.Project):
            return self._lower_project(plan)
        if isinstance(plan, algebra.Join):
            return self._lower_join(plan)
        if isinstance(plan, algebra.Aggregate):
            return self._lower_aggregate(plan)
        if isinstance(plan, algebra.Sort):
            return self._lower_sort(plan)
        if isinstance(plan, algebra.Limit):
            return self._lower_limit(plan)
        return self._fallback("unsupported_operator")

    def _source(self, plan: algebra.PlanNode) -> BatchOp:
        """The lowering of a child plan, with per-subtree fallback.

        A child outside the vectorizable subset executes on the compiled
        tier and its rows are adapted into a batch, so one unsupported
        operator or expression does not force the whole query off the
        vectorized path.
        """
        op = self._op(plan)
        if op is not None:
            return op
        reason = self._last_reason
        executor = self._executor

        def run() -> ColumnBatch:
            self.subtree_fallbacks += 1
            self._count_reason(reason)
            return _batch_from_rows(list(executor._execute(plan)))

        return run

    def _kernel(self, expression: Expression) -> Optional[BatchKernel]:
        return expression.compile_batch(self._resolve_column)

    def _resolve_column(self, column: ColumnRef) -> BatchKernel:
        """The batch resolver: columns resolve dynamically per batch."""

        def kernel(batch: ColumnBatch) -> list:
            return batch.column_values(column)

        return kernel

    # -- operators -------------------------------------------------------

    def _lower_scan(self, plan: algebra.Scan) -> BatchOp:
        tables = self._tables
        name = plan.table
        alias = plan.effective_alias

        def run() -> ColumnBatch:
            table = tables.get(name)
            if table is None:
                raise ExecutionError(f"unknown table {name!r}")
            store = table.columns()
            columns: dict[str, tuple[list, Optional[list[int]]]] = {}
            for column, array in store.items():
                columns[column] = (array, None)
            for column, array in store.items():
                columns[f"{alias}.{column}"] = (array, None)
            key_order = tuple(store) + tuple(
                f"{alias}.{column}" for column in store
            )
            return ColumnBatch(columns, len(table.rows), key_order)

        return run

    def _lower_select(self, plan: algebra.Select) -> Optional[BatchOp]:
        kernels = []
        for conjunct in _flatten_and(plan.predicate):
            kernel = self._kernel(conjunct)
            if kernel is None:
                return self._fallback("unknown_function")
            kernels.append(kernel)
        child = self._source(plan.child)

        def run() -> ColumnBatch:
            batch = child()
            # Conjuncts shrink the selection stage by stage: each kernel
            # only sees rows that survived the previous conjunct, which is
            # the batch equivalent of the row tiers' short-circuit AND.
            for kernel in kernels:
                if batch.length == 0:
                    return batch
                values = kernel(batch)
                keep = [i for i, v in enumerate(values) if v]
                if len(keep) != batch.length:
                    batch = batch.take(keep)
            return batch

        return run

    def _lower_project(self, plan: algebra.Project) -> Optional[BatchOp]:
        outputs = []
        for output in plan.outputs:
            kernel = self._kernel(output.expression)
            if kernel is None:
                return self._fallback("unknown_function")
            outputs.append((output.name, kernel))
        child = self._source(plan.child)
        key_order = tuple(name for name, _ in outputs)

        def run() -> ColumnBatch:
            batch = child()
            columns: dict[str, tuple[list, Optional[list[int]]]] = {}
            for name, kernel in outputs:
                columns[name] = (kernel(batch), None)
            return ColumnBatch(columns, batch.length, key_order)

        return run

    def _lower_join(self, plan: algebra.Join) -> Optional[BatchOp]:
        equi = _equi_join_columns(plan.condition)
        if equi is None:
            # Theta and cross joins stay on the row tiers.
            return self._fallback("theta_join")
        left_col, right_col = equi
        left_source = self._source(plan.left)
        right_source = self._source(plan.right)
        right_plan = plan.right
        tables = self._tables
        # For a join of two bare scans the matching positions are a pure
        # function of the two tables' contents, so the computed selection
        # pair is memoized against their versions — a join index in the
        # spirit of Table.index_for, letting repeated executions skip the
        # probe entirely.  Filtered or parameterized inputs are excluded
        # (their batches depend on more than the table versions).
        cacheable = isinstance(plan.left, algebra.Scan) and isinstance(
            plan.right, algebra.Scan
        )
        selection_cache: dict[tuple, tuple] = {}

        def run() -> ColumnBatch:
            left_batch = left_source()
            if left_batch.length == 0:
                # Empty probe side: never execute or build the right side,
                # but still validate its table references (row-tier rule).
                for scan in algebra.find_scans(right_plan):
                    if scan.table not in tables:
                        raise ExecutionError(f"unknown table {scan.table!r}")
                return _empty_batch()
            right_batch = right_source()
            probe_name = left_batch.resolve(left_col)
            build_name = right_batch.resolve(right_col)
            if probe_name is None or build_name is None:
                # The condition may name the sides right-to-left.
                probe_name = left_batch.resolve(right_col)
                build_name = right_batch.resolve(left_col)
            if probe_name is None or build_name is None:
                # Neither orientation resolves; let the row tier decide
                # (it matches nothing, or raises on ambiguity).
                raise BatchResolutionError(
                    f"{left_col.qualified_name} = {right_col.qualified_name}"
                )
            if cacheable:
                left_table = tables[plan.left.table]
                right_table = tables[plan.right.table]
                stamp = (
                    probe_name,
                    build_name,
                    id(left_table),
                    left_table.version,
                    id(right_table),
                    right_table.version,
                )
                cached = selection_cache.get(stamp)
                if cached is None:
                    cached = _hash_join_positions(
                        left_batch.values_for(probe_name),
                        right_batch.values_for(build_name),
                    )
                    selection_cache.clear()
                    selection_cache[stamp] = cached
                probe_positions, build_positions = cached
            else:
                probe_positions, build_positions = _hash_join_positions(
                    left_batch.values_for(probe_name),
                    right_batch.values_for(build_name),
                )
            taken_right = right_batch.take(build_positions)
            if probe_positions is None:
                left_columns = left_batch.columns
            else:
                left_columns = left_batch.take(probe_positions).columns
            # Merge like _merge_rows: right keys first, left overwrites
            # colliding bare names (qualified keys never collide).
            columns = dict(taken_right.columns)
            columns.update(left_columns)
            key_order = taken_right.key_order + tuple(
                key
                for key in left_batch.key_order
                if key not in taken_right.columns
            )
            return ColumnBatch(columns, len(build_positions), key_order)

        return run

    def _lower_aggregate(self, plan: algebra.Aggregate) -> Optional[BatchOp]:
        group_kernels = []
        for column in plan.group_by:
            kernel = self._kernel(column)
            if kernel is None:
                return self._fallback("unknown_function")
            group_kernels.append(kernel)
        # Aggregates often share their argument (sum(x) next to avg(x)):
        # evaluate each distinct argument column once per batch.
        planned = plan_aggregate_arguments(plan.aggregates, self._kernel)
        if planned is None:
            return self._fallback("unknown_function")
        arg_kernels, spec_slots = planned
        child = self._source(plan.child)
        group_by = plan.group_by
        # Each output spec maps onto one or two *partial-aggregate kernels*
        # over its argument slot (avg decomposes into sum + count); distinct
        # (function, slot) partials are accumulated once even when several
        # specs share them.  The same kernels back the sharding layer's
        # per-shard partial aggregation (merged by AGGREGATE_MERGERS at the
        # gather node).
        partial_keys: list[tuple[str, int]] = []
        partial_index: dict[tuple[str, int], int] = {}

        def partial_slot(function: str, slot: int) -> int:
            key = (function, slot)
            index = partial_index.get(key)
            if index is None:
                index = len(partial_keys)
                partial_index[key] = index
                partial_keys.append(key)
            return index

        #: (spec name, emit kind, partial indices) per output spec, where
        #: kind is "size" (count(*)), "avg" (sum+count pair), or "partial".
        emitters: list[tuple[str, str, tuple[int, ...]]] = []
        needs_sizes = False
        for spec, slot in spec_slots:
            if slot is None:  # count(*): group sizes, no argument column
                needs_sizes = True
                emitters.append((spec.name, "size", ()))
            elif spec.function == "avg":
                pair = (
                    partial_slot("sum", slot),
                    partial_slot("count", slot),
                )
                emitters.append((spec.name, "avg", pair))
            else:
                index = partial_slot(spec.function, slot)
                emitters.append((spec.name, "partial", (index,)))
        accumulators = [
            (AGGREGATE_ACCUMULATORS[function], slot)
            for function, slot in partial_keys
        ]

        def run() -> ColumnBatch:
            batch = child()
            arg_columns = [kernel(batch) for kernel in arg_kernels]
            # Phase 1: one pass over the grouping arrays assigns every row a
            # dense group id (group order = first encounter, matching the
            # row tiers' dict-insertion order).
            length = batch.length
            if not group_by:
                ngroups = 1
                group_ids: Any = repeat(0)
                sizes = [length]
                group_keys: Iterable[Any] = ()
            else:
                ids_of: dict[Any, int] = {}
                get_gid = ids_of.get
                group_ids = []
                append = group_ids.append
                if len(group_kernels) == 1:
                    keys_iter: Iterable[Any] = group_kernels[0](batch)
                else:
                    keys_iter = zip(*(kernel(batch) for kernel in group_kernels))
                for key in keys_iter:
                    gid = get_gid(key)
                    if gid is None:
                        gid = len(ids_of)
                        ids_of[key] = gid
                    append(gid)
                ngroups = len(ids_of)
                group_keys = ids_of
                if needs_sizes:
                    sizes = [0] * ngroups
                    for gid in group_ids:
                        sizes[gid] += 1
            # Phase 2: one single-pass accumulation per distinct partial.
            partials = [
                accumulate(arg_columns[slot], group_ids, ngroups)
                for accumulate, slot in accumulators
            ]
            # Phase 3: emit one output row per group.
            rows: list[Row] = []
            if not group_by:
                out: Row = {}
                for name, kind, indices in emitters:
                    if kind == "size":
                        out[name] = sizes[0]
                    elif kind == "avg":
                        out[name] = finalize_avg(
                            partials[indices[0]][0], partials[indices[1]][0]
                        )
                    else:
                        out[name] = partials[indices[0]][0]
                return _batch_from_rows([out])
            single_key = len(group_by) == 1
            only_column = group_by[0] if single_key else None
            for gid, key in enumerate(group_keys):
                out = {}
                if single_key:
                    out[only_column.name] = key
                    out[only_column.qualified_name] = key
                else:
                    for column, value in zip(group_by, key):
                        out[column.name] = value
                        out[column.qualified_name] = value
                for name, kind, indices in emitters:
                    if kind == "size":
                        out[name] = sizes[gid]
                    elif kind == "avg":
                        out[name] = finalize_avg(
                            partials[indices[0]][gid], partials[indices[1]][gid]
                        )
                    else:
                        out[name] = partials[indices[0]][gid]
                rows.append(out)
            return _batch_from_rows(rows)

        return run

    def _lower_sort(self, plan: algebra.Sort) -> Optional[BatchOp]:
        key_kernels = []
        for key in plan.keys:
            kernel = self._kernel(key.column)
            if kernel is None:
                return self._fallback("unknown_function")
            key_kernels.append(kernel)
        child = self._source(plan.child)
        keys = plan.keys

        def run() -> ColumnBatch:
            batch = child()
            if batch.length == 0:
                return batch
            positions = list(range(batch.length))
            # Sort by the last key first; stable sorts make earlier keys
            # take precedence, exactly like the row tiers.
            for key, kernel in zip(reversed(keys), reversed(key_kernels)):
                decorated = [_sort_key(v) for v in kernel(batch)]
                positions.sort(
                    key=decorated.__getitem__, reverse=not key.ascending
                )
            return batch.take(positions)

        return run

    def _lower_limit(self, plan: algebra.Limit) -> BatchOp:
        child = self._source(plan.child)
        count = plan.count

        def run() -> ColumnBatch:
            batch = child()
            if count >= batch.length:
                return batch
            return batch.take(list(range(count)))

        return run

    # -- late materialization --------------------------------------------

    def _materialize(self, batch: ColumnBatch) -> list[Row]:
        """Build the output row dicts — the only per-row dict work.

        The row constructor is code-generated per column layout: every
        distinct selection vector becomes one ``zip`` variable and every
        output key becomes one entry of a dict display (identity-selected
        columns are zipped directly; selected columns are subscripted once
        per distinct array and reused via assignment expressions).  The
        constructors are cached by layout, so steady-state queries pay a
        single comprehension per execution.
        """
        if batch.rows is not None:
            return batch.rows
        if batch.length == 0:
            return []
        if not batch.key_order:
            return [{} for _ in range(batch.length)]
        arrays: list[list] = []
        array_slots: dict[int, int] = {}
        zips: list[list] = []
        zip_slots: dict[int, int] = {}
        entries: list[tuple[str, int, int]] = []
        for key in batch.key_order:
            array, selection = batch.columns[key]
            if selection is None:
                slot = zip_slots.get(id(array))
                if slot is None:
                    slot = len(zips)
                    zips.append(array)
                    zip_slots[id(array)] = slot
                entries.append((key, -1, slot))
            else:
                zip_slot = zip_slots.get(id(selection))
                if zip_slot is None:
                    zip_slot = len(zips)
                    zips.append(selection)
                    zip_slots[id(selection)] = zip_slot
                array_slot = array_slots.get(id(array))
                if array_slot is None:
                    array_slot = len(arrays)
                    arrays.append(array)
                    array_slots[id(array)] = array_slot
                entries.append((key, array_slot, zip_slot))
        maker = self._row_maker(tuple(entries), len(arrays), len(zips))
        return maker(zip, *arrays, *zips)

    def _row_maker(
        self, entries: tuple[tuple[str, int, int], ...], narrays: int, nzips: int
    ) -> Callable:
        """The (cached) code-generated row constructor for one layout."""
        signature = (entries, narrays, nzips)
        maker = self._makers.get(signature)
        if maker is not None:
            self._makers.move_to_end(signature)
            return maker
        bound: dict[tuple[int, int], str] = {}
        items = []
        for key, array_slot, zip_slot in entries:
            if array_slot < 0:
                items.append(f"{key!r}: v{zip_slot}")
                continue
            pair = (array_slot, zip_slot)
            name = bound.get(pair)
            if name is None:
                name = f"w{array_slot}_{zip_slot}"
                bound[pair] = name
                items.append(f"{key!r}: ({name} := a{array_slot}[v{zip_slot}])")
            else:
                items.append(f"{key!r}: {name}")
        params = "".join(f"a{i}, " for i in range(narrays)) + ", ".join(
            f"z{i}" for i in range(nzips)
        )
        loop_vars = ", ".join(f"v{i}" for i in range(nzips))
        zip_args = ", ".join(f"z{i}" for i in range(nzips))
        source = (
            f"lambda _zip, {params}: "
            f"[{{{', '.join(items)}}} for ({loop_vars},) in _zip({zip_args})]"
        )
        maker = eval(source)  # noqa: S307 - internal codegen, keys repr-escaped
        if len(self._makers) >= 512:
            self._makers.popitem(last=False)
        self._makers[signature] = maker
        return maker
