"""Row storage for the in-memory database engine.

Rows are stored as plain dictionaries mapping column name to value.  A
:class:`Table` owns its schema, validates inserted rows, and maintains an
optional hash index on the primary key for point lookups (used by the ORM
substrate for lazy loads and by the executor for indexed joins).

Beyond the primary-key index, tables maintain *lazy secondary hash indexes*
(:meth:`Table.index_for`) mapping a column value to the list of rows holding
it, and cache per-column distinct counts.  Both are built on first use and
invalidated whenever the table mutates (insert, update, clear), tracked by a
monotonically increasing :attr:`Table.version`.  The executor uses secondary
indexes for index-nested-loop joins and hash-join build sides; the statistics
catalog uses the cached distinct counts.

Tables also expose a *columnar view* (:meth:`Table.columns`): one value list
per column, aligned by row position.  Like the secondary indexes it is built
lazily on first use and rebuilt when :attr:`Table.version` moves, so the
row dicts remain the single mutation/validation surface while the vectorized
executor (:mod:`repro.db.vectorized`) scans whole columns without touching
per-row dictionaries.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, Optional

from repro.db.schema import SchemaError, TableSchema

Row = dict

#: storage modes for the columnar view, from least to most encoded:
#: ``boxed`` keeps plain value lists, ``typed`` adds ``array('q')`` /
#: ``array('d')`` sidecars for int/float columns, ``dictionary`` (the
#: default) additionally dictionary-encodes string columns.
STORAGE_MODES = ("boxed", "typed", "dictionary")


class ColumnData(list):
    """One column of the columnar view: boxed values plus typed sidecars.

    Subclasses ``list`` so every existing consumer (batch kernels, gathers,
    ``zip``-based materialization) keeps working on the boxed values at zero
    adapter cost; the typed representation rides along in slots:

    - ``encoding``: ``"boxed"``, ``"int64"``, ``"float64"``, or ``"dict"``.
    - ``typed``: ``array('q')`` / ``array('d')`` of the non-null values
      (nulls stored as 0/0.0 — consult ``nulls``), or ``None`` when boxed.
    - ``nulls``: little-endian null bitmap ``bytearray`` (bit *i* set means
      row *i* is NULL), or ``None`` when the column contains no nulls.
    - ``dictionary`` / ``codes`` / ``code_of``: for ``"dict"`` encoding,
      the value dictionary (code -> string), the per-row code array
      (``array('q')``, ``-1`` for NULL), and the string -> code map used to
      translate filter literals once per pipeline.
    """

    __slots__ = ("encoding", "typed", "nulls", "dictionary", "codes", "code_of")

    def __init__(self, values=()):  # noqa: D107 - documented on the class
        super().__init__(values)
        self.encoding = "boxed"
        self.typed = None
        self.nulls = None
        self.dictionary = None
        self.codes = None
        self.code_of = None


def _null_bitmap(values: list) -> Optional[bytearray]:
    """Little-endian null bitmap for ``values``; ``None`` if no nulls."""
    bits: Optional[bytearray] = None
    for position, value in enumerate(values):
        if value is None:
            if bits is None:
                bits = bytearray((len(values) + 7) // 8)
            bits[position >> 3] |= 1 << (position & 7)
    return bits


def encode_column(values: list, mode: str) -> ColumnData:
    """Build one :class:`ColumnData`, inferring the physical representation.

    A column is typed only when every non-null value is exactly one of
    ``int`` / ``float`` / ``str`` (``bool`` stays boxed: it is a distinct
    type and must round-trip unchanged).  Anything mixed, empty, or
    surprising (e.g. ints too wide for 64 bits) falls back to the boxed
    list, which is always present and always authoritative.
    """
    data = ColumnData(values)
    if mode == "boxed" or not values:
        return data
    kinds = set(map(type, data))
    has_null = type(None) in kinds
    kinds.discard(type(None))
    if len(kinds) != 1:
        return data
    kind = next(iter(kinds))
    if kind is int:
        try:
            data.typed = array(
                "q", (0 if v is None else v for v in data) if has_null else data
            )
        except OverflowError:
            return data
        data.encoding = "int64"
    elif kind is float:
        data.typed = array(
            "d", (0.0 if v is None else v for v in data) if has_null else data
        )
        data.encoding = "float64"
    elif kind is str and mode == "dictionary":
        code_of: dict[str, int] = {}
        codes = array("q")
        append = codes.append
        for value in data:
            if value is None:
                append(-1)
            else:
                code = code_of.get(value)
                if code is None:
                    code = len(code_of)
                    code_of[value] = code
                append(code)
        data.encoding = "dict"
        data.codes = codes
        data.code_of = code_of
        data.dictionary = list(code_of)
    else:
        return data
    if has_null:
        data.nulls = _null_bitmap(data)
    return data


def _slice_nulls(
    nulls: Optional[bytearray], start: int, stop: int
) -> Optional[bytes]:
    """The ``[start, stop)`` bit range of a null bitmap, rebased to bit 0.

    Byte-aligned slices are cut straight out of the buffer; unaligned
    starts rebuild the bits (rare: partition views are whole-column in
    practice).  Returns ``None`` when no bit in the range is set.
    """
    if nulls is None:
        return None
    if start & 7 == 0:
        chunk = bytes(nulls[start >> 3 : (stop + 7) >> 3])
        return chunk if any(chunk) else None
    rebased = bytearray((stop - start + 7) // 8)
    any_set = False
    for position in range(start, stop):
        if nulls[position >> 3] & (1 << (position & 7)):
            rebased[(position - start) >> 3] |= 1 << ((position - start) & 7)
            any_set = True
    return bytes(rebased) if any_set else None


def pack_column(data, start: int = 0, stop: Optional[int] = None) -> tuple:
    """A compact, picklable payload for one column (or a slice of it).

    Typed (``int64`` / ``float64``) and dictionary columns are packed as
    raw buffer bytes extracted through ``memoryview`` slices of their
    ``array`` sidecars — a zero-copy view of the partition range, never an
    intermediate boxed list — plus the matching null-bitmap slice.  Boxed
    columns keep the list path (their values carry no buffer form).  The
    payload round-trips through :func:`unpack_column`.
    """
    if stop is None:
        stop = len(data)
    encoding = getattr(data, "encoding", "boxed")
    if encoding in ("int64", "float64"):
        view = memoryview(data.typed)[start:stop]
        return (
            encoding,
            stop - start,
            view.tobytes(),
            _slice_nulls(data.nulls, start, stop),
            None,
        )
    if encoding == "dict":
        view = memoryview(data.codes)[start:stop]
        return ("dict", stop - start, view.tobytes(), None, data.dictionary)
    return ("boxed", stop - start, list(data[start:stop]), None, None)


def unpack_column(payload: tuple) -> ColumnData:
    """Rebuild a :class:`ColumnData` from a :func:`pack_column` payload.

    The boxed list is refilled from the typed buffer at C speed (list over
    an ``array``, or a dictionary decode over the code array), so the
    receiver gets the same dual boxed + typed representation
    :func:`encode_column` builds — without re-running type inference.
    """
    encoding, length, buffer, nulls, dictionary = payload
    if encoding == "boxed":
        return ColumnData(buffer)
    if encoding == "dict":
        codes = array("q")
        codes.frombytes(buffer)
        code_of: dict[str, int] = {
            value: code for code, value in enumerate(dictionary)
        }
        data = ColumnData(
            None if code < 0 else dictionary[code] for code in codes
        )
        data.encoding = "dict"
        data.codes = codes
        data.code_of = code_of
        data.dictionary = list(dictionary)
        return data
    typed = array("q" if encoding == "int64" else "d")
    typed.frombytes(buffer)
    data = ColumnData(typed)
    data.encoding = encoding
    data.typed = typed
    if nulls is not None:
        bitmap = bytearray(nulls)
        data.nulls = bitmap
        for position in range(length):
            if bitmap[position >> 3] & (1 << (position & 7)):
                data[position] = None
    return data


class Table:
    """An in-memory table: a schema plus a list of rows."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[Row] = []
        self._pk_index: Optional[dict[Any, Row]] = (
            {} if schema.primary_key else None
        )
        #: column name -> {value: [rows]} lazy secondary indexes.
        self._indexes: dict[str, dict[Any, list[Row]]] = {}
        #: column name -> cached distinct non-null value count.
        self._distinct_cache: dict[str, int] = {}
        #: cached columnar view (column name -> :class:`ColumnData`) and the
        #: table version it was built against; rebuilt lazily when stale.
        self._columnar: Optional[dict[str, ColumnData]] = None
        self._columnar_version: int = -1
        #: physical representation picked on columnar rebuild; see
        #: :data:`STORAGE_MODES` and :meth:`set_storage_mode`.
        self._storage_mode: str = "dictionary"
        #: alias -> cached full-width output rows (bare + qualified keys)
        #: for that scan alias, plus the version they were built against.
        self._wide_rows: dict[str, list[Row]] = {}
        self._wide_version: int = -1
        #: bumped on every mutation; external caches may key on this.
        self.version: int = 0

    # -- mutation --------------------------------------------------------

    def prepare_row(self, row: Row) -> Row:
        """Validate and normalise one incoming row **without storing it**.

        Missing columns are filled with ``None``; unknown columns raise
        :class:`SchemaError`.  Returns the normalised stored-form dict —
        the write-ahead log records this form *before* it is applied, so a
        replayed insert reproduces the stored row exactly.
        """
        stored: Row = {}
        for column in self.schema.columns:
            stored[column.name] = row.get(column.name)
        unknown = set(row) - set(stored)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)} for table "
                f"{self.schema.name!r}"
            )
        return stored

    def insert_stored(self, stored: Row) -> Row:
        """Store an already-normalised row produced by :meth:`prepare_row`.

        Subclasses hook here for additional filing (the sharded table files
        the stored dict into its home partition as well).
        """
        self.rows.append(stored)
        if self._pk_index is not None:
            key = stored[self.schema.primary_key]
            self._pk_index[key] = stored
        self._invalidate_caches()
        return stored

    def insert(self, row: Row) -> Row:
        """Insert one row (a mapping of column name to value).

        Missing columns are filled with ``None``; unknown columns raise
        :class:`SchemaError`.  Returns the stored row dict.
        """
        return self.insert_stored(self.prepare_row(row))

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def adopt_row(self, stored: Row) -> Row:
        """Append an already-validated stored row dict *by reference*.

        Used by :class:`repro.db.sharding.ShardedTable` to file one stored
        dict both in its aggregate view and in the owning shard partition, so
        in-place updates are visible through every view without copying.  The
        caller is responsible for having validated ``stored`` against this
        table's schema (shard partitions share the parent's schema).
        """
        self.rows.append(stored)
        if self._pk_index is not None:
            self._pk_index[stored[self.schema.primary_key]] = stored
        self._invalidate_caches()
        return stored

    def clear(self) -> None:
        """Remove all rows."""
        self.rows.clear()
        if self._pk_index is not None:
            self._pk_index.clear()
        self._invalidate_caches()

    def plan_update(
        self, predicate, assignments: dict
    ) -> list[tuple[int, Row, dict]]:
        """Phase one of an update: compute every change **without mutating**.

        Evaluates ``predicate`` and the assignment expressions against every
        row's pre-statement state and returns ``(position, row, new_values)``
        triples for the rows that match.  Any error — an unknown column, a
        predicate or assignment callable raising mid-scan — surfaces here,
        *before* anything has been written, which is what makes UPDATE
        statements atomic: a failed statement leaves the table untouched.

        Because nothing is applied during this phase, every row naturally
        sees the pre-update state — SQL's simultaneous-assignment semantics
        (``set a = b, b = a`` swaps the columns) fall out without
        snapshotting.  The positions index into :attr:`rows` and are what
        the write-ahead log records (inserts are append-only, so positions
        are stable under replay).
        """
        for column in assignments:
            if not self.schema.has_column(column):
                raise SchemaError(
                    f"unknown column {column!r} in update on table "
                    f"{self.schema.name!r}"
                )
        planned: list[tuple[int, Row, dict]] = []
        for position, row in enumerate(self.rows):
            if not predicate(row):
                continue
            new_values = {
                column: (value(row) if callable(value) else value)
                for column, value in assignments.items()
            }
            planned.append((position, row, new_values))
        return planned

    def apply_update(self, changes: Iterable[tuple[Row, dict]]) -> int:
        """Phase two of an update: apply precomputed ``(row, new_values)``.

        The values were computed (and validated) by :meth:`plan_update`, so
        application cannot fail; primary-key moves are re-indexed exactly as
        before.  Also used in reverse by transaction rollback (applying the
        before-images) and by WAL replay (via :meth:`apply_update_at`).
        """
        primary_key = self.schema.primary_key
        updated = 0
        for row, new_values in changes:
            old_key = row[primary_key] if primary_key else None
            row.update(new_values)
            if self._pk_index is not None and row[primary_key] != old_key:
                # The update moved the row to a new primary key: drop the
                # stale entry (unless another row already claimed it) and
                # index the row under its new key.
                if self._pk_index.get(old_key) is row:
                    del self._pk_index[old_key]
                self._pk_index[row[primary_key]] = row
            updated += 1
        if updated:
            self._invalidate_caches()
        return updated

    def apply_update_at(self, changes: Iterable[tuple[int, dict]]) -> int:
        """Apply ``(row position, new_values)`` changes (WAL replay path).

        Positions refer to :attr:`rows` order, which is stable because
        storage is append-only and replay applies records in log order.
        """
        rows = self.rows
        return self.apply_update(
            (rows[position], new_values) for position, new_values in changes
        )

    def update_rows(self, predicate, assignments: dict) -> int:
        """Update rows matching ``predicate`` (a callable on a row dict).

        ``assignments`` maps column name to either a constant or a callable
        taking the row and returning the new value.  Callables are evaluated
        against the row's *pre-update* state — SQL's simultaneous-assignment
        semantics, so ``set a = b, b = a`` swaps the two columns instead of
        reading the value the first assignment just wrote.  Returns the
        number of rows updated.

        The update is **statement-atomic**: it runs as :meth:`plan_update`
        (compute and validate every change) followed by :meth:`apply_update`
        (write them all), so an error raised by the predicate or by an
        assignment on any row leaves the table completely unchanged.
        """
        planned = self.plan_update(predicate, assignments)
        return self.apply_update(
            (row, new_values) for _, row, new_values in planned
        )

    def truncate_to(self, length: int) -> int:
        """Remove every row past ``length`` (transaction-rollback undo).

        Inserts are append-only, so rolling back the inserts of an aborted
        transaction is a truncation back to the pre-transaction length.
        Returns the number of rows removed.
        """
        removed = self.rows[length:]
        if not removed:
            return 0
        del self.rows[length:]
        if self._pk_index is not None:
            primary_key = self.schema.primary_key
            for row in removed:
                if self._pk_index.get(row[primary_key]) is row:
                    del self._pk_index[row[primary_key]]
        self._invalidate_caches()
        return len(removed)

    def _invalidate_caches(self) -> None:
        self.version += 1
        if self._indexes:
            self._indexes.clear()
        if self._distinct_cache:
            self._distinct_cache.clear()
        self._columnar = None
        if self._wide_rows:
            self._wide_rows.clear()

    # -- access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def scan(self) -> Iterator[Row]:
        """Iterate over copies of all rows (callers may mutate results)."""
        for row in self.rows:
            yield dict(row)

    def lookup_pk(self, key: Any) -> Optional[Row]:
        """Point lookup by primary key; returns a copy or ``None``."""
        if self._pk_index is None:
            raise SchemaError(
                f"table {self.schema.name!r} has no primary key index"
            )
        row = self._pk_index.get(key)
        return dict(row) if row is not None else None

    def index_for(self, column: str) -> dict[Any, list[Row]]:
        """Secondary hash index: column value -> rows holding it.

        Built lazily on first use and cached until the table mutates.  NULL
        values are not indexed (they never match an equi-join key).  The
        returned rows are the stored dicts; callers must not mutate them.
        """
        index = self._indexes.get(column)
        if index is None:
            self.schema.column(column)
            index = {}
            for row in self.rows:
                value = row[column]
                if value is None:
                    continue
                bucket = index.get(value)
                if bucket is None:
                    index[value] = [row]
                else:
                    bucket.append(row)
            self._indexes[column] = index
        return index

    def columns(self) -> dict[str, ColumnData]:
        """Columnar view: column name -> :class:`ColumnData`, aligned by row.

        Built lazily from the row dicts on first use and cached until the
        table mutates (checked against :attr:`version`, like
        :meth:`index_for`).  Row dicts remain the mutation surface; the
        returned columns are positionally aligned with :attr:`rows` and must
        not be mutated by callers.  The vectorized executor scans these
        arrays instead of iterating row dictionaries; each column carries a
        typed/dictionary-encoded sidecar per :meth:`set_storage_mode`, which
        the codegen and numpy paths specialize on.
        """
        cached = self._columnar
        if cached is not None and self._columnar_version == self.version:
            return cached
        rows = self.rows
        mode = self._storage_mode
        store = {
            name: encode_column([row[name] for row in rows], mode)
            for name in self.schema.column_names
        }
        self._columnar = store
        self._columnar_version = self.version
        return store

    def wide_rows(self, alias: str) -> list[Row]:
        """Full-width scan output rows for ``alias``, cached per version.

        A scan materializes each row with its bare keys followed by the
        alias-qualified keys.  Codegen select pipelines emit survivors as
        ``dict.copy`` of these prebuilt templates — a single C-level copy
        per output row instead of an 8-entry dict display — so the
        templates are cached here next to the columnar view and share its
        lifecycle: any mutation bumps :attr:`version` and drops them.
        Callers receive copies, never these dicts.
        """
        if self._wide_version != self.version:
            if self._wide_rows:
                self._wide_rows.clear()
            self._wide_version = self.version
        cached = self._wide_rows.get(alias)
        if cached is None:
            qualified = [
                f"{alias}.{name}" for name in self.schema.column_names
            ]
            cached = []
            append = cached.append
            for row in self.rows:
                # Stored rows hold every schema column in declaration
                # order (prepare_row guarantees it), so values() aligns.
                wide = dict(row)
                wide.update(zip(qualified, row.values()))
                append(wide)
            self._wide_rows[alias] = cached
        return cached

    def set_storage_mode(self, mode: str) -> None:
        """Choose the columnar representation (see :data:`STORAGE_MODES`).

        Takes effect on the next columnar rebuild; the row dicts are
        untouched, so this is purely a physical-layout knob.
        """
        if mode not in STORAGE_MODES:
            raise ValueError(
                f"unknown storage mode {mode!r}; expected one of "
                f"{STORAGE_MODES}"
            )
        if mode != self._storage_mode:
            self._storage_mode = mode
            self._columnar = None

    @property
    def storage_mode(self) -> str:
        return self._storage_mode

    def column_encodings(self) -> dict[str, str]:
        """Encoding per column of the *currently built* columnar view.

        Reads only the cached view — it never triggers a rebuild — so it is
        safe to call from stats paths without side effects.  Returns an
        empty dict when no fresh columnar view exists.
        """
        cached = self._columnar
        if cached is None or self._columnar_version != self.version:
            return {}
        return {name: column.encoding for name, column in cached.items()}

    @property
    def row_width(self) -> int:
        """Byte width of a full row according to the schema."""
        return self.schema.row_width

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-null values in ``column`` (cached)."""
        cached = self._distinct_cache.get(column)
        if cached is None:
            self.schema.column(column)
            cached = len(
                {row[column] for row in self.rows if row[column] is not None}
            )
            self._distinct_cache[column] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name!r}, rows={len(self.rows)})"
