"""Row storage for the in-memory database engine.

Rows are stored as plain dictionaries mapping column name to value.  A
:class:`Table` owns its schema, validates inserted rows, and maintains an
optional hash index on the primary key for point lookups (used by the ORM
substrate for lazy loads and by the executor for indexed joins).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.db.schema import SchemaError, TableSchema

Row = dict


class Table:
    """An in-memory table: a schema plus a list of rows."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[Row] = []
        self._pk_index: Optional[dict[Any, Row]] = (
            {} if schema.primary_key else None
        )

    # -- mutation --------------------------------------------------------

    def insert(self, row: Row) -> Row:
        """Insert one row (a mapping of column name to value).

        Missing columns are filled with ``None``; unknown columns raise
        :class:`SchemaError`.  Returns the stored row dict.
        """
        stored: Row = {}
        for column in self.schema.columns:
            stored[column.name] = row.get(column.name)
        unknown = set(row) - set(stored)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)} for table "
                f"{self.schema.name!r}"
            )
        self.rows.append(stored)
        if self._pk_index is not None:
            key = stored[self.schema.primary_key]
            self._pk_index[key] = stored
        return stored

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def clear(self) -> None:
        """Remove all rows."""
        self.rows.clear()
        if self._pk_index is not None:
            self._pk_index.clear()

    def update_rows(self, predicate, assignments: dict) -> int:
        """Update rows matching ``predicate`` (a callable on a row dict).

        ``assignments`` maps column name to either a constant or a callable
        taking the row and returning the new value.  Returns the number of
        rows updated.  Used by the application-side programs that contain
        intermittent updates (Wilos pattern A).
        """
        updated = 0
        for row in self.rows:
            if not predicate(row):
                continue
            for column, value in assignments.items():
                if column not in row:
                    raise SchemaError(
                        f"unknown column {column!r} in update on table "
                        f"{self.schema.name!r}"
                    )
                row[column] = value(row) if callable(value) else value
            updated += 1
        return updated

    # -- access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def scan(self) -> Iterator[Row]:
        """Iterate over copies of all rows (callers may mutate results)."""
        for row in self.rows:
            yield dict(row)

    def lookup_pk(self, key: Any) -> Optional[Row]:
        """Point lookup by primary key; returns a copy or ``None``."""
        if self._pk_index is None:
            raise SchemaError(
                f"table {self.schema.name!r} has no primary key index"
            )
        row = self._pk_index.get(key)
        return dict(row) if row is not None else None

    @property
    def row_width(self) -> int:
        """Byte width of a full row according to the schema."""
        return self.schema.row_width

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-null values in ``column``."""
        self.schema.column(column)
        return len({row[column] for row in self.rows if row[column] is not None})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name!r}, rows={len(self.rows)})"
