"""Relational algebra plan nodes.

These nodes form the logical/physical plan language of the in-memory engine,
and double as the relational part of F-IR (COBRA's intermediate
representation embeds query expressions as algebra trees).

Nodes
-----
``Scan``            full table scan (with optional alias)
``Select``          filter by a predicate
``Project``         projection onto named output expressions
``Join``            inner equi-/theta-join of two inputs
``Aggregate``       grouped or scalar aggregation
``Sort``            order by one or more columns
``Limit``           first-N rows

All nodes are immutable; rewrites build new trees.  The executor
(:mod:`repro.db.executor`) interprets them; the statistics module estimates
their output cardinality and row width; :mod:`repro.db.sqlgen` renders them
back to SQL text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.db.expressions import ColumnRef, Expression


class AlgebraError(Exception):
    """Raised for malformed algebra trees."""


class PlanNode:
    """Base class for relational algebra nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        """Child plan nodes."""
        return ()

    def base_tables(self) -> set[str]:
        """Names of all base tables referenced in the subtree."""
        tables: set[str] = set()
        for child in self.children():
            tables |= child.base_tables()
        return tables

    def height(self) -> int:
        """Height of the plan tree (a single Scan has height 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.height() for child in kids)


@dataclass(frozen=True)
class Scan(PlanNode):
    """Full scan of a base table, optionally under an alias."""

    table: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.table

    def base_tables(self) -> set[str]:
        return {self.table}

    def __repr__(self) -> str:
        if self.alias and self.alias != self.table:
            return f"Scan({self.table!r} AS {self.alias!r})"
        return f"Scan({self.table!r})"


@dataclass(frozen=True)
class Select(PlanNode):
    """Filter the input by ``predicate``."""

    child: PlanNode
    predicate: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"Select({self.predicate.to_sql()}, {self.child!r})"


@dataclass(frozen=True)
class OutputColumn:
    """One output column of a projection or aggregation: expression + name."""

    expression: Expression
    name: str

    def __repr__(self) -> str:
        return f"{self.expression.to_sql()} AS {self.name}"


@dataclass(frozen=True)
class Project(PlanNode):
    """Project the input onto the given output columns."""

    child: PlanNode
    outputs: tuple[OutputColumn, ...]

    def __post_init__(self) -> None:
        if not self.outputs:
            raise AlgebraError("Project requires at least one output column")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def output_names(self) -> list[str]:
        return [o.name for o in self.outputs]

    def __repr__(self) -> str:
        cols = ", ".join(o.name for o in self.outputs)
        return f"Project([{cols}], {self.child!r})"


@dataclass(frozen=True)
class Join(PlanNode):
    """Inner join of ``left`` and ``right`` on ``condition``.

    ``condition`` may be ``None`` for a cross join.  The executor uses a hash
    join when the condition is a simple equality between one column from each
    side and falls back to nested loops otherwise.
    """

    left: PlanNode
    right: PlanNode
    condition: Optional[Expression] = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        cond = self.condition.to_sql() if self.condition is not None else "TRUE"
        return f"Join({cond}, {self.left!r}, {self.right!r})"


#: Aggregate function names supported by the engine.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: function, argument expression, output name.

    ``argument`` may be ``None`` only for ``count`` (meaning ``count(*)``).
    """

    function: str
    argument: Optional[Expression]
    name: str

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise AlgebraError(f"unsupported aggregate {self.function!r}")
        if self.argument is None and self.function != "count":
            raise AlgebraError(
                f"aggregate {self.function!r} requires an argument"
            )

    def __repr__(self) -> str:
        arg = self.argument.to_sql() if self.argument is not None else "*"
        return f"{self.function}({arg}) AS {self.name}"


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Grouped (or, with no group keys, scalar) aggregation."""

    child: PlanNode
    group_by: tuple[ColumnRef, ...]
    aggregates: tuple[AggregateSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggregates and not self.group_by:
            raise AlgebraError("Aggregate requires group keys or aggregates")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        keys = ", ".join(c.qualified_name for c in self.group_by)
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"Aggregate(by=[{keys}], aggs=[{aggs}], {self.child!r})"


@dataclass(frozen=True)
class SortKey:
    """A sort key: column reference plus direction."""

    column: ColumnRef
    ascending: bool = True

    def __repr__(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.column.qualified_name} {direction}"


@dataclass(frozen=True)
class Sort(PlanNode):
    """Order the input by the given keys."""

    child: PlanNode
    keys: tuple[SortKey, ...]

    def __post_init__(self) -> None:
        if not self.keys:
            raise AlgebraError("Sort requires at least one key")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        keys = ", ".join(repr(k) for k in self.keys)
        return f"Sort([{keys}], {self.child!r})"


@dataclass(frozen=True)
class Limit(PlanNode):
    """Return at most ``count`` rows of the input."""

    child: PlanNode
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise AlgebraError("Limit count must be non-negative")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"Limit({self.count}, {self.child!r})"


def walk(plan: PlanNode):
    """Yield every node of the plan tree in pre-order."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def find_scans(plan: PlanNode) -> list[Scan]:
    """Return all Scan leaves in the plan, left to right."""
    return [node for node in walk(plan) if isinstance(node, Scan)]


def has_operator(plan: PlanNode, node_type: type) -> bool:
    """Return True if any node in the plan is an instance of ``node_type``."""
    return any(isinstance(node, node_type) for node in walk(plan))
