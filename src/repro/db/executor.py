"""Execution of relational algebra plans against in-memory tables.

The executor is a straightforward interpreter over :mod:`repro.db.algebra`
trees.  Rows flow as dictionaries.  Join outputs carry both qualified keys
(``alias.column``) and, when unambiguous, bare column keys, so that
downstream expressions written either way evaluate correctly — the same
convention the SQL parser and the ORM rely on.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.db import algebra
from repro.db.expressions import BinaryOp, ColumnRef, Expression
from repro.db.table import Row, Table


class ExecutionError(Exception):
    """Raised when a plan cannot be executed."""


class Executor:
    """Executes algebra plans against a mapping of table name -> Table."""

    def __init__(self, tables: Mapping[str, Table]) -> None:
        self._tables = tables

    # -- public API ------------------------------------------------------

    def execute(self, plan: algebra.PlanNode) -> list[Row]:
        """Execute ``plan`` and return the output rows as a list of dicts."""
        return list(self._execute(plan))

    # -- dispatch --------------------------------------------------------

    def _execute(self, plan: algebra.PlanNode) -> Iterable[Row]:
        if isinstance(plan, algebra.Scan):
            return self._scan(plan)
        if isinstance(plan, algebra.Select):
            return self._select(plan)
        if isinstance(plan, algebra.Project):
            return self._project(plan)
        if isinstance(plan, algebra.Join):
            return self._join(plan)
        if isinstance(plan, algebra.Aggregate):
            return self._aggregate(plan)
        if isinstance(plan, algebra.Sort):
            return self._sort(plan)
        if isinstance(plan, algebra.Limit):
            return self._limit(plan)
        raise ExecutionError(f"unsupported plan node {type(plan).__name__}")

    # -- operators -------------------------------------------------------

    def _scan(self, plan: algebra.Scan) -> Iterable[Row]:
        try:
            table = self._tables[plan.table]
        except KeyError:
            raise ExecutionError(f"unknown table {plan.table!r}") from None
        alias = plan.effective_alias
        for row in table.rows:
            out = dict(row)
            for key, value in row.items():
                out[f"{alias}.{key}"] = value
            yield out

    def _select(self, plan: algebra.Select) -> Iterable[Row]:
        for row in self._execute(plan.child):
            if plan.predicate.evaluate(row):
                yield row

    def _project(self, plan: algebra.Project) -> Iterable[Row]:
        for row in self._execute(plan.child):
            yield {
                output.name: output.expression.evaluate(row)
                for output in plan.outputs
            }

    def _join(self, plan: algebra.Join) -> Iterable[Row]:
        left_rows = list(self._execute(plan.left))
        right_rows = list(self._execute(plan.right))
        equi = _equi_join_columns(plan.condition)
        if equi is not None:
            yield from self._hash_join(left_rows, right_rows, plan, equi)
        else:
            yield from self._nested_loops_join(left_rows, right_rows, plan)

    def _hash_join(
        self,
        left_rows: list[Row],
        right_rows: list[Row],
        plan: algebra.Join,
        equi: tuple[ColumnRef, ColumnRef],
    ) -> Iterable[Row]:
        left_col, right_col = equi
        # Decide which column belongs to which side by probing a sample row.
        if left_rows and not _resolves(left_col, left_rows[0]):
            left_col, right_col = right_col, left_col
        build: dict[Any, list[Row]] = {}
        for row in right_rows:
            key = _safe_eval(right_col, row)
            if key is None:
                continue
            build.setdefault(key, []).append(row)
        for left_row in left_rows:
            key = _safe_eval(left_col, left_row)
            if key is None:
                continue
            for right_row in build.get(key, ()):
                yield _merge_rows(left_row, right_row)

    def _nested_loops_join(
        self, left_rows: list[Row], right_rows: list[Row], plan: algebra.Join
    ) -> Iterable[Row]:
        for left_row in left_rows:
            for right_row in right_rows:
                merged = _merge_rows(left_row, right_row)
                if plan.condition is None or plan.condition.evaluate(merged):
                    yield merged

    def _aggregate(self, plan: algebra.Aggregate) -> Iterable[Row]:
        rows = list(self._execute(plan.child))
        if plan.group_by:
            groups: dict[tuple, list[Row]] = {}
            for row in rows:
                key = tuple(col.evaluate(row) for col in plan.group_by)
                groups.setdefault(key, []).append(row)
            for key, group_rows in groups.items():
                out: Row = {}
                for col, value in zip(plan.group_by, key):
                    out[col.name] = value
                    out[col.qualified_name] = value
                for spec in plan.aggregates:
                    out[spec.name] = _compute_aggregate(spec, group_rows)
                yield out
        else:
            out = {
                spec.name: _compute_aggregate(spec, rows)
                for spec in plan.aggregates
            }
            yield out

    def _sort(self, plan: algebra.Sort) -> Iterable[Row]:
        rows = list(self._execute(plan.child))
        # Sort by the last key first so earlier keys take precedence.
        for key in reversed(plan.keys):
            rows.sort(
                key=lambda row: _sort_key(key.column.evaluate(row)),
                reverse=not key.ascending,
            )
        return rows

    def _limit(self, plan: algebra.Limit) -> Iterable[Row]:
        for index, row in enumerate(self._execute(plan.child)):
            if index >= plan.count:
                break
            yield row


# -- helpers ------------------------------------------------------------


def _merge_rows(left: Row, right: Row) -> Row:
    """Merge join-side rows.

    Qualified keys from both sides are kept.  A bare key present on both
    sides keeps the left value for the bare name (qualified names remain
    unambiguous), matching the usual SQL behaviour where ambiguous bare
    references should be qualified by the query author.
    """
    merged = dict(right)
    merged.update(left)
    return merged


def _equi_join_columns(
    condition: Expression | None,
) -> tuple[ColumnRef, ColumnRef] | None:
    """Return the (left, right) column refs if the condition is a simple
    equality between two columns, else ``None``."""
    if isinstance(condition, BinaryOp) and condition.op in {"=", "=="}:
        if isinstance(condition.left, ColumnRef) and isinstance(
            condition.right, ColumnRef
        ):
            return condition.left, condition.right
    return None


def _resolves(column: ColumnRef, row: Row) -> bool:
    """Return True if ``column`` can be evaluated against ``row``."""
    try:
        column.evaluate(row)
        return True
    except Exception:
        return False


def _safe_eval(column: ColumnRef, row: Row) -> Any:
    try:
        return column.evaluate(row)
    except Exception:
        return None


def _sort_key(value: Any) -> tuple:
    """Total ordering that tolerates None and mixed types."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _compute_aggregate(spec: algebra.AggregateSpec, rows: list[Row]) -> Any:
    """Compute one aggregate over ``rows``."""
    if spec.function == "count" and spec.argument is None:
        return len(rows)
    values = [spec.argument.evaluate(row) for row in rows]
    values = [v for v in values if v is not None]
    if spec.function == "count":
        return len(values)
    if not values:
        return None
    if spec.function == "sum":
        return sum(values)
    if spec.function == "avg":
        return sum(values) / len(values)
    if spec.function == "min":
        return min(values)
    if spec.function == "max":
        return max(values)
    raise ExecutionError(f"unsupported aggregate {spec.function!r}")
