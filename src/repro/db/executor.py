"""Execution of relational algebra plans against in-memory tables.

The executor runs :mod:`repro.db.algebra` trees over rows flowing as
dictionaries.  Join outputs carry both qualified keys (``alias.column``) and,
when unambiguous, bare column keys, so that downstream expressions written
either way evaluate correctly — the same convention the SQL parser and the
ORM rely on.

Three execution modes are supported (``Executor(tables, mode=...)``):

* **vectorized** (the default) — plans are lowered to batch pipelines over
  columnar storage by :class:`repro.db.vectorized.VectorizedExecutor`:
  scans wrap :meth:`repro.db.table.Table.columns`, filters compose
  selection vectors, hash joins build and probe on key arrays, and output
  row dicts are built only at the root of the operator tree (*late
  materialization*).  Plans, operators, or expressions outside the
  vectorizable subset fall back per-subtree to the compiled tier below, and
  a kernel error re-runs the whole plan compiled so error semantics never
  diverge.  Results are row-identical to both row tiers.

* **compiled** — every expression used by an operator
  (predicate, projection output, join key, sort key, aggregate argument) is
  lowered *once per operator* to a Python closure via
  :meth:`repro.db.expressions.Expression.compile`, and the closure is called
  per row.  Scans precompute their ``alias.column`` key list once instead of
  formatting qualified keys per row; equi-joins whose build side is a bare
  table scan use the table's lazy secondary hash index
  (:meth:`repro.db.table.Table.index_for`) as the build table, so repeated
  joins on the same key pay the build cost once per table version; ``Select``
  and ``Limit`` stream their input without materialising intermediates.

  On top of expression compilation the executor performs *scan fusion*: when
  an operator's input is a base-table scan (possibly under a stack of
  filters), its expressions are compiled against the **base row layout**
  (plain ``column -> value`` dicts straight out of the table) using a column
  resolver, and the qualified ``alias.column`` view is only materialised for
  rows that actually reach the operator's output.  A filter therefore builds
  output dicts only for the rows that pass, a grouped aggregate over a scan
  builds none at all, and an equi-join of two (filtered) scans constructs
  each output row in a single ``dict(zip(keys, values))`` from the two base
  rows.  Fused and unfused execution produce identical rows.

* **interpreted** (``Executor(tables, compiled=False)``) — the original
  tree-walking fallback: ``Expression.evaluate`` per row, per-row qualified
  key formatting in scans, and no index reuse.  It is kept as the reference
  implementation for the compiled/interpreted equivalence tests and for the
  ``benchmarks/bench_engine.py`` speedup measurements, and as the fallback
  when callers hand the executor expression types the compiler has no
  lowering for (their ``compile`` falls back to ``evaluate`` transparently).

All modes produce identical output rows in identical order;
:attr:`Executor.tier_counts` records which tier served each ``execute``.
"""

from __future__ import annotations

import operator
from collections import OrderedDict
from itertools import chain, islice
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.db import algebra
from repro.db.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    ColumnResolver,
    CompiledExpression,
    Expression,
)
from repro.db.table import Row, Table


class ExecutionError(Exception):
    """Raised when a plan cannot be executed."""


#: Sentinel cached by :meth:`Executor._context_expr` for expressions that do
#: not resolve in a given fused context (the generic path takes over).
_UNRESOLVABLE: CompiledExpression = lambda row: None


class Executor:
    """Executes algebra plans against a mapping of table name -> Table."""

    #: Compile-cache entries kept before least-recently-used eviction.
    #: Expression trees embed query literals, so a long-lived executor
    #: serving parameterized queries would otherwise accumulate one entry
    #: per distinct literal forever.
    COMPILE_CACHE_LIMIT = 512

    #: Valid execution modes, fastest first.
    MODES = ("vectorized", "compiled", "interpreted")

    def __init__(
        self,
        tables: Mapping[str, Table],
        *,
        compiled: bool = True,
        mode: Optional[str] = None,
        vector_backend: Optional[str] = None,
    ) -> None:
        if mode is None:
            mode = "vectorized" if compiled else "interpreted"
        if mode not in self.MODES:
            raise ValueError(
                f"unknown execution mode {mode!r}; modes are {self.MODES}"
            )
        self._tables = tables
        self.mode = mode
        #: the row tiers below the vectorized one: compiled closures unless
        #: the executor is fully interpreted.
        self._compiled = mode != "interpreted"
        #: expression -> compiled closure, reused across queries (LRU).
        self._compile_cache: OrderedDict[Expression, CompiledExpression] = (
            OrderedDict()
        )
        #: (context key, expression) -> closure compiled under a fused
        #: resolver (scan- or join-layout specific), reused across queries.
        #: This is what lets a slot-compiled prepared plan re-execute with
        #: zero compilation work even on the fused paths, which otherwise
        #: lower their expressions per operator instantiation.  LRU-evicted
        #: at COMPILE_CACHE_LIMIT so steady-state workloads near the limit
        #: drop the coldest entry instead of recompiling everything.
        self._context_cache: OrderedDict[tuple, CompiledExpression] = (
            OrderedDict()
        )
        #: execute() calls served per tier (a vectorized attempt that falls
        #: back is counted under the tier that produced the rows).
        self.tier_counts: dict[str, int] = {
            "vectorized": 0,
            "compiled": 0,
            "interpreted": 0,
        }
        #: optional :class:`repro.db.sharding.ShardRouter` consulted before
        #: normal execution; plans it declines run unrouted against the
        #: (aggregate) table views.  Shard-local executors never carry a
        #: router themselves.
        self.router = None
        #: which tier served the most recent execute() call, and — when the
        #: vectorized tier declined it — why.  Plain attribute stores, cheap
        #: enough to maintain unconditionally; read by prepared statements
        #: for tracing and EXPLAIN.
        self.last_tier: Optional[str] = None
        self.last_fallback_reason: Optional[str] = None
        #: how the most recent execute() call actually produced its rows:
        #: "codegen" / "kernel" inside the vectorized tier, otherwise the
        #: row-tier name.  Finer-grained than last_tier, read by EXPLAIN.
        self.last_execution_path: Optional[str] = None
        #: requested vector backend, remembered so shard-local executors
        #: can be built with the same acceleration settings.
        self.vector_backend = vector_backend
        if mode == "vectorized":
            from repro.db.vectorized import VectorizedExecutor

            self._vectorized: Optional[VectorizedExecutor] = (
                VectorizedExecutor(self, backend=vector_backend)
            )
        else:
            self._vectorized = None

    # -- public API ------------------------------------------------------

    def execute(self, plan: algebra.PlanNode) -> list[Row]:
        """Execute ``plan`` and return the output rows as a list of dicts."""
        if self.router is not None:
            routed = self.router.try_execute(plan)
            if routed is not None:
                self.last_tier = self.router.last_tier
                self.last_fallback_reason = self.router.last_fallback_reason
                self.last_execution_path = getattr(
                    self.router, "last_execution_path", self.router.last_tier
                )
                return routed
        if self._vectorized is not None:
            rows = self._vectorized.try_execute(plan)
            if rows is not None:
                self.tier_counts["vectorized"] += 1
                self.last_tier = "vectorized"
                self.last_fallback_reason = None
                self.last_execution_path = self._vectorized.last_path
                return rows
        tier = "compiled" if self._compiled else "interpreted"
        rows = list(self._execute(plan))
        self.tier_counts[tier] += 1
        self.last_tier = tier
        self.last_execution_path = tier
        self.last_fallback_reason = (
            self._vectorized.last_fallback_reason
            if self._vectorized is not None
            else None
        )
        return rows

    @property
    def vectorized_stats(self) -> dict[str, int]:
        """Vectorized-tier counters (zeros outside vectorized mode)."""
        if self._vectorized is None:
            return {
                "executions": 0,
                "codegen_executions": 0,
                "pipelines_compiled": 0,
                "codegen_cache_hits": 0,
                "codegen_errors": 0,
                "fallbacks": 0,
                "subtree_fallbacks": 0,
                "fallback_reasons": {},
            }
        return {
            "executions": self._vectorized.executions,
            "codegen_executions": self._vectorized.codegen_executions,
            "pipelines_compiled": self._vectorized.pipelines_compiled,
            "codegen_cache_hits": self._vectorized.codegen_cache_hits,
            "codegen_errors": self._vectorized.codegen_errors,
            "fallbacks": self._vectorized.fallbacks,
            "subtree_fallbacks": self._vectorized.subtree_fallbacks,
            "fallback_reasons": dict(self._vectorized.fallback_reasons),
        }

    def set_vector_backend(self, backend: Optional[str]) -> None:
        """Swap the vectorized tier's filter backend ("python"/"numpy").

        Rebuilds the vectorized executor (dropping its plan/pipeline caches
        and counters), so this is a configuration-time knob, not a per-query
        one.  A no-op outside vectorized mode beyond remembering the name.
        """
        self.vector_backend = backend
        if self._vectorized is not None:
            from repro.db.vectorized import VectorizedExecutor

            self._vectorized = VectorizedExecutor(self, backend=backend)

    def invalidate_context_cache(self) -> None:
        """Drop every resolver-context compiled closure (call on DDL).

        Context entries are keyed by ``id(table)``; once a table object can
        be replaced (and eventually garbage collected), a recycled address
        could otherwise serve closures compiled against the old schema.
        The vectorized tier's lowered-plan cache closes over the same
        tables, so it is dropped too.  The schema-independent expression
        cache is unaffected.
        """
        self._context_cache.clear()
        if self._vectorized is not None:
            self._vectorized.invalidate()

    # -- dispatch --------------------------------------------------------

    def _execute(self, plan: algebra.PlanNode) -> Iterable[Row]:
        if isinstance(plan, algebra.Scan):
            return self._scan(plan)
        if isinstance(plan, algebra.Select):
            return self._select(plan)
        if isinstance(plan, algebra.Project):
            return self._project(plan)
        if isinstance(plan, algebra.Join):
            return self._join(plan)
        if isinstance(plan, algebra.Aggregate):
            return self._aggregate(plan)
        if isinstance(plan, algebra.Sort):
            return self._sort(plan)
        if isinstance(plan, algebra.Limit):
            return self._limit(plan)
        raise ExecutionError(f"unsupported plan node {type(plan).__name__}")

    # -- expression compilation ------------------------------------------

    def _expr(self, expression: Expression) -> CompiledExpression:
        """The per-row evaluator for ``expression`` in the current mode."""
        if not self._compiled:
            return expression.evaluate
        try:
            cached = self._compile_cache.get(expression)
        except TypeError:  # unhashable literal buried in the tree
            return expression.compile()
        if cached is None:
            cached = expression.compile()
            if len(self._compile_cache) >= self.COMPILE_CACHE_LIMIT:
                self._compile_cache.popitem(last=False)
            self._compile_cache[expression] = cached
        else:
            self._compile_cache.move_to_end(expression)
        return cached

    def _context_expr(
        self,
        context: tuple,
        expression: Expression,
        compile_fn: Callable[[Expression], Optional[CompiledExpression]],
    ) -> Optional[CompiledExpression]:
        """Memoized compile of ``expression`` under a stable resolver context.

        ``context`` must uniquely describe the resolver the closure was
        built against (table identities and aliases); table *objects* are
        keyed by ``id`` because a table's schema is immutable, and the
        whole cache is dropped on DDL (:meth:`invalidate_context_cache`) so
        a recycled object address can never serve stale closures.  A
        ``compile_fn`` returning ``None`` (expression not resolvable in this
        context) is memoized too, so repeated executions of a fallback shape
        skip re-deriving the failure.  Eviction is least-recently-used:
        a steady-state workload cycling through slightly more than
        COMPILE_CACHE_LIMIT shapes drops only the coldest entry per miss
        instead of flushing (and then recompiling) every live closure.
        """
        key = (context, expression)
        try:
            cached = self._context_cache.get(key)
        except TypeError:  # unhashable literal buried in the tree
            return compile_fn(expression)
        if cached is None:
            compiled = compile_fn(expression)
            cached = _UNRESOLVABLE if compiled is None else compiled
            if len(self._context_cache) >= self.COMPILE_CACHE_LIMIT:
                self._context_cache.popitem(last=False)
            self._context_cache[key] = cached
        else:
            self._context_cache.move_to_end(key)
        return None if cached is _UNRESOLVABLE else cached

    def _fused_expr(
        self, fused: "_FusedScan", expression: Expression
    ) -> CompiledExpression:
        """Compile ``expression`` against a fused scan's base-row layout."""
        compiled = self._context_expr(
            (id(fused.table), fused.alias), expression, fused.compile
        )
        assert compiled is not None  # fused.compile never returns None
        return compiled

    def _fused_base_rows(self, fused: "_FusedScan") -> Iterator[Row]:
        """The fused scan's filtered base rows, with memoized predicates."""
        return fused.base_rows(lambda e: self._fused_expr(fused, e))

    def _key_getter(self, column: ColumnRef) -> CompiledExpression:
        """A join-key evaluator that maps unresolvable rows to ``None``."""
        base = self._expr(column)

        def get(row: Row) -> Any:
            try:
                return base(row)
            except Exception:
                return None

        return get

    # -- scan fusion -----------------------------------------------------

    @staticmethod
    def _peel_selects(
        plan: algebra.PlanNode,
    ) -> tuple[algebra.PlanNode, list[Expression]]:
        """Strip ``Select`` wrappers, returning the inner node and the
        predicates in application (inner-to-outer) order."""
        predicates: list[Expression] = []
        while isinstance(plan, algebra.Select):
            predicates.append(plan.predicate)
            plan = plan.child
        predicates.reverse()
        return plan, predicates

    @staticmethod
    def _peel_scan(
        plan: algebra.PlanNode,
    ) -> tuple[Optional[algebra.Scan], list[Expression]]:
        """Peel ``Select`` wrappers off a base-table scan.

        Returns the scan and its predicates in application (inner-to-outer)
        order, or ``(None, [])`` when the subtree is not a filtered scan.
        """
        node, predicates = Executor._peel_selects(plan)
        if isinstance(node, algebra.Scan):
            return node, predicates
        return None, []

    @staticmethod
    def _peel_join(
        plan: algebra.PlanNode,
    ) -> tuple[Optional[algebra.Join], list[Expression]]:
        """Like :meth:`_peel_scan`, but for a (filtered) join subtree."""
        node, predicates = Executor._peel_selects(plan)
        if isinstance(node, algebra.Join):
            return node, predicates
        return None, []

    def _fused_scan(self, plan: algebra.PlanNode) -> Optional["_FusedScan"]:
        """A fused view of ``plan`` when it is a (filtered) base-table scan.

        In fused execution, expressions are compiled against the *base* row
        layout — for a single scan the qualified keys only duplicate the bare
        column keys, so base-row evaluation is observably identical — and the
        ``alias.column`` view is materialised only for rows that survive to
        the operator's output.
        """
        if not self._compiled:
            return None
        scan, predicates = self._peel_scan(plan)
        if scan is None:
            return None
        table = self._tables.get(scan.table)
        if table is None:
            return None  # let the generic path raise the usual error
        return _FusedScan(table, scan.effective_alias, predicates)

    # -- operators -------------------------------------------------------

    def _scan(self, plan: algebra.Scan) -> Iterable[Row]:
        try:
            table = self._tables[plan.table]
        except KeyError:
            raise ExecutionError(f"unknown table {plan.table!r}") from None
        alias = plan.effective_alias
        if not self._compiled:
            for row in table.rows:
                out = dict(row)
                for key, value in row.items():
                    out[f"{alias}.{key}"] = value
                yield out
            return
        # Fast path: format the qualified keys once for the whole scan and
        # assemble each output row in a single dict(zip(...)).
        fused = _FusedScan(table, alias, [])
        yield from map(fused.materialize, table.rows)

    def _select(self, plan: algebra.Select) -> Iterable[Row]:
        fused = self._fused_scan(plan)
        if fused is not None:
            # Filter base rows; build the alias view only for survivors.
            return map(fused.materialize, self._fused_base_rows(fused))
        if self._compiled:
            fused_join = self._fused_join_filter(plan)
            if fused_join is not None:
                # Filters directly above a fusable equi-join run inside the
                # join's probe loop on (left, right) base-row pairs; the
                # merged row is built only for pairs that pass.
                return fused_join
        return filter(self._expr(plan.predicate), self._execute(plan.child))

    def _project(self, plan: algebra.Project) -> Iterable[Row]:
        if self._compiled:
            fused = self._fused_join_project(plan)
            if fused is not None:
                return fused
        fused_scan = self._fused_scan(plan.child)
        if fused_scan is not None:
            # Project straight off base rows; no alias views at all.
            outputs = [
                (o.name, self._fused_expr(fused_scan, o.expression))
                for o in plan.outputs
            ]
            return (
                {name: evaluate(row) for name, evaluate in outputs}
                for row in self._fused_base_rows(fused_scan)
            )
        outputs = [(o.name, self._expr(o.expression)) for o in plan.outputs]
        return (
            {name: evaluate(row) for name, evaluate in outputs}
            for row in self._execute(plan.child)
        )

    def _join(self, plan: algebra.Join) -> Iterable[Row]:
        equi = _equi_join_columns(plan.condition)
        if self._compiled and equi is not None:
            parts = self._fused_join_parts(plan, equi)
            if parts is not None:
                return self._fused_join_rows(*parts)
            if isinstance(plan.right, algebra.Scan):
                oriented = self._index_join_columns(plan.right, equi)
                if oriented is not None:
                    probe_col, index_column = oriented
                    return self._index_join(plan, probe_col, index_column)
        return self._materialized_join(plan, equi)

    def _materialized_join(
        self,
        plan: algebra.Join,
        equi: Optional[tuple[ColumnRef, ColumnRef]],
    ) -> Iterator[Row]:
        left_rows = list(self._execute(plan.left))
        if not left_rows:
            # Empty probe side: skip executing and building the other side.
            # Still validate its table references so a typo'd table name
            # raises regardless of what the probe side happens to contain.
            for scan in algebra.find_scans(plan.right):
                if scan.table not in self._tables:
                    raise ExecutionError(f"unknown table {scan.table!r}")
            return iter(())
        right_rows = list(self._execute(plan.right))
        if equi is not None:
            return self._hash_join(left_rows, right_rows, plan, equi)
        return self._nested_loops_join(left_rows, right_rows, plan)

    # -- fused equi-joins -------------------------------------------------

    def _fused_join_parts(
        self, plan: algebra.Join, equi: tuple[ColumnRef, ColumnRef]
    ) -> Optional[tuple["_FusedScan", "_FusedScan", ColumnRef, ColumnRef]]:
        """Resolve a join of two (filtered) scans for fused execution.

        Returns ``(left, right, probe_col, build_col)``, or ``None`` (the
        generic join takes over) unless both sides fuse and the equi columns
        can be statically assigned to exactly one orientation.
        """
        left = self._fused_scan(plan.left)
        right = self._fused_scan(plan.right)
        if left is None or right is None:
            return None
        left_col, right_col = equi
        if left.owns(left_col) and right.owns(right_col):
            return left, right, left_col, right_col
        if left.owns(right_col) and right.owns(left_col):
            return left, right, right_col, left_col
        return None

    def _fused_join_pairs(
        self,
        left: "_FusedScan",
        right: "_FusedScan",
        probe_col: ColumnRef,
        build_col: ColumnRef,
    ) -> Iterator[tuple[Row, Row]]:
        """Matching (left base row, right base row) pairs of a fused join.

        The left side streams as the probe; the right side is either the
        table's cached secondary index (bare scan) or a hash table built
        from its filtered base rows.  An empty probe side never executes or
        builds the right side.
        """
        probe_rows = self._fused_base_rows(left)
        first = next(probe_rows, None)
        if first is None:
            return
        if not right.predicates:
            # Bare scan build side: reuse the table's secondary hash index.
            get_bucket = right.table.index_for(build_col.name).get
        else:
            build_key = operator.itemgetter(build_col.name)
            build: dict[Any, list[Row]] = {}
            for row in self._fused_base_rows(right):
                key = build_key(row)
                if key is None:
                    continue
                bucket = build.get(key)
                if bucket is None:
                    build[key] = [row]
                else:
                    bucket.append(row)
            get_bucket = build.get
        probe_key = operator.itemgetter(probe_col.name)
        for base in chain((first,), probe_rows):
            key = probe_key(base)
            if key is None:
                continue
            bucket = get_bucket(key)
            if not bucket:
                continue
            for right_base in bucket:
                yield base, right_base

    def _fused_join_rows(
        self,
        left: "_FusedScan",
        right: "_FusedScan",
        probe_col: ColumnRef,
        build_col: ColumnRef,
    ) -> Iterator[Row]:
        """Full-width fused join output (bare + qualified keys, both sides)."""
        pairs = self._fused_join_pairs(left, right, probe_col, build_col)
        return self._materialize_join_pairs(left, right, pairs)

    def _materialize_join_pairs(
        self,
        left: "_FusedScan",
        right: "_FusedScan",
        pairs: Iterable[tuple[Row, Row]],
    ) -> Iterator[Row]:
        """Merged full-width rows for base-row ``pairs`` of a fused join."""
        left_keys = left.all_keys
        left_values = left.values
        right_values = right.values
        right_keys = right.all_keys
        #: id(build base row) -> prebuilt right-side dict, copied per match.
        templates: dict[int, Row] = {}
        last_left: Optional[Row] = None
        lv2: tuple = ()
        for left_base, right_base in pairs:
            template = templates.get(id(right_base))
            if template is None:
                rv = right_values(right_base)
                template = dict(zip(right_keys, rv + rv))
                templates[id(right_base)] = template
            if left_base is not last_left:
                lv = left_values(left_base)
                lv2 = lv + lv
                last_left = left_base
            # dict.update overwrites in place, so bare-name collisions keep
            # the left side's value, exactly like _merge_rows.
            out = dict(template)
            out.update(zip(left_keys, lv2))
            yield out

    def _pair_compiler(
        self, left: "_FusedScan", right: "_FusedScan"
    ) -> Callable[[Expression], Optional[CompiledExpression]]:
        """A compiler lowering expressions onto (left, right) base-row pairs.

        Returns ``None`` for expressions whose column references do not all
        statically resolve to exactly one side; callers then fall back to
        evaluating on merged rows.
        """

        def compile_pair(expression: Expression) -> Optional[CompiledExpression]:
            unresolved = False

            def pair_resolver(
                column: ColumnRef,
            ) -> Optional[CompiledExpression]:
                nonlocal unresolved
                # Prefer the left side: a bare name present on both sides
                # reads the left value on the merged row (_merge_rows lets
                # left win).
                if left.owns(column):
                    getter = operator.itemgetter(column.name)
                    return lambda pair: getter(pair[0])
                if right.owns(column):
                    getter = operator.itemgetter(column.name)
                    return lambda pair: getter(pair[1])
                unresolved = True
                return None

            compiled = expression.compile(pair_resolver)
            return None if unresolved else compiled

        return compile_pair

    def _compile_pair_conjuncts(
        self,
        left: "_FusedScan",
        right: "_FusedScan",
        predicates: list[Expression],
    ) -> Optional[list[CompiledExpression]]:
        """Compile filter predicates as (left, right) pair closures.

        Predicates are flattened into conjuncts (preserving application
        order); ``None`` means at least one conjunct does not statically
        resolve, so the caller must materialise merged rows instead.
        """
        context = (id(left.table), left.alias, id(right.table), right.alias)
        compile_pair = self._pair_compiler(left, right)
        compiled: list[CompiledExpression] = []
        for predicate in predicates:
            for conjunct in _flatten_and(predicate):
                evaluate = self._context_expr(context, conjunct, compile_pair)
                if evaluate is None:
                    return None
                compiled.append(evaluate)
        return compiled

    def _filtered_join_pairs(
        self,
        left: "_FusedScan",
        right: "_FusedScan",
        probe_col: ColumnRef,
        build_col: ColumnRef,
        filters: list[CompiledExpression],
    ) -> Iterator[tuple[Row, Row]]:
        """Fused join pairs with filter conjuncts applied inside the probe."""
        pairs: Iterator[tuple[Row, Row]] = self._fused_join_pairs(
            left, right, probe_col, build_col
        )
        for evaluate in filters:
            pairs = filter(evaluate, pairs)
        return pairs

    def _fused_join_filter(
        self, plan: algebra.Select
    ) -> Optional[Iterator[Row]]:
        """``Select`` stack above an equi-join fused into the probe loop.

        The predicates compile against (left base row, right base row)
        pairs, so non-matching pairs are rejected before the merged row
        exists; full-width rows are built only for survivors.  Falls back
        (returns ``None``) unless both join inputs fuse and every predicate
        column statically resolves to one side.
        """
        join, predicates = self._peel_join(plan)
        if join is None:
            return None
        equi = _equi_join_columns(join.condition)
        if equi is None:
            return None
        parts = self._fused_join_parts(join, equi)
        if parts is None:
            return None
        left, right, probe_col, build_col = parts
        filters = self._compile_pair_conjuncts(left, right, predicates)
        if filters is None:
            return None
        pairs = self._filtered_join_pairs(
            left, right, probe_col, build_col, filters
        )
        return self._materialize_join_pairs(left, right, pairs)

    def _fused_join_project(
        self, plan: algebra.Project
    ) -> Optional[Iterator[Row]]:
        """Projection fused through a (filtered) equi-join of two scans.

        Output expressions — and any filter predicates between the
        projection and the join — are compiled against (left base row,
        right base row) pairs, so the merged join row is never
        materialised.  Applies only when every column reference statically
        resolves to one side; anything else falls back to the generic
        project-over-join path.
        """
        join, predicates = self._peel_join(plan.child)
        if join is None:
            return None
        equi = _equi_join_columns(join.condition)
        if equi is None:
            return None
        parts = self._fused_join_parts(join, equi)
        if parts is None:
            return None
        left, right, probe_col, build_col = parts
        filters = self._compile_pair_conjuncts(left, right, predicates)
        if filters is None:
            return None
        context = (id(left.table), left.alias, id(right.table), right.alias)
        compile_pair = self._pair_compiler(left, right)
        outputs = []
        for o in plan.outputs:
            compiled = self._context_expr(context, o.expression, compile_pair)
            if compiled is None:
                return None
            outputs.append((o.name, compiled))
        pairs = self._filtered_join_pairs(
            left, right, probe_col, build_col, filters
        )
        return (
            {name: evaluate(pair) for name, evaluate in outputs}
            for pair in pairs
        )

    def _index_join_columns(
        self, scan: algebra.Scan, equi: tuple[ColumnRef, ColumnRef]
    ) -> Optional[tuple[ColumnRef, str]]:
        """Orient an equi-join over a right-side base-table scan.

        Returns ``(probe column, indexed column name)`` when exactly one of
        the two equi-join columns statically belongs to the scanned table;
        ambiguous conditions (both or neither side matching) fall back to the
        generic hash join.
        """
        table = self._tables.get(scan.table)
        if table is None:
            return None
        alias = scan.effective_alias
        schema = table.schema

        def belongs(column: ColumnRef) -> bool:
            if not schema.has_column(column.name):
                return False
            return column.qualifier is None or column.qualifier == alias

        left_col, right_col = equi
        left_belongs = belongs(left_col)
        right_belongs = belongs(right_col)
        if right_belongs and not left_belongs:
            return left_col, right_col.name
        if left_belongs and not right_belongs:
            return right_col, left_col.name
        return None

    def _index_join(
        self, plan: algebra.Join, probe_col: ColumnRef, index_column: str
    ) -> Iterable[Row]:
        """Index-nested-loop join: probe the build table's secondary index."""
        scan: algebra.Scan = plan.right  # type: ignore[assignment]
        table = self._tables[scan.table]
        alias = scan.effective_alias
        qualified = [
            (f"{alias}.{name}", name) for name in table.schema.column_names
        ]
        probe = self._key_getter(probe_col)
        index: Optional[dict[Any, list[Row]]] = None
        #: id(base row) -> its alias view, shared across probe matches.
        views: dict[int, Row] = {}
        for left_row in self._execute(plan.left):
            if index is None:
                # Deferred so an empty probe side never builds the index.
                index = table.index_for(index_column)
                if not index:
                    return
            key = probe(left_row)
            if key is None:
                continue
            bucket = index.get(key)
            if bucket is None:
                continue
            for base_row in bucket:
                right_row = views.get(id(base_row))
                if right_row is None:
                    right_row = dict(base_row)
                    for qualified_key, name in qualified:
                        right_row[qualified_key] = base_row[name]
                    views[id(base_row)] = right_row
                yield _merge_rows(left_row, right_row)

    def _hash_join(
        self,
        left_rows: list[Row],
        right_rows: list[Row],
        plan: algebra.Join,
        equi: tuple[ColumnRef, ColumnRef],
    ) -> Iterable[Row]:
        if not left_rows or not right_rows:
            return
        left_col, right_col = _orient_equi_columns(left_rows, right_rows, equi)
        right_key = self._key_getter(right_col)
        build: dict[Any, list[Row]] = {}
        for row in right_rows:
            key = right_key(row)
            if key is None:
                continue
            bucket = build.get(key)
            if bucket is None:
                build[key] = [row]
            else:
                bucket.append(row)
        left_key = self._key_getter(left_col)
        for left_row in left_rows:
            key = left_key(left_row)
            if key is None:
                continue
            for right_row in build.get(key, ()):
                yield _merge_rows(left_row, right_row)

    def _nested_loops_join(
        self, left_rows: list[Row], right_rows: list[Row], plan: algebra.Join
    ) -> Iterable[Row]:
        condition = (
            self._expr(plan.condition) if plan.condition is not None else None
        )
        for left_row in left_rows:
            for right_row in right_rows:
                merged = _merge_rows(left_row, right_row)
                if condition is None or condition(merged):
                    yield merged

    def _aggregate(self, plan: algebra.Aggregate) -> Iterable[Row]:
        fused = self._fused_scan(plan.child)
        if fused is not None:
            # Group and aggregate straight off base rows; no alias views.
            compile_expr: Callable[[Expression], CompiledExpression] = (
                lambda e: self._fused_expr(fused, e)
            )
            rows_iter: Iterable[Row] = self._fused_base_rows(fused)
        else:
            compile_expr = self._expr
            rows_iter = self._execute(plan.child)
        # Aggregates often share their argument (sum(x) next to avg(x)):
        # compile each distinct argument once and evaluate it once per group.
        planned = plan_aggregate_arguments(plan.aggregates, compile_expr)
        assert planned is not None  # row compilers never fail
        arg_fns, spec_slots = planned

        def emit_into(out: Row, rows: list[Row]) -> Row:
            cache: list[Optional[list]] = [None] * len(arg_fns)
            for spec, slot in spec_slots:
                if slot is None:
                    out[spec.name] = len(rows)
                    continue
                values = cache[slot]
                if values is None:
                    values = [v for v in map(arg_fns[slot], rows) if v is not None]
                    cache[slot] = values
                out[spec.name] = _compute_aggregate(spec.function, values)
            return out

        if not plan.group_by:
            yield emit_into({}, list(rows_iter))
            return
        # The vectorized tier computes the same grouping with single-pass
        # partial-aggregate kernels (_lower_aggregate); group order must
        # stay first-encounter in both — change the two together.
        keys = [compile_expr(column) for column in plan.group_by]
        if len(keys) == 1:
            # Scalar group keys: skip the per-row tuple construction.
            key_fn = keys[0]
            scalar_groups: dict[Any, list[Row]] = {}
            for row in rows_iter:
                key = key_fn(row)
                bucket = scalar_groups.get(key)
                if bucket is None:
                    scalar_groups[key] = [row]
                else:
                    bucket.append(row)
            group_items: Iterable[tuple[tuple, list[Row]]] = (
                ((key,), rows) for key, rows in scalar_groups.items()
            )
        else:
            groups: dict[tuple, list[Row]] = {}
            for row in rows_iter:
                key = tuple(evaluate(row) for evaluate in keys)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [row]
                else:
                    bucket.append(row)
            group_items = groups.items()
        for key, group_rows in group_items:
            out: Row = {}
            for col, value in zip(plan.group_by, key):
                out[col.name] = value
                out[col.qualified_name] = value
            yield emit_into(out, group_rows)

    def _sort(self, plan: algebra.Sort) -> Iterable[Row]:
        fused = self._fused_scan(plan.child)
        if fused is not None and all(
            fused.owns(key.column) for key in plan.keys
        ):
            # Scan fusion for sort keys: compile the keys against the base
            # row layout, order the base rows, and materialise the alias
            # view only once per output row — after sorting.  Only owned
            # keys fuse: an unresolvable key must keep raising against the
            # materialized row layout, identically to the other tiers.
            rows = list(self._fused_base_rows(fused))
            for key in reversed(plan.keys):
                evaluate = self._fused_expr(fused, key.column)
                rows.sort(
                    key=lambda row: _sort_key(evaluate(row)),
                    reverse=not key.ascending,
                )
            return map(fused.materialize, rows)
        rows = list(self._execute(plan.child))
        # Sort by the last key first so earlier keys take precedence.
        for key in reversed(plan.keys):
            evaluate = self._expr(key.column)
            rows.sort(
                key=lambda row: _sort_key(evaluate(row)),
                reverse=not key.ascending,
            )
        return rows

    def _limit(self, plan: algebra.Limit) -> Iterable[Row]:
        return islice(self._execute(plan.child), plan.count)


class _FusedScan:
    """A (possibly filtered) base-table scan fused into its consumer.

    Exposes the scan's base rows (predicates applied in inner-to-outer
    order), a column resolver compiling expressions straight against the
    base row layout, and helpers to materialise the full ``bare +
    alias.column`` output view only when a row reaches the output.
    """

    __slots__ = (
        "table",
        "alias",
        "predicates",
        "columns",
        "qualified",
        "all_keys",
        "resolver",
        "values",
    )

    def __init__(
        self, table: Table, alias: str, predicates: list[Expression]
    ) -> None:
        self.table = table
        self.alias = alias
        self.predicates = predicates
        schema = table.schema
        self.columns = tuple(schema.column_names)
        self.qualified = tuple(f"{alias}.{name}" for name in self.columns)
        self.all_keys = self.columns + self.qualified
        if len(self.columns) == 1:
            only = self.columns[0]
            self.values: Callable[[Row], tuple] = lambda row: (row[only],)
        else:
            self.values = operator.itemgetter(*self.columns)

        def resolver(column: ColumnRef) -> Optional[CompiledExpression]:
            name = column.name
            if schema.has_column(name) and (
                column.qualifier is None or column.qualifier == alias
            ):
                return operator.itemgetter(name)
            return None

        self.resolver: ColumnResolver = resolver

    def compile(self, expression: Expression) -> CompiledExpression:
        return expression.compile(self.resolver)

    def base_rows(
        self,
        compile_expr: Optional[Callable[[Expression], CompiledExpression]] = None,
    ) -> Iterator[Row]:
        """The scan's base rows with all peeled predicates applied.

        Top-level conjunctions are flattened into one ``filter`` stage per
        conjunct, which preserves left-to-right short-circuit order while
        keeping the row loop in C.  ``compile_expr`` lets the executor
        substitute its memoizing compiler (the default compiles fresh).
        """
        if compile_expr is None:
            compile_expr = self.compile
        rows: Iterable[Row] = self.table.rows
        for predicate in self.predicates:
            for conjunct in _flatten_and(predicate):
                rows = filter(compile_expr(conjunct), rows)
        return iter(rows)

    def materialize(self, base_row: Row) -> Row:
        """The full output row: bare columns plus the qualified alias view."""
        values = self.values(base_row)
        return dict(zip(self.all_keys, values + values))

    def owns(self, column: ColumnRef) -> bool:
        """True when ``column`` statically refers to this scan's table."""
        return self.table.schema.has_column(column.name) and (
            column.qualifier is None or column.qualifier == self.alias
        )


# -- helpers ------------------------------------------------------------


def plan_aggregate_arguments(
    aggregates: Sequence[algebra.AggregateSpec],
    compile_arg: Callable[[Expression], Optional[Any]],
) -> Optional[tuple[list, list[tuple[algebra.AggregateSpec, Optional[int]]]]]:
    """Deduplicate aggregate arguments into evaluation slots.

    Returns ``(compiled_args, spec_slots)`` where each distinct argument
    expression was compiled once via ``compile_arg`` and every spec maps to
    its argument's slot (``None`` for ``count(*)``), so ``sum(x)`` next to
    ``avg(x)`` evaluates ``x`` once per group.  Shared by the row tiers and
    the vectorized tier, whose emit loops must stay slot-compatible.
    Returns ``None`` when ``compile_arg`` fails for any argument (only the
    vectorized kernel compiler can fail).
    """
    arg_exprs: list[Expression] = []
    compiled: list = []
    spec_slots: list[tuple[algebra.AggregateSpec, Optional[int]]] = []
    for spec in aggregates:
        if spec.argument is None:  # count(*)
            spec_slots.append((spec, None))
            continue
        for slot, existing in enumerate(arg_exprs):
            if existing == spec.argument:
                break
        else:
            slot = len(arg_exprs)
            evaluate = compile_arg(spec.argument)
            if evaluate is None:
                return None
            arg_exprs.append(spec.argument)
            compiled.append(evaluate)
        spec_slots.append((spec, slot))
    return compiled, spec_slots


def _flatten_and(predicate: Expression) -> list[Expression]:
    """Split nested AND conjunctions into their leaf conjuncts, in order."""
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        conjuncts: list[Expression] = []
        for operand in predicate.operands:
            conjuncts.extend(_flatten_and(operand))
        return conjuncts
    return [predicate]


def _merge_rows(left: Row, right: Row) -> Row:
    """Merge join-side rows.

    Qualified keys from both sides are kept.  A bare key present on both
    sides keeps the left value for the bare name (qualified names remain
    unambiguous), matching the usual SQL behaviour where ambiguous bare
    references should be qualified by the query author.
    """
    merged = dict(right)
    merged.update(left)
    return merged


def _equi_join_columns(
    condition: Expression | None,
) -> tuple[ColumnRef, ColumnRef] | None:
    """Return the (left, right) column refs if the condition is a simple
    equality between two columns, else ``None``."""
    if isinstance(condition, BinaryOp) and condition.op in {"=", "=="}:
        if isinstance(condition.left, ColumnRef) and isinstance(
            condition.right, ColumnRef
        ):
            return condition.left, condition.right
    return None


def _orient_equi_columns(
    left_rows: list[Row],
    right_rows: list[Row],
    equi: tuple[ColumnRef, ColumnRef],
) -> tuple[ColumnRef, ColumnRef]:
    """Assign the equi-join columns to the sides they actually resolve on.

    Samples one row from *each* side (all rows of a side share one shape), so
    a condition written ``right.col = left.col`` is handled no matter which
    side's sample resolves the first column.  If neither orientation resolves
    cleanly the original orientation is kept (the join then matches nothing,
    as before).
    """
    left_col, right_col = equi
    left_sample = left_rows[0]
    right_sample = right_rows[0]
    if _resolves(left_col, left_sample) and _resolves(right_col, right_sample):
        return left_col, right_col
    if _resolves(right_col, left_sample) and _resolves(left_col, right_sample):
        return right_col, left_col
    return left_col, right_col


def _resolves(column: ColumnRef, row: Row) -> bool:
    """Return True if ``column`` can be evaluated against ``row``."""
    try:
        column.evaluate(row)
        return True
    except Exception:
        return False


def _sort_key(value: Any) -> tuple:
    """Total ordering that tolerates None and mixed types."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _compute_aggregate(function: str, values: list) -> Any:
    """Compute one aggregate over the (non-null) argument ``values``."""
    if function == "count":
        return len(values)
    if not values:
        return None
    if function == "sum":
        return sum(values)
    if function == "avg":
        return sum(values) / len(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    raise ExecutionError(f"unsupported aggregate {function!r}")
