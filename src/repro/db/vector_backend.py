"""Optional acceleration backends for the vectorized tier's filter kernels.

The vectorized tier is dependency-free by default: its kernels are pure
Python over the boxed column lists.  When numpy is importable *and*
requested (``REPRO_VECTOR_BACKEND=numpy`` or
``EngineBuilder.vector_backend("numpy")``), filter conjuncts of the shape
``column <cmp> scalar`` / ``column IS [NOT] NULL`` are evaluated as numpy
mask operations over the typed sidecars of :class:`repro.db.table.
ColumnData` — ``array('q')``/``array('d')`` buffers are wrapped zero-copy
via ``frombuffer`` and dictionary columns compare their small-int codes.

The backend is strictly best-effort: a conjunct outside the supported
shapes compiles to no filter, and at run time a boxed (untyped) column is
declined — counted as the ``untyped_column`` fallback reason — as is any
numpy-level surprise (silently, so the authoritative Python kernel
reproduces row-tier values *and* row-tier errors).  When numpy is missing
entirely, ``resolve_backend`` degrades the request to ``"python"`` and the
engine behaves exactly as if no backend had been asked for.
"""

from __future__ import annotations

import operator
import os
from typing import Any, Callable, Optional

from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    IsNull,
    Literal,
    ParameterSlot,
)

try:  # feature detection: numpy is optional and never required
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Recognized backend names.
BACKENDS = ("python", "numpy")

#: Environment variable selecting the default backend.
BACKEND_ENV = "REPRO_VECTOR_BACKEND"

_COMPARISON_OPS: dict[str, Callable] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
}

#: Mirror the comparison when the column sits on the right-hand side.
_FLIPPED = {
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
    "=": "=",
    "==": "==",
    "!=": "!=",
    "<>": "<>",
}


def numpy_available() -> bool:
    """Whether the numpy backend can actually be activated."""
    return _np is not None


def resolve_backend(requested: Optional[str]) -> tuple[str, str]:
    """Resolve a backend request to ``(requested, active)`` names.

    ``None`` consults :data:`BACKEND_ENV`; unknown names and a ``numpy``
    request without numpy installed degrade to ``"python"`` — gracefully,
    because the backend is an accelerator, never a dependency.
    """
    if requested is None:
        requested = os.environ.get(BACKEND_ENV, "python")
    requested = (requested or "python").strip().lower()
    if requested not in BACKENDS:
        requested = "python"
    active = requested
    if active == "numpy" and _np is None:
        active = "python"
    return requested, active


def make_filter_backend(
    active: str, count_reason: Callable[[str], None]
) -> Optional["NumpyFilterBackend"]:
    """The filter backend for an active backend name (``None`` = python)."""
    if active != "numpy" or _np is None:
        return None
    return NumpyFilterBackend(count_reason)


def _null_mask(data) -> Any:
    """Boolean numpy mask of a column's NULL rows."""
    if data.nulls is None:
        return _np.zeros(len(data), dtype=bool)
    return _np.unpackbits(
        _np.frombuffer(bytes(data.nulls), dtype=_np.uint8),
        count=len(data),
        bitorder="little",
    ).astype(bool)


def _positions(mask, selection) -> list:
    """Batch-relative surviving positions for a full-column mask."""
    if selection is None:
        return _np.flatnonzero(mask).tolist()
    return _np.flatnonzero(
        mask[_np.asarray(selection, dtype=_np.intp)]
    ).tolist()


class NumpyFilterBackend:
    """Compiles filter conjuncts to numpy position filters.

    :meth:`position_filter` returns ``None`` for unsupported conjunct
    shapes; a returned filter itself returns ``None`` at run time whenever
    the concrete batch cannot be handled (boxed column, numpy-level type
    surprise), in which case the caller falls back to the Python kernel for
    that conjunct.  Returned position lists are batch-relative, exactly
    like the kernel path's ``keep`` lists.
    """

    def __init__(self, count_reason: Callable[[str], None]) -> None:
        self._count_reason = count_reason

    def position_filter(self, conjunct) -> Optional[Callable]:
        if _np is None:  # pragma: no cover - backend never built then
            return None
        if isinstance(conjunct, IsNull) and isinstance(
            conjunct.operand, ColumnRef
        ):
            return self._is_null_filter(conjunct.operand, conjunct.negated)
        if not isinstance(conjunct, BinaryOp):
            return None
        op = conjunct.op
        if op not in _COMPARISON_OPS:
            return None
        column, scalar = conjunct.left, conjunct.right
        if isinstance(scalar, ColumnRef) and not isinstance(column, ColumnRef):
            column, scalar = scalar, column
            op = _FLIPPED[op]
        if not isinstance(column, ColumnRef) or not isinstance(
            scalar, (Literal, ParameterSlot)
        ):
            return None
        if isinstance(scalar, Literal):
            constant = scalar.value

            def get_scalar() -> Any:
                return constant

        else:
            slots, index = scalar.slots, scalar.index

            def get_scalar() -> Any:
                return slots[index]

        compare = _COMPARISON_OPS[op]
        equality = op in ("=", "==")
        inequality = op in ("!=", "<>")
        count_reason = self._count_reason

        def run(batch) -> Optional[list]:
            name = batch.resolve(column)
            if name is None:
                return None  # kernel path raises / handles resolution
            data, selection = batch.columns[name]
            encoding = getattr(data, "encoding", "boxed")
            value = get_scalar()
            try:
                if encoding in ("int64", "float64"):
                    if value is None:
                        return []  # NULL compares False against every row
                    dtype = _np.int64 if encoding == "int64" else _np.float64
                    values = _np.frombuffer(data.typed, dtype=dtype)
                    mask = _np.asarray(compare(values, value))
                    if mask.shape != values.shape:
                        # Mismatched-type comparison collapsed to a scalar;
                        # let the Python kernel decide row by row.
                        return None
                    if data.nulls is not None:
                        mask = mask & ~_null_mask(data)
                    return _positions(mask, selection)
                if encoding == "dict" and (equality or inequality):
                    if value is None:
                        return []
                    codes = _np.frombuffer(data.codes, dtype=_np.int64)
                    code = data.code_of.get(value, -2)
                    if equality:
                        mask = codes == code
                    else:
                        mask = (codes >= 0) & (codes != code)
                    return _positions(mask, selection)
            except Exception:
                # Silent: the Python kernel reproduces row-tier values and
                # row-tier errors for whatever numpy could not express.
                return None
            if encoding == "boxed":
                count_reason("untyped_column")
            return None

        return run

    def _is_null_filter(
        self, column: ColumnRef, negated: bool
    ) -> Callable:
        count_reason = self._count_reason

        def run(batch) -> Optional[list]:
            name = batch.resolve(column)
            if name is None:
                return None
            data, selection = batch.columns[name]
            if getattr(data, "encoding", "boxed") == "boxed":
                count_reason("untyped_column")
                return None
            try:
                mask = _null_mask(data)
                if negated:
                    mask = ~mask
                return _positions(mask, selection)
            except Exception:
                return None

        return run
