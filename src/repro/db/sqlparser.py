"""A small SQL parser for the SELECT/UPDATE subset used throughout the
reproduction.

Supported grammar (case insensitive keywords)::

    query     := SELECT select_list FROM table_ref (join_clause)*
                 [WHERE predicate] [GROUP BY column_list]
                 [ORDER BY order_list] [LIMIT number]
    select_list := '*' | select_item (',' select_item)*
    select_item := expression [AS name] | agg '(' ('*' | expression) ')' [AS name]
    table_ref  := name [name]            -- optional alias
    join_clause:= JOIN table_ref ON predicate
    update    := UPDATE name SET assignment (',' assignment)*
                 [WHERE predicate]
    assignment:= column '=' expression
    predicate  := disjunction of conjunctions of comparisons,
                  IS [NOT] NULL, IN (literals), NOT, parentheses
    expression := column | qualified column | literal | '?' parameter |
                  arithmetic over expressions | function(expression, ...)

The parser produces a relational algebra tree (:mod:`repro.db.algebra`):
Scan → Join* → Select → Aggregate → Project → Sort → Limit, mirroring SQL
semantics closely enough for the workloads in the paper.  UPDATE statements
parse to :class:`UpdateStatement` — a table name, SET assignments whose
right-hand sides are full expressions (so ``set visits = visits + 1`` works),
and an optional WHERE predicate; both sides support positional ``?``
parameters bound with :func:`bind_update_parameters`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.db import algebra
from repro.db.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Not,
    ParameterSlot,
    conjunction,
)

_AGGREGATES = set(algebra.AGGREGATE_FUNCTIONS)


class SQLSyntaxError(Exception):
    """Raised when the SQL text cannot be parsed."""


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional ``?`` parameter; bound before execution."""

    index: int

    def evaluate(self, row):  # pragma: no cover - bound before execution
        raise SQLSyntaxError(
            f"parameter ?{self.index} was not bound before execution"
        )

    def to_sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class UpdateStatement:
    """A parsed UPDATE statement.

    ``assignments`` maps each target column to the expression producing its
    new value; expressions may reference columns of the updated row (e.g.
    ``counter + 1``) and positional parameters.  ``predicate`` is ``None``
    when the statement has no WHERE clause (every row is updated).
    """

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    predicate: Optional[Expression]

    def to_sql(self) -> str:
        sets = ", ".join(
            f"{column} = {expression.to_sql()}"
            for column, expression in self.assignments
        )
        sql = f"update {self.table} set {sets}"
        if self.predicate is not None:
            sql += f" where {self.predicate.to_sql()}"
        return sql


# -- tokenizer -----------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<op><>|!=|>=|<=|=|<|>|\*|\+|-|/|%|,|\(|\)|\?)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on unknown input."""
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(Token(kind, match.group()))
    return tokens


# -- parser --------------------------------------------------------------


class _Parser:
    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._index = 0
        self._param_count = 0

    # token helpers

    def _peek(self) -> Optional[Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError(f"unexpected end of input in: {self._sql}")
        self._index += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token and token.kind == "name" and token.text.lower() in keywords:
            self._index += 1
            return token.text.lower()
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            got = token.text if token else "<eof>"
            raise SQLSyntaxError(f"expected {keyword.upper()!r}, got {got!r}")

    def _accept_op(self, text: str) -> bool:
        token = self._peek()
        if token and token.kind == "op" and token.text == text:
            self._index += 1
            return True
        return False

    def _expect_op(self, text: str) -> None:
        if not self._accept_op(text):
            token = self._peek()
            got = token.text if token else "<eof>"
            raise SQLSyntaxError(f"expected {text!r}, got {got!r}")

    # grammar

    def parse(self) -> algebra.PlanNode:
        self._expect_keyword("select")
        select_items = self._parse_select_list()
        self._expect_keyword("from")
        plan = self._parse_table_ref()
        while True:
            joined = self._parse_join(plan)
            if joined is None:
                break
            plan = joined
        predicate = None
        if self._accept_keyword("where"):
            predicate = self._parse_predicate()
        group_by: list[ColumnRef] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._parse_column_list()
        order_keys: list[algebra.SortKey] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_keys = self._parse_order_list()
        limit: Optional[int] = None
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number":
                raise SQLSyntaxError(f"expected a number after LIMIT, got {token.text!r}")
            limit = int(token.text)
        if self._peek() is not None:
            raise SQLSyntaxError(
                f"unexpected trailing input near {self._peek().text!r}"
            )
        return self._assemble(
            plan, select_items, predicate, group_by, order_keys, limit
        )

    def parse_update(self) -> UpdateStatement:
        self._expect_keyword("update")
        token = self._next()
        if token.kind != "name" or "." in token.text:
            raise SQLSyntaxError(f"expected a table name, got {token.text!r}")
        table = token.text
        self._expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self._accept_op(","):
            assignments.append(self._parse_assignment())
        predicate = None
        if self._accept_keyword("where"):
            predicate = self._parse_predicate()
        if self._peek() is not None:
            raise SQLSyntaxError(
                f"unexpected trailing input near {self._peek().text!r}"
            )
        return UpdateStatement(table, tuple(assignments), predicate)

    def _parse_assignment(self) -> tuple[str, Expression]:
        token = self._next()
        if token.kind != "name" or "." in token.text:
            raise SQLSyntaxError(
                f"expected a column name to assign, got {token.text!r}"
            )
        self._expect_op("=")
        return (token.text, self._parse_expression())

    # select list

    def _parse_select_list(self):
        if self._accept_op("*"):
            return "*"
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self):
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias_token = self._next()
            alias = alias_token.text
        return (expression, alias)

    # table refs / joins

    def _parse_table_ref(self) -> algebra.Scan:
        token = self._next()
        if token.kind != "name":
            raise SQLSyntaxError(f"expected a table name, got {token.text!r}")
        table = token.text
        alias = None
        nxt = self._peek()
        reserved = {
            "join", "on", "where", "group", "order", "limit", "inner", "left",
        }
        if nxt and nxt.kind == "name" and nxt.text.lower() not in reserved:
            alias = self._next().text
        return algebra.Scan(table, alias)

    def _parse_join(self, left: algebra.PlanNode) -> Optional[algebra.PlanNode]:
        if self._accept_keyword("inner"):
            self._expect_keyword("join")
        elif not self._accept_keyword("join"):
            return None
        right = self._parse_table_ref()
        self._expect_keyword("on")
        condition = self._parse_predicate()
        return algebra.Join(left, right, condition)

    # predicates

    def _parse_predicate(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", tuple(operands))

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        if self._accept_op("("):
            saved = self._index
            try:
                inner = self._parse_predicate()
                self._expect_op(")")
                return inner
            except SQLSyntaxError:
                self._index = saved - 1
        left = self._parse_expression()
        if self._accept_keyword("is"):
            negated = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return IsNull(left, negated)
        if self._accept_keyword("in"):
            self._expect_op("(")
            values = [self._parse_literal_value()]
            while self._accept_op(","):
                values.append(self._parse_literal_value())
            self._expect_op(")")
            return InList(left, tuple(values))
        token = self._peek()
        if token and token.kind == "op" and token.text in {
            "=", "!=", "<>", "<", "<=", ">", ">=",
        }:
            op = self._next().text
            right = self._parse_expression()
            return BinaryOp(op, left, right)
        return left

    def _parse_literal_value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        raise SQLSyntaxError(f"expected a literal, got {token.text!r}")

    # expressions

    def _parse_expression(self) -> Expression:
        return self._parse_additive()

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self._accept_op("+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self._accept_op("-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_primary()
        while True:
            if self._accept_op("*"):
                left = BinaryOp("*", left, self._parse_primary())
            elif self._accept_op("/"):
                left = BinaryOp("/", left, self._parse_primary())
            elif self._accept_op("%"):
                left = BinaryOp("%", left, self._parse_primary())
            else:
                return left

    def _parse_primary(self) -> Expression:
        token = self._next()
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "op" and token.text == "?":
            param = Parameter(self._param_count)
            self._param_count += 1
            return param
        if token.kind == "op" and token.text == "(":
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        if token.kind == "name":
            lowered = token.text.lower()
            if lowered == "null":
                return Literal(None)
            if lowered in {"true", "false"}:
                return Literal(lowered == "true")
            if self._accept_op("("):
                return self._parse_call(token.text)
            if "." in token.text:
                qualifier, name = token.text.split(".", 1)
                return ColumnRef(name, qualifier)
            return ColumnRef(token.text)
        raise SQLSyntaxError(f"unexpected token {token.text!r}")

    def _parse_call(self, name: str) -> Expression:
        lowered = name.lower()
        if self._accept_op("*"):
            self._expect_op(")")
            if lowered != "count":
                raise SQLSyntaxError(f"{name}(*) is only valid for COUNT")
            return _AggregateCall("count", None)
        args = []
        if not self._accept_op(")"):
            args.append(self._parse_expression())
            while self._accept_op(","):
                args.append(self._parse_expression())
            self._expect_op(")")
        if lowered in _AGGREGATES:
            if len(args) != 1:
                raise SQLSyntaxError(
                    f"aggregate {name} requires exactly one argument"
                )
            return _AggregateCall(lowered, args[0])
        return FunctionCall(lowered, tuple(args))

    def _parse_column_list(self) -> list[ColumnRef]:
        columns = [self._parse_column_ref()]
        while self._accept_op(","):
            columns.append(self._parse_column_ref())
        return columns

    def _parse_column_ref(self) -> ColumnRef:
        token = self._next()
        if token.kind != "name":
            raise SQLSyntaxError(f"expected a column name, got {token.text!r}")
        if "." in token.text:
            qualifier, name = token.text.split(".", 1)
            return ColumnRef(name, qualifier)
        return ColumnRef(token.text)

    def _parse_order_list(self) -> list[algebra.SortKey]:
        keys = [self._parse_order_key()]
        while self._accept_op(","):
            keys.append(self._parse_order_key())
        return keys

    def _parse_order_key(self) -> algebra.SortKey:
        column = self._parse_column_ref()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return algebra.SortKey(column, ascending)

    # assembly

    def _assemble(
        self,
        plan: algebra.PlanNode,
        select_items,
        predicate: Optional[Expression],
        group_by: list[ColumnRef],
        order_keys: list[algebra.SortKey],
        limit: Optional[int],
    ) -> algebra.PlanNode:
        if predicate is not None:
            plan = algebra.Select(plan, predicate)

        aggregates: list[algebra.AggregateSpec] = []
        outputs: list[algebra.OutputColumn] = []
        if select_items != "*":
            for position, (expression, alias) in enumerate(select_items):
                if isinstance(expression, _AggregateCall):
                    name = alias or _default_aggregate_name(expression, position)
                    aggregates.append(
                        algebra.AggregateSpec(
                            expression.function, expression.argument, name
                        )
                    )
                    outputs.append(
                        algebra.OutputColumn(ColumnRef(name), name)
                    )
                else:
                    name = alias or _default_output_name(expression, position)
                    outputs.append(algebra.OutputColumn(expression, name))

        if aggregates or group_by:
            plan = algebra.Aggregate(plan, tuple(group_by), tuple(aggregates))
            if select_items != "*" and outputs:
                plan = algebra.Project(plan, tuple(outputs))
        elif select_items != "*" and outputs:
            plan = algebra.Project(plan, tuple(outputs))

        if order_keys:
            plan = algebra.Sort(plan, tuple(order_keys))
        if limit is not None:
            plan = algebra.Limit(plan, limit)
        return plan


@dataclass(frozen=True)
class _AggregateCall(Expression):
    """Internal marker produced by the parser for aggregate calls."""

    function: str
    argument: Optional[Expression]

    def evaluate(self, row):  # pragma: no cover - never evaluated directly
        raise SQLSyntaxError("aggregate call evaluated outside Aggregate node")

    def to_sql(self) -> str:
        arg = self.argument.to_sql() if self.argument is not None else "*"
        return f"{self.function}({arg})"


def _default_output_name(expression: Expression, position: int) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name
    return f"col{position}"


def _default_aggregate_name(call: _AggregateCall, position: int) -> str:
    if call.argument is not None and isinstance(call.argument, ColumnRef):
        return f"{call.function}_{call.argument.name}"
    if call.argument is None:
        return "count_all"
    return f"{call.function}{position}"


def parse_sql(sql: str) -> algebra.PlanNode:
    """Parse SQL text into a relational algebra plan."""
    return _Parser(sql).parse()


def parse_update(sql: str) -> UpdateStatement:
    """Parse an UPDATE statement into an :class:`UpdateStatement`."""
    return _Parser(sql).parse_update()


def bind_update_parameters(
    statement: UpdateStatement, params: Sequence[Any]
) -> UpdateStatement:
    """Return a copy of ``statement`` with positional parameters bound."""
    return _transform_update(statement, _literal_replacer(params))


def bind_update_slots(
    statement: UpdateStatement, slots: list
) -> UpdateStatement:
    """Rewrite every ``?`` in ``statement`` to read from ``slots``.

    The returned statement is the compile-once template of a prepared
    UPDATE: its expressions can be compiled a single time and re-executed by
    writing fresh values into ``slots`` (see
    :class:`repro.db.expressions.ParameterSlot`).
    """
    return _transform_update(statement, _slot_replacer(slots))


def _transform_update(
    statement: UpdateStatement, replace: "Callable[[Parameter], Expression]"
) -> UpdateStatement:
    assignments = tuple(
        (column, _transform_expr(expression, replace))
        for column, expression in statement.assignments
    )
    predicate = (
        _transform_expr(statement.predicate, replace)
        if statement.predicate is not None
        else None
    )
    return UpdateStatement(statement.table, assignments, predicate)


def count_update_parameters(statement: UpdateStatement) -> int:
    """Number of unbound positional parameters in ``statement``."""
    count = sum(
        _count_params(expression) for _, expression in statement.assignments
    )
    if statement.predicate is not None:
        count += _count_params(statement.predicate)
    return count


def bind_parameters(
    plan: algebra.PlanNode, params: Sequence[Any]
) -> algebra.PlanNode:
    """Return a copy of ``plan`` with positional parameters bound to values."""
    return _transform_plan(plan, _literal_replacer(params))


def bind_parameter_slots(
    plan: algebra.PlanNode, slots: list
) -> algebra.PlanNode:
    """Rewrite every ``?`` in ``plan`` to read from the mutable ``slots``.

    This produces the compile-once template of a prepared query: the
    returned plan is a fixed object whose expressions can be lowered a
    single time, after which each execution merely writes fresh parameter
    values into ``slots`` (see
    :class:`repro.db.expressions.ParameterSlot`) — no tree rebuild, no
    recompilation.
    """
    return _transform_plan(plan, _slot_replacer(slots))


def _literal_replacer(params: Sequence[Any]):
    params = list(params)

    def replace(parameter: Parameter) -> Expression:
        if parameter.index >= len(params):
            raise SQLSyntaxError(
                f"missing value for parameter ?{parameter.index}"
            )
        return Literal(params[parameter.index])

    return replace


def _slot_replacer(slots: list):
    def replace(parameter: Parameter) -> Expression:
        return ParameterSlot(parameter.index, slots)

    return replace


def _transform_plan(plan: algebra.PlanNode, replace) -> algebra.PlanNode:
    if isinstance(plan, algebra.Scan):
        return plan
    if isinstance(plan, algebra.Select):
        return algebra.Select(
            _transform_plan(plan.child, replace),
            _transform_expr(plan.predicate, replace),
        )
    if isinstance(plan, algebra.Project):
        outputs = tuple(
            algebra.OutputColumn(_transform_expr(o.expression, replace), o.name)
            for o in plan.outputs
        )
        return algebra.Project(_transform_plan(plan.child, replace), outputs)
    if isinstance(plan, algebra.Join):
        condition = (
            _transform_expr(plan.condition, replace)
            if plan.condition is not None
            else None
        )
        return algebra.Join(
            _transform_plan(plan.left, replace),
            _transform_plan(plan.right, replace),
            condition,
        )
    if isinstance(plan, algebra.Aggregate):
        aggregates = tuple(
            algebra.AggregateSpec(
                a.function,
                _transform_expr(a.argument, replace)
                if a.argument is not None
                else None,
                a.name,
            )
            for a in plan.aggregates
        )
        return algebra.Aggregate(
            _transform_plan(plan.child, replace), plan.group_by, aggregates
        )
    if isinstance(plan, algebra.Sort):
        return algebra.Sort(_transform_plan(plan.child, replace), plan.keys)
    if isinstance(plan, algebra.Limit):
        return algebra.Limit(_transform_plan(plan.child, replace), plan.count)
    raise TypeError(f"cannot bind parameters in {type(plan).__name__}")


def _transform_expr(expression: Expression, replace) -> Expression:
    if isinstance(expression, Parameter):
        return replace(expression)
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.op,
            _transform_expr(expression.left, replace),
            _transform_expr(expression.right, replace),
        )
    if isinstance(expression, BooleanOp):
        return BooleanOp(
            expression.op,
            tuple(_transform_expr(o, replace) for o in expression.operands),
        )
    if isinstance(expression, Not):
        return Not(_transform_expr(expression.operand, replace))
    if isinstance(expression, IsNull):
        return IsNull(
            _transform_expr(expression.operand, replace), expression.negated
        )
    if isinstance(expression, InList):
        return InList(
            _transform_expr(expression.operand, replace), expression.values
        )
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(_transform_expr(a, replace) for a in expression.args),
        )
    return expression


def count_parameters(plan: algebra.PlanNode) -> int:
    """Number of unbound positional parameters in ``plan``."""
    count = 0
    for node in algebra.walk(plan):
        for expression in _node_expressions(node):
            count += _count_params(expression)
    return count


def _node_expressions(node: algebra.PlanNode):
    if isinstance(node, algebra.Select) and node.predicate is not None:
        yield node.predicate
    if isinstance(node, algebra.Join) and node.condition is not None:
        yield node.condition
    if isinstance(node, algebra.Project):
        for output in node.outputs:
            yield output.expression
    if isinstance(node, algebra.Aggregate):
        for spec in node.aggregates:
            if spec.argument is not None:
                yield spec.argument


def _count_params(expression: Expression) -> int:
    if isinstance(expression, Parameter):
        return 1
    count = 0
    if isinstance(expression, BinaryOp):
        count += _count_params(expression.left) + _count_params(expression.right)
    elif isinstance(expression, BooleanOp):
        count += sum(_count_params(o) for o in expression.operands)
    elif isinstance(expression, (Not, IsNull)):
        count += _count_params(expression.operand)
    elif isinstance(expression, InList):
        count += _count_params(expression.operand)
    elif isinstance(expression, FunctionCall):
        count += sum(_count_params(a) for a in expression.args)
    return count
