"""The public client API of the reproduction.

:mod:`repro.api` is the single entry point application code, experiments,
and the CLI use to stand up a complete environment:

* :class:`Engine` — the facade bundling database, network profile, ORM
  mapping registry, and COBRA cost parameters;
* :class:`EngineBuilder` (via ``Engine.builder()``) — fluent construction;
* :func:`connect` — one-call construction, DBAPI style.

See ``examples/quickstart.py`` for an end-to-end walk-through.
"""

from repro.api.engine import Engine, EngineBuilder, EngineConfigError, connect

__all__ = [
    "Engine",
    "EngineBuilder",
    "EngineConfigError",
    "connect",
]
