"""The public client API of the reproduction.

:mod:`repro.api` is the single entry point application code, experiments,
and the CLI use to stand up a complete environment:

* :class:`Engine` — the facade bundling database, network profile, ORM
  mapping registry, and COBRA cost parameters;
* :class:`EngineBuilder` (via ``Engine.builder()``) — fluent construction;
* :func:`connect` — one-call construction, DBAPI style;
* :class:`AsyncEngine` / :class:`AsyncConnection` / :class:`AsyncCursor`
  (:mod:`repro.api.aio`, or ``engine.aio()``) — asyncio sessions whose
  in-flight requests overlap on a shared virtual clock, with pipelined
  batches (one round trip for many statements).

See ``examples/quickstart.py`` for an end-to-end walk-through.
"""

from repro.api.aio import (
    AsyncConnection,
    AsyncCursor,
    AsyncEngine,
    AsyncPipeline,
)
from repro.api.engine import (
    Engine,
    EngineBuilder,
    EngineClosedError,
    EngineConfigError,
    connect,
)

__all__ = [
    "AsyncConnection",
    "AsyncCursor",
    "AsyncEngine",
    "AsyncPipeline",
    "Engine",
    "EngineBuilder",
    "EngineClosedError",
    "EngineConfigError",
    "connect",
]
