"""The unified client-facing engine facade.

Everything a database application (or an experiment harness) needs — the
in-memory :class:`~repro.db.database.Database`, a network profile, an ORM
:class:`~repro.orm.mapping.MappingRegistry`, and the COBRA cost parameters —
is wired in one place by :class:`EngineBuilder` and served by
:class:`Engine`:

    from repro.api import Engine

    engine = (
        Engine.builder()
        .orders_workload(num_orders=5_000, num_customers=500)
        .network("slow-remote")
        .build()
    )

    # DBAPI-style access over the simulated network:
    with engine.cursor() as cursor:
        cursor.execute("select * from orders where o_id = ?", (17,))
        row = cursor.fetchone()

    # ORM session, application runtime, and the optimizer:
    session = engine.session()
    runtime = engine.runtime()
    result = engine.optimize(program_source)

Engines are cheap veneers: the heavyweight state (tables, statistics, the
prepared-statement cache) lives in the database object, so multiple
connections, cursors, sessions, and optimizers created from one engine all
share the same server, exactly like clients of a real database.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Sequence, TYPE_CHECKING, Union

from repro.appsim.runtime import DEFAULT_STATEMENT_COST, AppRuntime
from repro.core.catalog import catalog_for_network, load_catalog
from repro.core.cost_model import CostParameters
from repro.core.heuristic import HeuristicOptimizer, HeuristicResult
from repro.core.optimizer import CobraOptimizer, OptimizationResult
from repro.db.database import Database, PreparedStatement, StatementCacheStats
from repro.db.sharding import ShardedTable
from repro.db.wal import WriteAheadLog
from repro.net.admission import AdmissionController
from repro.net.clock import VirtualClock
from repro.net.connection import ConnectionStats, Cursor, SimulatedConnection
from repro.net.faults import FaultPolicy, FaultStats, RetryPolicy
from repro.net.network import PRESETS, NetworkConditions
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.orm.mapping import MappingRegistry
from repro.orm.session import Session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.aio import AsyncEngine


class EngineConfigError(Exception):
    """Raised when an engine is configured inconsistently."""


class EngineClosedError(Exception):
    """Raised when a closed :class:`Engine` is asked for new resources."""


def _resolve_network(
    network: Union[str, NetworkConditions]
) -> NetworkConditions:
    if isinstance(network, NetworkConditions):
        return network
    preset = PRESETS.get(network)
    if preset is None:
        raise EngineConfigError(
            f"unknown network preset {network!r}; presets are "
            f"{sorted(PRESETS)}"
        )
    return preset


class EngineBuilder:
    """Fluent builder assembling an :class:`Engine` step by step.

    Every setter returns the builder, so configurations read as one chain.
    ``build()`` fills in anything left unset: a fresh empty database, the
    fast-local network, and cost parameters derived from the chosen network.
    """

    def __init__(self) -> None:
        self._database: Optional[Database] = None
        self._network: Union[str, NetworkConditions] = "fast-local"
        self._registry: Optional[MappingRegistry] = None
        self._parameters: Optional[CostParameters] = None
        self._amortization: float = 1.0
        self._statement_cost: float = DEFAULT_STATEMENT_COST
        self._region_rules: Optional[Sequence] = None
        self._fir_rules: Optional[Sequence] = None
        self._shards: Optional[tuple[int, Optional[dict[str, str]]]] = None
        self._wal: Union[bool, WriteAheadLog] = False
        self._wal_flush: tuple[float, float] = (0.0, 0.0)
        self._faults: Optional[FaultPolicy] = None
        self._retries: Optional[RetryPolicy] = None
        self._mvcc = False
        self._admission: Optional[AdmissionController] = None
        self._tracing: Optional[dict] = None
        self._slow_query_threshold: Optional[float] = None
        self._vector_backend: Optional[str] = None
        self._parallel: Optional[tuple[Optional[int], str]] = None

    # -- data sources ----------------------------------------------------

    def database(self, database: Database) -> "EngineBuilder":
        """Use an existing database instance."""
        self._database = database
        return self

    def orders_workload(
        self,
        num_orders: int = 2_000,
        num_customers: Optional[int] = None,
        seed: int = 7,
    ) -> "EngineBuilder":
        """Build the TPC-DS-like orders/customer workload database.

        Also installs the orders ORM mapping registry unless one was set
        explicitly.
        """
        from repro.workloads import tpcds

        if num_customers is None:
            num_customers = max(num_orders // 10, 10)
        self._database = tpcds.build_orders_database(
            num_orders, num_customers, seed
        )
        if self._registry is None:
            self._registry = tpcds.build_registry()
        return self

    def wilos_workload(self, scale: int = 2_000) -> "EngineBuilder":
        """Build the Wilos-like project-management workload database."""
        from repro.workloads.wilos import build_wilos_database

        self._database = build_wilos_database(scale=scale)
        return self

    # -- environment -----------------------------------------------------

    def network(
        self, network: Union[str, NetworkConditions]
    ) -> "EngineBuilder":
        """Network conditions: a preset name or explicit parameters."""
        self._network = network
        return self

    def registry(self, registry: MappingRegistry) -> "EngineBuilder":
        """ORM mapping registry for sessions and region analysis."""
        self._registry = registry
        return self

    def cost_parameters(self, parameters: CostParameters) -> "EngineBuilder":
        """Explicit COBRA cost parameters (overrides network derivation)."""
        self._parameters = parameters
        return self

    def catalog_file(self, path: Union[str, Path]) -> "EngineBuilder":
        """Load cost parameters from a cost catalog JSON file."""
        self._parameters = load_catalog(path)
        return self

    def amortization(self, factor: float) -> "EngineBuilder":
        """Amortization factor AF applied to the cost parameters."""
        self._amortization = factor
        return self

    def statement_cost(self, seconds: float) -> "EngineBuilder":
        """Per-imperative-statement cost CZ used by runtimes."""
        self._statement_cost = seconds
        return self

    def shards(
        self, count: int, key_by: Optional[dict[str, str]] = None
    ) -> "EngineBuilder":
        """Shard the database horizontally over ``count`` hash partitions.

        ``key_by`` maps table name to shard-key column; tables it omits
        stay unsharded.  Without ``key_by``, every table with a primary key
        is sharded on that key.  Applied after the workload database is
        built, so it composes with :meth:`orders_workload` /
        :meth:`wilos_workload` / :meth:`database`::

            engine = (
                Engine.builder()
                .orders_workload(num_orders=100_000)
                .shards(8, key_by={
                    "orders": "o_customer_sk",
                    "customer": "c_customer_sk",
                })
                .build()
            )
        """
        if count < 1:
            raise EngineConfigError(
                f"shard count must be at least 1, got {count}"
            )
        self._shards = (count, dict(key_by) if key_by is not None else None)
        return self

    def wal(
        self,
        log: Union[bool, WriteAheadLog] = True,
        *,
        flush_seconds: float = 0.0,
        group_window: float = 0.0,
    ) -> "EngineBuilder":
        """Enable write-ahead logging on the built database.

        Applied after the workload is built and sharded, so the log starts
        with a self-contained checkpoint (schema + sharding DDL + bulk
        inserts) and ``Database.recover`` reproduces the full engine state.
        Pass an existing :class:`~repro.db.wal.WriteAheadLog` to append to
        it instead of starting fresh.

        ``flush_seconds`` gives each COMMIT a virtual flush cost;
        ``group_window`` enables group commit — commits within the window
        of the last flush piggyback on it for free
        (:meth:`repro.db.wal.WriteAheadLog.commit_flush`).
        """
        self._wal = log
        self._wal_flush = (flush_seconds, group_window)
        return self

    def mvcc(self, enabled: bool = True) -> "EngineBuilder":
        """Enable MVCC snapshot reads and first-committer-wins writes.

        Transactions write new row versions instead of mutating in place;
        every statement — inside or outside a transaction — reads a
        consistent snapshot as-of its context's start timestamp
        (:mod:`repro.db.mvcc`).
        """
        self._mvcc = enabled
        return self

    def admission(
        self,
        limit: int,
        *,
        per_connection: Optional[int] = None,
        queue_timeout: Optional[float] = None,
        priority_slots: int = 0,
    ) -> "EngineBuilder":
        """Bound server concurrency with an admission controller.

        At most ``limit`` requests execute concurrently; excess arrivals
        wait in a FIFO queue in virtual time (charged to their latency),
        optionally bounded by ``queue_timeout`` and shaped by
        ``per_connection`` caps and ``priority_slots``
        (:mod:`repro.net.admission`).
        """
        self._admission = AdmissionController(
            limit,
            per_connection=per_connection,
            queue_timeout=queue_timeout,
            priority_slots=priority_slots,
        )
        return self

    def tracing(
        self,
        enabled: bool = True,
        *,
        max_traces: int = 256,
        slow_query_threshold: Optional[float] = None,
    ) -> "EngineBuilder":
        """Record a structured :class:`repro.obs.trace.QueryTrace` per request.

        Every statement executed through a connection gets one trace whose
        nested spans (parse, plan, route, network round trip, execute, WAL
        flush, admission wait, fault retries) decompose exactly the virtual
        latency the statement was charged.  ``slow_query_threshold`` (virtual
        seconds) additionally copies traces slower than the threshold into
        the tracer's slow-query log.  Tracing off (the default) costs one
        attribute check per request.
        """
        self._tracing = {
            "enabled": enabled,
            "max_traces": max_traces,
        }
        self._slow_query_threshold = slow_query_threshold
        return self

    def slow_query_threshold(self, seconds: float) -> "EngineBuilder":
        """Log traces charged more than ``seconds`` of virtual latency.

        Implies :meth:`tracing` if it was not requested explicitly.
        """
        if self._tracing is None:
            self._tracing = {"enabled": True, "max_traces": 256}
        self._slow_query_threshold = seconds
        return self

    def faults(self, policy: FaultPolicy) -> "EngineBuilder":
        """Inject deterministic network faults on every connection.

        Unless :meth:`retries` is also called, a default
        :class:`~repro.net.faults.RetryPolicy` is installed alongside, so
        retryable faults converge instead of surfacing immediately.
        """
        self._faults = policy
        return self

    def fault_rate(self, rate: float, seed: int = 0) -> "EngineBuilder":
        """Shorthand for :meth:`faults` with a fresh seeded policy."""
        return self.faults(FaultPolicy(rate, seed=seed))

    def retries(self, policy: RetryPolicy) -> "EngineBuilder":
        """Retry policy applied by connections to injected faults."""
        self._retries = policy
        return self

    def vector_backend(self, backend: str) -> "EngineBuilder":
        """Filter-kernel backend for the vectorized tier.

        ``"numpy"`` evaluates supported filter conjuncts as numpy mask
        operations over the typed column sidecars; it degrades gracefully
        to ``"python"`` when numpy is not importable (the backend is an
        accelerator, never a dependency).  Overrides the
        ``REPRO_VECTOR_BACKEND`` environment default.
        """
        self._vector_backend = backend
        return self

    def parallel(
        self, workers: Optional[int] = None, mode: str = "thread"
    ) -> "EngineBuilder":
        """Parallel scatter-gather over shards on a worker pool.

        ``mode`` selects ``"thread"`` (shared-memory worker threads, the
        default), ``"process"`` (worker processes fed pickled
        ColumnBatches built on the typed column sidecars), or ``"serial"``
        (the sequential baseline).  ``workers=None`` sizes the pool to the
        CPU count.  Composes with :meth:`shards`::

            engine = (
                Engine.builder()
                .orders_workload(num_orders=100_000)
                .shards(8)
                .parallel(workers=8)
                .build()
            )
        """
        self._parallel = (workers, mode)
        return self

    def region_rules(self, rules: Sequence) -> "EngineBuilder":
        """Override the optimizer's region transformation rules."""
        self._region_rules = rules
        return self

    def fir_rules(self, rules: Sequence) -> "EngineBuilder":
        """Override the optimizer's F-IR transformation rules."""
        self._fir_rules = rules
        return self

    # -- assembly --------------------------------------------------------

    def build(self) -> "Engine":
        """Assemble the engine, deriving every unset component."""
        network = _resolve_network(self._network)
        parameters = self._parameters
        if parameters is None:
            parameters = catalog_for_network(network)
        if self._amortization != 1.0:
            parameters = parameters.with_amortization(self._amortization)
        database = self._database if self._database is not None else Database()
        if self._vector_backend is not None:
            # Before sharding: shard-local executors are built with the
            # database executor's backend, so the order matters.
            database.set_vector_backend(self._vector_backend)
        if self._shards is not None:
            count, key_by = self._shards
            if key_by is None:
                key_by = {
                    name: table.schema.primary_key
                    for name, table in database.tables.items()
                    if table.schema.primary_key is not None
                    and not isinstance(table, ShardedTable)
                }
            for table_name, key in key_by.items():
                database.shard_table(table_name, key, count)
        if self._parallel is not None:
            workers, parallel_mode = self._parallel
            database.set_parallel(workers, parallel_mode)
        # Identity test: an empty WriteAheadLog is falsy (it has __len__)
        # but attaching one must still enable durability.
        if self._wal is not False and database.wal is None:
            database.enable_wal(
                self._wal if isinstance(self._wal, WriteAheadLog) else None
            )
        if database.wal is not None:
            flush_seconds, group_window = self._wal_flush
            if flush_seconds or group_window:
                database.wal.flush_seconds = flush_seconds
                database.wal.group_window = group_window
        if self._mvcc and not database.mvcc_enabled:
            database.enable_mvcc()
        retries = self._retries
        if retries is None and self._faults is not None:
            retries = RetryPolicy()
        metrics = MetricsRegistry()
        tracer = None
        if self._tracing is not None:
            tracer = Tracer(
                enabled=self._tracing["enabled"],
                max_traces=self._tracing["max_traces"],
                slow_query_threshold=self._slow_query_threshold,
            )
            tracer.bind_registry(metrics)
            database._tracer = tracer
        return Engine(
            database=database,
            network=network,
            parameters=parameters,
            registry=self._registry,
            statement_cost=self._statement_cost,
            region_rules=self._region_rules,
            fir_rules=self._fir_rules,
            faults=self._faults,
            retries=retries,
            admission=self._admission,
            tracer=tracer,
            metrics=metrics,
        )


class Engine:
    """One database application environment: server, network, ORM, optimizer.

    Construct via :meth:`Engine.builder` (or :func:`repro.api.connect`).
    The engine hands out connections, cursors, ORM sessions, application
    runtimes, and optimizers that all share the same underlying database —
    including its engine-level prepared-statement cache.
    """

    def __init__(
        self,
        database: Database,
        network: NetworkConditions,
        parameters: CostParameters,
        registry: Optional[MappingRegistry] = None,
        statement_cost: float = DEFAULT_STATEMENT_COST,
        region_rules: Optional[Sequence] = None,
        fir_rules: Optional[Sequence] = None,
        faults: Optional[FaultPolicy] = None,
        retries: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionController] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.database = database
        self.network = network
        self.parameters = parameters
        self.registry = registry
        self.statement_cost = statement_cost
        #: fault/retry policies shared by every connection this engine
        #: hands out (None = reliable network, no retry layer).
        self.faults = faults
        self.retries = retries
        #: server-side admission controller shared by every connection
        #: (None = infinite server capacity).
        self.admission = admission
        #: per-request structured tracer (None unless the builder asked for
        #: tracing); shared by every connection this engine hands out.
        self.tracer = tracer
        #: metrics registry; subsystem counters are registered as live
        #: views so ``metrics().as_dict()`` is always current.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._register_subsystem_views()
        self._region_rules = region_rules
        self._fir_rules = fir_rules
        self._connection: Optional[SimulatedConnection] = None
        #: open connections handed out by this engine (closed on close());
        #: individually-closed ones are pruned on the next connect, their
        #: counters folded into _retired_stats so stats() stays complete.
        self._connections: list[SimulatedConnection] = []
        self._retired_stats = ConnectionStats()
        self._total_connections = 0
        self._closed = False

    def _register_subsystem_views(self) -> None:
        """Register live subsystem counter views on the metrics registry.

        Views are zero-cost until rendered: each one re-reads the
        subsystem's own stats dict when ``metrics().as_dict()`` is built.
        """
        registry = self._metrics
        if "statement_cache" not in registry.views:
            cache = self.database.statement_cache
            registry.register_view(
                "statement_cache",
                lambda: {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evictions": cache.evictions,
                    "invalidations": cache.invalidations,
                },
            )
        if "execution" not in registry.views:
            registry.register_view("execution", self.database.execution_stats)
        if "feedback" not in registry.views:
            registry.register_view(
                "feedback", self.database.statistics.feedback_stats
            )
        wal = self.database.wal
        if wal is not None and "wal" not in registry.views:
            wal.register_metrics(registry)
        mvcc = self.database._mvcc
        if mvcc is not None and "mvcc" not in registry.views:
            mvcc.register_metrics(registry)
        if self.admission is not None and "admission" not in registry.views:
            self.admission.register_metrics(registry)

    @staticmethod
    def builder() -> EngineBuilder:
        """A fresh :class:`EngineBuilder`."""
        return EngineBuilder()

    # -- connections and cursors -----------------------------------------

    @property
    def connection(self) -> SimulatedConnection:
        """The engine's shared default connection (created lazily)."""
        if self._connection is None:
            self._connection = self.connect()
        return self._connection

    def connect(self, clock: Optional["VirtualClock"] = None) -> SimulatedConnection:
        """A new connection with its own virtual clock and statistics.

        Pass ``clock`` to share a clock between connections (the async
        engine does this so in-flight requests of different connections can
        overlap).  Connections are tracked and closed by
        :meth:`Engine.close`.
        """
        if self._closed:
            raise EngineClosedError("engine is closed")
        self._prune_closed()
        connection = SimulatedConnection(
            self.database,
            self.network,
            clock=clock,
            faults=self.faults,
            retries=self.retries,
            admission=self.admission,
            tracer=self.tracer,
        )
        self._connections.append(connection)
        self._total_connections += 1
        return connection

    def _prune_closed(self) -> None:
        """Fold individually-closed connections into the retired totals.

        Keeps a long-lived engine bounded under connection churn (one
        short-lived connection per request) without losing their counters
        from :meth:`stats`.
        """
        live: list[SimulatedConnection] = []
        retired = self._retired_stats
        for connection in self._connections:
            if connection.closed:
                stats = connection.stats
                retired.queries += stats.queries
                retired.round_trips += stats.round_trips
                retired.batches += stats.batches
                retired.rows_transferred += stats.rows_transferred
                retired.bytes_transferred += stats.bytes_transferred
                retired.network_time += stats.network_time
                retired.server_time += stats.server_time
                retired.queue_time += stats.queue_time
            else:
                live.append(connection)
        self._connections = live

    def cursor(self) -> Cursor:
        """A DBAPI-style cursor over the shared default connection."""
        return self.connection.cursor()

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare a statement in the engine-level statement cache."""
        if self._closed:
            raise EngineClosedError("engine is closed")
        return self.database.prepare(sql)

    def aio(self, clock: Optional["VirtualClock"] = None) -> "AsyncEngine":
        """An :class:`repro.api.aio.AsyncEngine` over this engine.

        Connections handed out by the returned async engine share one
        virtual clock, so concurrent clients pay max-latency rather than
        sum-latency; the server state (tables, statement cache) remains this
        engine's.
        """
        from repro.api.aio import AsyncEngine

        return AsyncEngine(self, clock=clock)

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Close the engine and every connection it handed out (idempotent).

        The database itself (tables, statistics, statement cache) is left
        intact — engines are cheap veneers and several may serve one
        database over its lifetime.
        """
        self._closed = True
        for connection in self._connections:
            connection.close()
        # Worker threads/processes are the one engine-scoped resource the
        # database holds; the pool re-creates them lazily if another engine
        # keeps issuing parallel scatters against the same database.
        self.database.close_parallel()

    def __enter__(self) -> "Engine":
        if self._closed:
            raise EngineClosedError("engine is closed")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- statistics ------------------------------------------------------

    @property
    def statement_cache_stats(self) -> StatementCacheStats:
        """Hit/miss/eviction counters of the statement cache."""
        return self.database.statement_cache

    def metrics(self) -> MetricsRegistry:
        """The engine's metrics registry (instruments + subsystem views).

        Always present, even with tracing off — subsystems register their
        counters as live views at engine construction, and the tracer (when
        enabled) mirrors per-kind latency histograms into it.  Rendered by
        ``repro.cli --metrics``.
        """
        return self._metrics

    def stats(self) -> dict:
        """One aggregated snapshot of engine-level counters.

        Combines the prepared-statement cache counters with the network
        counters of every connection this engine handed out (including the
        shared default connection), plus the server-side executed-query
        count and the executor's per-tier execution counters (vectorized /
        compiled / interpreted).  Surfaced by ``repro.cli --stats``.
        """
        cache = self.database.statement_cache
        retired = self._retired_stats
        queries = retired.queries
        round_trips = retired.round_trips
        batches = retired.batches
        rows = retired.rows_transferred
        transferred = retired.bytes_transferred
        network_time = retired.network_time
        server_time = retired.server_time
        queue_time = retired.queue_time
        for connection in self._connections:
            stats = connection.stats
            queries += stats.queries
            round_trips += stats.round_trips
            batches += stats.batches
            rows += stats.rows_transferred
            transferred += stats.bytes_transferred
            network_time += stats.network_time
            server_time += stats.server_time
            queue_time += stats.queue_time
        return {
            "statement_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
            },
            "network": {
                "connections": self._total_connections,
                "queries": queries,
                "round_trips": round_trips,
                "batches": batches,
                "rows_transferred": rows,
                "bytes_transferred": transferred,
                "network_time": network_time,
                "server_time": server_time,
                "queue_time": queue_time,
            },
            "database": {
                "queries_executed": self.database.queries_executed,
            },
            "execution": self.database.execution_stats(),
            "sharding": self.database.sharding_stats(),
            "wal": self.database.wal_stats(),
            "mvcc": self.database.mvcc_stats(),
            "admission": (
                self.admission.as_dict()
                if self.admission is not None
                else {"enabled": False}
            ),
            "faults": (
                self.faults.stats.as_dict()
                if self.faults is not None
                else FaultStats().as_dict()
            ),
            "tracing": (
                self.tracer.stats_dict()
                if self.tracer is not None
                else {"enabled": False}
            ),
            "metrics": self._metrics.summary(),
            "feedback": self.database.statistics.feedback_stats(),
        }

    # -- ORM and application runtime -------------------------------------

    def session(
        self, connection: Optional[SimulatedConnection] = None
    ) -> Session:
        """An ORM session over ``connection`` (default: a new connection)."""
        registry = self.registry if self.registry is not None else MappingRegistry()
        return Session(registry, connection or self.connect())

    def runtime(self) -> AppRuntime:
        """A fresh application runtime wired to this engine's components."""
        return AppRuntime(
            database=self.database,
            network=self.network,
            registry=self.registry,
            statement_cost=self.statement_cost,
        )

    # -- optimization ----------------------------------------------------

    def optimizer(self, **overrides: Any) -> CobraOptimizer:
        """A COBRA optimizer over this engine's database and parameters.

        Keyword overrides are passed through to
        :class:`~repro.core.optimizer.CobraOptimizer` (e.g. ``max_passes``).
        """
        kwargs: dict[str, Any] = {
            "registry": self.registry,
        }
        if self._region_rules is not None:
            kwargs["region_rules"] = self._region_rules
        if self._fir_rules is not None:
            kwargs["fir_rules"] = self._fir_rules
        kwargs.update(overrides)
        return CobraOptimizer(self.database, self.parameters, **kwargs)

    def optimize(
        self, source: str, function_name: Optional[str] = None
    ) -> OptimizationResult:
        """One-shot cost-based optimization of a program source."""
        return self.optimizer().optimize(source, function_name=function_name)

    def heuristic_rewrite(
        self, source: str, function_name: Optional[str] = None
    ) -> HeuristicResult:
        """The always-push-to-SQL heuristic rewrite (no cost-based choice)."""
        heuristic = HeuristicOptimizer(
            self.database,
            self.parameters,
            registry=self.registry,
            fir_rules=self._fir_rules,
        )
        return heuristic.rewrite(source, function_name=function_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Engine tables={sorted(self.database.tables)} "
            f"network={self.network.name!r}>"
        )


def connect(
    database: Optional[Database] = None,
    network: Union[str, NetworkConditions] = "fast-local",
    registry: Optional[MappingRegistry] = None,
    parameters: Optional[CostParameters] = None,
    amortization: float = 1.0,
) -> Engine:
    """One-call engine construction (the classic DBAPI entry-point shape)."""
    builder = Engine.builder().network(network).amortization(amortization)
    if database is not None:
        builder.database(database)
    if registry is not None:
        builder.registry(registry)
    if parameters is not None:
        builder.cost_parameters(parameters)
    return builder.build()
