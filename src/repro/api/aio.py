"""Asynchronous, pipeline-capable sessions over the engine facade.

The paper's premise is that application↔database round trips dominate
end-to-end latency.  Synchronous clients can only serialise those round
trips; this module adds the other two levers a real driver offers:

* **Concurrency** — :class:`AsyncEngine` hands out
  :class:`AsyncConnection`\\ s that all share one virtual clock.  Requests
  issued while another request is in flight *overlap*: each request captures
  its start time, computes its own duration, and moves the shared clock
  forward only to its completion time (:meth:`VirtualClock.advance_to`).  N
  clients issuing requests concurrently (``asyncio.gather``) therefore pay
  the **maximum** latency, not the sum — while strictly sequential awaits
  remain additive, exactly like a real event-loop client.

* **Pipelining** — :meth:`AsyncConnection.pipeline` (and
  :meth:`AsyncCursor.executemany`) batch many statements into one round
  trip, sharing :class:`repro.net.connection.Pipeline` with the sync API.

Usage::

    from repro.api.aio import AsyncEngine

    aengine = AsyncEngine(engine)          # or engine.aio()

    async def client(key):
        async with aengine.connect() as conn:
            cur = conn.cursor()
            await cur.execute("select * from orders where o_id = ?", (key,))
            return await cur.fetchall()

    rows = await asyncio.gather(client(1), client(2), client(3))
    aengine.elapsed                        # ≈ max client latency, not sum

Execution and results are byte-identical to the synchronous path — only the
clock accounting differs.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Iterable, Optional, Sequence, TYPE_CHECKING

from repro.db.database import PreparedStatement, QueryResult, Transaction
from repro.net.clock import VirtualClock
from repro.net.connection import (
    Cursor,
    CursorError,
    Pipeline,
    PipelineResult,
    SimulatedConnection,
    _install_executemany_results,
)
from repro.db.mvcc import SerializationError
from repro.net.faults import AmbiguousCommitError, FaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.engine import Engine


async def _overlap(connection: SimulatedConnection, measure):
    """Run one in-flight request with overlapping clock accounting.

    ``measure`` performs the server-side work and returns ``(value,
    elapsed)`` *without* touching the clock.  The request's start time is
    captured first, then control is yielded to the event loop so every
    request issued in the same scheduling round captures the same start
    before anyone advances the clock; finally the clock moves forward to
    this request's completion time.  Concurrent requests thus cost
    ``max(durations)``, sequential ones remain additive.

    A surfaced fault (:class:`repro.net.faults.FaultError` /
    :class:`repro.net.faults.AmbiguousCommitError`) carries
    ``virtual_elapsed`` — the virtual time the failed exchange burned,
    retries and backoff included — which overlaps the clock the same way
    before the exception propagates.
    """
    start = connection.clock.now
    try:
        value, elapsed = measure()
    except (FaultError, AmbiguousCommitError) as exc:
        await asyncio.sleep(0)
        connection.clock.advance_to(start + exc.virtual_elapsed)
        raise
    await asyncio.sleep(0)
    before = connection.clock.now
    connection.clock.advance_to(start + elapsed)
    tracer = connection._tracer
    if tracer is not None and tracer.enabled:
        # The trace recorded the request's own duration; note how much of
        # it the shared clock actually charged after overlapping with the
        # other in-flight requests of this scheduling round.
        charged = connection.clock.now - before
        tracer.annotate_last(
            overlap_start=start, overlap_charged=charged
        )
    return value


class AsyncConnection:
    """An awaitable connection over the simulated network.

    Wraps one :class:`SimulatedConnection` whose clock is (typically) shared
    with every other connection of the same :class:`AsyncEngine`, which is
    what lets in-flight requests overlap.
    """

    def __init__(self, connection: SimulatedConnection) -> None:
        self._connection = connection

    # -- execution -------------------------------------------------------

    async def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a SELECT; overlaps with other in-flight requests."""
        return await self.execute_prepared(
            self._connection.prepare(sql), params
        )

    async def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute an already-prepared SELECT with overlap accounting."""
        connection = self._connection
        return await _overlap(
            connection,
            lambda: connection._with_faults(
                "query",
                lambda: connection._measure_prepared(
                    statement, tuple(params)
                ),
                idempotent=True,
            ),
        )

    async def execute_update(
        self, sql: str, params: Sequence[Any] = ()
    ) -> int:
        """Execute an UPDATE; overlaps with other in-flight requests."""
        return await self.execute_update_prepared(
            self._connection.prepare(sql), params
        )

    async def execute_update_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> int:
        """Execute an already-prepared UPDATE with overlap accounting.

        Writes are not idempotent: under an active fault policy a
        response-path fault surfaces as
        :class:`repro.net.faults.AmbiguousCommitError` rather than being
        retried, exactly like the synchronous path.
        """
        connection = self._connection
        return await _overlap(
            connection,
            lambda: connection._with_faults(
                "update",
                lambda: connection._measure_update_prepared(
                    statement, tuple(params)
                ),
                idempotent=False,
            ),
        )

    async def execute_lookup(
        self, table: str, key_column: str, key_value: Any
    ) -> QueryResult:
        """Async point lookup through the cached per-(table, column) plan."""
        statement = self._connection.lookup_statement(table, key_column)
        return await self.execute_prepared(statement, (key_value,))

    # -- transactions ----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while a transaction begun on this connection is open."""
        return self._connection.in_transaction

    async def begin(self) -> Transaction:
        """Open a server transaction on this connection (one round trip)."""
        connection = self._connection
        connection._check_open()

        def measure() -> tuple[Transaction, float]:
            txn = connection.database.begin()
            connection._txn = txn
            connection.stats.round_trips += 1
            connection.stats.network_time += (
                connection.network.round_trip_seconds
            )
            return txn, connection.network.round_trip_seconds

        return await _overlap(connection, measure)

    async def commit(self) -> None:
        """Commit the open transaction (no-op without one, per PEP 249).

        A lost in-flight COMMIT reply surfaces as
        :class:`repro.net.faults.AmbiguousCommitError`, and an MVCC write
        conflict as :class:`repro.db.mvcc.SerializationError` — see
        :meth:`repro.net.connection.SimulatedConnection.commit`.
        """
        connection = self._connection
        connection._check_open()
        txn = connection._txn
        if txn is None or not txn.active:
            connection._txn = None
            return
        try:
            await _overlap(
                connection,
                lambda: connection._with_faults(
                    "commit",
                    lambda: connection._measure_commit(txn),
                    idempotent=False,
                ),
            )
        except SerializationError:
            # First-committer-wins: the server aborted this transaction.
            # Charge the failed exchange's round trip with overlap
            # accounting and drop the reference, mirroring the sync path.
            connection._txn = None
            rtt = connection.network.round_trip_seconds
            connection.clock.advance_to(connection.clock.now + rtt)
            connection.stats.round_trips += 1
            connection.stats.network_time += rtt
            if connection.faults is not None:
                connection.faults.stats.serialization_conflicts += 1
            raise
        except AmbiguousCommitError:
            # The server committed; only the reply was lost — drop the
            # finished transaction reference.
            connection._txn = None
            raise
        except FaultError:
            # The COMMIT never reached the server: the transaction is still
            # active server-side, so keep the reference for
            # rollback()/close() to release.
            raise
        connection._txn = None

    async def rollback(self) -> None:
        """Roll back the open transaction (no-op without one, not faulted)."""
        connection = self._connection
        connection._check_open()
        txn = connection._txn
        connection._txn = None
        if txn is None or not txn.active:
            return

        def measure() -> tuple[None, float]:
            txn.rollback()
            connection.stats.round_trips += 1
            connection.stats.network_time += (
                connection.network.round_trip_seconds
            )
            return None, connection.network.round_trip_seconds

        await _overlap(connection, measure)

    # -- derived objects -------------------------------------------------

    def cursor(self) -> "AsyncCursor":
        """An async PEP 249-shaped cursor over this connection."""
        self._connection._check_open()
        return AsyncCursor(self)

    def pipeline(self) -> "AsyncPipeline":
        """An awaitable batch context: many statements, one round trip."""
        return AsyncPipeline(self._connection.pipeline())

    # -- lifecycle and bookkeeping ---------------------------------------

    @property
    def raw(self) -> SimulatedConnection:
        """The underlying synchronous connection (stats, clock, database)."""
        return self._connection

    @property
    def stats(self):
        return self._connection.stats

    @property
    def elapsed(self) -> float:
        """Current virtual time on the (shared) clock."""
        return self._connection.clock.now

    @property
    def closed(self) -> bool:
        return self._connection.closed

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._connection.close()

    async def __aenter__(self) -> "AsyncConnection":
        self._connection._check_open()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()


class AsyncPipeline:
    """Async wrapper over :class:`repro.net.connection.Pipeline`.

    Queueing is synchronous (nothing touches the wire); ``await flush()``
    ships the batch in one round trip with overlap accounting, so even a
    pipelined batch from one client can overlap another client's in-flight
    work on the shared clock.
    """

    def __init__(self, pipeline: Pipeline) -> None:
        self._pipeline = pipeline

    def execute(self, sql: str, params: Sequence[Any] = ()) -> PipelineResult:
        """Queue one statement; returns its result handle."""
        return self._pipeline.execute(sql, params)

    def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> PipelineResult:
        """Queue an already-prepared statement."""
        return self._pipeline.execute_prepared(statement, params)

    def __len__(self) -> int:
        return len(self._pipeline)

    async def flush(self) -> None:
        """Ship the queued batch in one overlapping round trip.

        Partial-failure semantics match the synchronous pipeline: the clock
        is charged, every handle is filled (results, error, or aborted
        marker), and the first statement error is re-raised.
        """
        connection = self._pipeline.connection
        error = await _overlap(connection, self._pipeline._measure_flush)
        if error is not None:
            raise error

    async def __aenter__(self) -> "AsyncPipeline":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            await self.flush()
        else:
            self._pipeline.discard()


class AsyncCursor:
    """An async PEP 249-shaped cursor: ``await execute`` / ``fetch*``.

    Result-set semantics (``description``, ``rowcount``, fetch order) are
    identical to the synchronous :class:`repro.net.connection.Cursor`; only
    the clock accounting is asynchronous.
    """

    def __init__(self, connection: AsyncConnection) -> None:
        self.connection = connection
        self.arraysize = 1
        self.description: Optional[list[tuple]] = None
        self.rowcount = -1
        self._rows: Optional[list[dict]] = None
        self._index = 0
        self._closed = False

    # -- execution -------------------------------------------------------

    async def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> "AsyncCursor":
        """Prepare (or re-use) and execute one SQL statement."""
        self._check_open()
        statement = self.connection._connection.prepare(sql)
        return await self.execute_prepared(statement, params)

    async def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> "AsyncCursor":
        """Execute an already-prepared statement through this cursor."""
        self._check_open()
        if statement.is_query:
            result = await self.connection.execute_prepared(statement, params)
            self._rows = result.rows
            self._index = 0
            self.rowcount = result.cardinality
            self.description = Cursor._describe(result, statement)
        else:
            changed = await self.connection.execute_update_prepared(
                statement, params
            )
            self._rows = None
            self._index = 0
            self.rowcount = changed
            self.description = None
        return self

    async def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> "AsyncCursor":
        """Execute once per parameter tuple — pipelined into one round trip."""
        self._check_open()
        statement = self.connection._connection.prepare(sql)
        pipeline = self.connection.pipeline()
        handles = [
            pipeline.execute_prepared(statement, params)
            for params in seq_of_params
        ]
        await pipeline.flush()
        _install_executemany_results(self, statement, handles)
        return self

    # -- fetching --------------------------------------------------------

    async def fetchone(self) -> Optional[dict]:
        """Next row of the result set, or ``None`` when exhausted."""
        rows = self._result_set()
        if self._index >= len(rows):
            return None
        row = rows[self._index]
        self._index += 1
        return row

    async def fetchmany(self, size: Optional[int] = None) -> list[dict]:
        """The next ``size`` rows (default :attr:`arraysize`)."""
        rows = self._result_set()
        if size is None:
            size = self.arraysize
        chunk = rows[self._index : self._index + size]
        self._index += len(chunk)
        return chunk

    async def fetchall(self) -> list[dict]:
        """Every remaining row of the result set."""
        rows = self._result_set()
        chunk = rows[self._index :]
        self._index = len(rows)
        return chunk

    async def __aiter__(self) -> AsyncIterator[dict]:
        while True:
            row = await self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the result set; subsequent operations raise."""
        self._closed = True
        self._rows = None
        self.description = None

    async def __aenter__(self) -> "AsyncCursor":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise CursorError("cursor is closed")

    def _result_set(self) -> list[dict]:
        self._check_open()
        if self._rows is None:
            raise CursorError("no result set: execute a SELECT first")
        return self._rows


class AsyncEngine:
    """Async facade over an :class:`~repro.api.engine.Engine`.

    All connections handed out by one ``AsyncEngine`` share a single virtual
    clock, so their in-flight requests overlap (max-latency, not
    sum-latency).  The underlying server state — tables, statistics, the
    prepared-statement cache — is the wrapped engine's, shared with any
    synchronous clients of the same engine.
    """

    def __init__(
        self, engine: "Engine", clock: Optional[VirtualClock] = None
    ) -> None:
        self.engine = engine
        #: the clock shared by every connection of this async engine.
        self.clock = clock or VirtualClock()
        self._connections: list[AsyncConnection] = []
        self._closed = False

    def connect(self) -> AsyncConnection:
        """A new async connection on the engine's shared virtual clock."""
        from repro.api.engine import EngineClosedError

        if self._closed:
            raise EngineClosedError("async engine is closed")
        # Individually-closed connections are pruned here so a long-lived
        # engine serving a churn of short-lived connections stays bounded;
        # their stats remain aggregated on the wrapped Engine.
        self._connections = [c for c in self._connections if not c.closed]
        connection = AsyncConnection(self.engine.connect(clock=self.clock))
        self._connections.append(connection)
        return connection

    def cursor(self) -> AsyncCursor:
        """An async cursor over a fresh connection."""
        return self.connect().cursor()

    @property
    def elapsed(self) -> float:
        """Virtual time on the shared clock (the fleet's wall clock)."""
        return self.clock.now

    @property
    def connections(self) -> list[AsyncConnection]:
        """Tracked connections (closed ones are pruned on the next connect)."""
        return list(self._connections)

    def close(self) -> None:
        """Close every handed-out connection; idempotent."""
        self._closed = True
        for connection in self._connections:
            connection.close()

    async def __aenter__(self) -> "AsyncEngine":
        from repro.api.engine import EngineClosedError

        if self._closed:
            raise EngineClosedError("async engine is closed")
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AsyncEngine connections={len(self._connections)} "
            f"elapsed={self.clock.now:.6f}s>"
        )
