"""Network condition parameters and transfer-time model.

The cost model's network terms (Figure 12 in the paper) are:

* ``CNRT`` — network round trip time between client and database,
* ``BW``   — network bandwidth in bytes/second.

The two presets mirror the paper's experimental setup:

* slow remote network: bandwidth 500 kbps, latency 250 ms
  (round trip = 2 x 250 ms = 0.5 s as an upper bound; the paper quotes the
  one-way latency, we expose both and use latency per direction),
* fast local network: bandwidth 6 Gbps, round trip time 0.5 ms.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkConditions:
    """Bandwidth/latency description of the client-database link."""

    name: str
    bandwidth_bytes_per_sec: float
    round_trip_seconds: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.round_trip_seconds < 0:
            raise ValueError("round trip time must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """Time in seconds to push ``num_bytes`` through the link."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return num_bytes / self.bandwidth_bytes_per_sec

    def round_trips(self, count: int) -> float:
        """Total latency of ``count`` request/response round trips."""
        if count < 0:
            raise ValueError("round trip count must be non-negative")
        return count * self.round_trip_seconds

    def pipelined_time(
        self,
        server_first_total: float,
        server_rest_total: float,
        response_bytes: float,
    ) -> float:
        """Elapsed time of one *pipelined* round trip carrying many statements.

        The cost model generalises the paper's single-query formula
        ``CQ = CNRT + CFQ + max(NQ * Srow(Q) / BW, CLQ - CFQ)`` to a batch:
        the whole batch ships in one request, the server runs the statements
        back to back (``server_first_total`` + ``server_rest_total`` are the
        summed first-row and remaining server times), and the combined
        response streams back overlapping the remaining server work::

            C = CNRT + sum(CFQ_i) + max(sum(bytes_i) / BW, sum(CLQ_i - CFQ_i))

        With N statements this charges one ``CNRT`` instead of N — the whole
        point of batching on a high-latency link.
        """
        if server_first_total < 0 or server_rest_total < 0:
            raise ValueError("server time must be non-negative")
        return (
            self.round_trip_seconds
            + server_first_total
            + max(self.transfer_time(response_bytes), server_rest_total)
        )

    def scaled(self, bandwidth_factor: float = 1.0, latency_factor: float = 1.0):
        """Return a copy with bandwidth/latency scaled (for sensitivity sweeps)."""
        return NetworkConditions(
            name=f"{self.name}-scaled",
            bandwidth_bytes_per_sec=self.bandwidth_bytes_per_sec * bandwidth_factor,
            round_trip_seconds=self.round_trip_seconds * latency_factor,
        )


def _kbps(value: float) -> float:
    """Kilobits per second to bytes per second."""
    return value * 1000.0 / 8.0


def _gbps(value: float) -> float:
    """Gigabits per second to bytes per second."""
    return value * 1e9 / 8.0


#: The paper's "slow remote network": 500 kbps bandwidth, 250 ms latency.
#: We charge the full request/response latency (2 x 250 ms) per round trip.
SLOW_REMOTE = NetworkConditions(
    name="slow-remote",
    bandwidth_bytes_per_sec=_kbps(500),
    round_trip_seconds=0.5,
)

#: The paper's "fast local network": 6 Gbps bandwidth, 0.5 ms round trip time.
FAST_LOCAL = NetworkConditions(
    name="fast-local",
    bandwidth_bytes_per_sec=_gbps(6),
    round_trip_seconds=0.0005,
)

#: All presets by name, for the cost catalog file.
PRESETS = {
    "slow-remote": SLOW_REMOTE,
    "fast-local": FAST_LOCAL,
}
