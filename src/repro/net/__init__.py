"""Network simulation substrate.

The paper runs its client programs against a remote MySQL server and emulates
two network conditions (slow remote: 500 kbps / 250 ms latency; fast local:
6 Gbps / 0.5 ms RTT).  This package replaces the physical network with a
deterministic simulator:

* :class:`repro.net.clock.VirtualClock` — an accounted virtual clock,
* :class:`repro.net.network.NetworkConditions` — bandwidth/latency parameters
  with the paper's two presets,
* :class:`repro.net.connection.SimulatedConnection` — a JDBC-like connection
  that executes queries against the in-memory database and charges round-trip,
  server, and transfer time to the virtual clock, with a PEP 249-shaped
  :class:`repro.net.connection.Cursor` and an engine-level
  prepared-statement path.
"""

from repro.net.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionStats,
)
from repro.net.clock import VirtualClock
from repro.net.connection import (
    ConnectionClosedError,
    ConnectionStats,
    Cursor,
    CursorError,
    Pipeline,
    PipelineError,
    PipelineResult,
    SimulatedConnection,
)
from repro.net.faults import (
    AmbiguousCommitError,
    ConnectionDroppedError,
    FaultError,
    FaultPolicy,
    FaultStats,
    RequestTimeoutError,
    RetryPolicy,
    TransientServerError,
)
from repro.net.network import FAST_LOCAL, SLOW_REMOTE, NetworkConditions

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionStats",
    "AmbiguousCommitError",
    "ConnectionClosedError",
    "ConnectionDroppedError",
    "ConnectionStats",
    "Cursor",
    "CursorError",
    "FAST_LOCAL",
    "FaultError",
    "FaultPolicy",
    "FaultStats",
    "NetworkConditions",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "RequestTimeoutError",
    "RetryPolicy",
    "SLOW_REMOTE",
    "TransientServerError",
    "SimulatedConnection",
    "VirtualClock",
]
