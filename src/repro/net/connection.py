"""A simulated JDBC-style connection between the application and the database.

Every query executed through :class:`SimulatedConnection` charges the virtual
clock with the same components the paper's cost model accounts for:

    CQ = CNRT + CFQ + max(NQ * Srow(Q) / BW, CLQ - CFQ)

i.e. one round trip, the server's time to first row, and then whichever of
network transfer or remaining server work dominates (they overlap because the
server streams results).  The connection also tracks per-run statistics
(queries issued, rows and bytes transferred) so experiments can report the
N+1-select behaviour directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.db.database import Database, QueryResult
from repro.net.clock import VirtualClock
from repro.net.network import NetworkConditions


@dataclass
class ConnectionStats:
    """Counters accumulated over the life of a connection."""

    queries: int = 0
    round_trips: int = 0
    rows_transferred: int = 0
    bytes_transferred: int = 0
    network_time: float = 0.0
    server_time: float = 0.0

    def reset(self) -> None:
        self.queries = 0
        self.round_trips = 0
        self.rows_transferred = 0
        self.bytes_transferred = 0
        self.network_time = 0.0
        self.server_time = 0.0


class SimulatedConnection:
    """Executes SQL against a :class:`Database` over a simulated network."""

    def __init__(
        self,
        database: Database,
        network: NetworkConditions,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.database = database
        self.network = network
        self.clock = clock or VirtualClock()
        self.stats = ConnectionStats()

    # -- query execution -------------------------------------------------

    def execute_query(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a SELECT and charge round trip + server + transfer time."""
        result = self.database.execute_sql(sql, params)
        estimate = self.database.estimate_sql(sql, params)
        # Use the actual cardinality for transfer accounting but the
        # optimizer estimate for server-side time (first/last row).
        transfer_time = self.network.transfer_time(result.byte_size)
        server_first = estimate.first_row_time
        server_rest = max(0.0, estimate.last_row_time - estimate.first_row_time)
        elapsed = (
            self.network.round_trip_seconds
            + server_first
            + max(transfer_time, server_rest)
        )
        self.clock.advance(elapsed)
        self._record(result, transfer_time, server_first + server_rest)
        return result

    def execute_update(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Execute an UPDATE over the network (one round trip, tiny payload)."""
        changed = self.database.execute_update_sql(sql, params)
        self.clock.advance(self.network.round_trip_seconds)
        self.stats.queries += 1
        self.stats.round_trips += 1
        self.stats.network_time += self.network.round_trip_seconds
        return changed

    def execute_lookup(
        self, table: str, key_column: str, key_value: Any
    ) -> QueryResult:
        """Point lookup helper: ``SELECT * FROM table WHERE key_column = ?``.

        This is the query shape the ORM issues for lazy loads, i.e. the N+1
        select pattern.
        """
        sql = f"select * from {table} where {key_column} = ?"
        return self.execute_query(sql, (key_value,))

    # -- bookkeeping -----------------------------------------------------

    def _record(
        self, result: QueryResult, transfer_time: float, server_time: float
    ) -> None:
        self.stats.queries += 1
        self.stats.round_trips += 1
        self.stats.rows_transferred += result.cardinality
        self.stats.bytes_transferred += result.byte_size
        self.stats.network_time += (
            self.network.round_trip_seconds + transfer_time
        )
        self.stats.server_time += server_time

    @property
    def elapsed(self) -> float:
        """Current virtual time on this connection's clock."""
        return self.clock.now

    def reset(self) -> None:
        """Reset the clock and the statistics (start of an experiment run)."""
        self.clock.reset()
        self.stats.reset()
        self.database.reset_counters()
