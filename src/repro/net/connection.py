"""A simulated JDBC-style connection between the application and the database.

Every query executed through :class:`SimulatedConnection` charges the virtual
clock with the same components the paper's cost model accounts for:

    CQ = CNRT + CFQ + max(NQ * Srow(Q) / BW, CLQ - CFQ)

i.e. one round trip, the server's time to first row, and then whichever of
network transfer or remaining server work dominates (they overlap because the
server streams results).  The connection also tracks per-run statistics
(queries issued, rows and bytes transferred) so experiments can report the
N+1-select behaviour directly.

The connection speaks the database's prepared-statement protocol:
``execute_query`` prepares (or re-uses) one
:class:`repro.db.database.PreparedStatement` per SQL text, so a statement is
parsed once and its cost estimate is computed once, no matter how many times
it runs — previously every call parsed the text twice (once to execute, once
to estimate).  Point lookups (:meth:`execute_lookup`, the ORM's lazy-load
shape) additionally cache the prepared statement per ``(table, key_column)``
so the hot N+1 path never rebuilds SQL strings at all.

A PEP 249-shaped driver surface is provided by :meth:`cursor`:
``execute`` / ``executemany`` / ``fetchone`` / ``fetchmany`` / ``fetchall``
with ``description`` and ``rowcount``, dispatching SELECT and UPDATE
statements automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.db.database import Database, PreparedStatement, QueryResult
from repro.net.clock import VirtualClock
from repro.net.network import NetworkConditions


@dataclass
class ConnectionStats:
    """Counters accumulated over the life of a connection."""

    queries: int = 0
    round_trips: int = 0
    rows_transferred: int = 0
    bytes_transferred: int = 0
    network_time: float = 0.0
    server_time: float = 0.0

    def reset(self) -> None:
        self.queries = 0
        self.round_trips = 0
        self.rows_transferred = 0
        self.bytes_transferred = 0
        self.network_time = 0.0
        self.server_time = 0.0


class CursorError(Exception):
    """Raised on misuse of a :class:`Cursor` (closed, no result set)."""


class Cursor:
    """A PEP 249-shaped cursor over a :class:`SimulatedConnection`.

    SELECT statements populate the result set (``fetchone`` / ``fetchmany``
    / ``fetchall``, iteration) and ``description``; UPDATE statements set
    ``rowcount`` and leave the result set empty.  Statements are routed
    through the engine-level prepared-statement cache, so driving the same
    query shape repeatedly parses it once.
    """

    def __init__(self, connection: "SimulatedConnection") -> None:
        self.connection = connection
        self.arraysize = 1
        #: column metadata of the last SELECT: 7-item tuples per PEP 249
        #: (only the name slot is populated by this driver).
        self.description: Optional[list[tuple]] = None
        self.rowcount = -1
        self._rows: Optional[list[dict]] = None
        self._index = 0
        self._closed = False

    # -- execution -------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        """Prepare (or re-use) and execute one SQL statement."""
        self._check_open()
        return self.execute_prepared(self.connection.prepare(sql), params)

    def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> "Cursor":
        """Execute an already-prepared statement through this cursor."""
        self._check_open()
        if statement.is_query:
            result = self.connection.execute_prepared(statement, tuple(params))
            self._rows = result.rows
            self._index = 0
            self.rowcount = result.cardinality
            self.description = self._describe(result, statement)
        else:
            changed = self.connection.execute_update_prepared(
                statement, tuple(params)
            )
            self._rows = None
            self._index = 0
            self.rowcount = changed
            self.description = None
        return self

    def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> "Cursor":
        """Execute the statement once per parameter tuple.

        The statement is prepared a single time.  For UPDATE statements
        ``rowcount`` accumulates the total rows changed; for SELECTs the
        result set of the *last* execution is retained.
        """
        self._check_open()
        statement = self.connection.prepare(sql)
        total_changed = 0
        ran = False
        for params in seq_of_params:
            self.execute_prepared(statement, params)
            ran = True
            if not statement.is_query:
                total_changed += self.rowcount
        if not statement.is_query:
            self.rowcount = total_changed if ran else 0
        return self

    # -- fetching --------------------------------------------------------

    def fetchone(self) -> Optional[dict]:
        """Next row of the result set, or ``None`` when exhausted."""
        rows = self._result_set()
        if self._index >= len(rows):
            return None
        row = rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[dict]:
        """The next ``size`` rows (default :attr:`arraysize`)."""
        rows = self._result_set()
        if size is None:
            size = self.arraysize
        chunk = rows[self._index : self._index + size]
        self._index += len(chunk)
        return chunk

    def fetchall(self) -> list[dict]:
        """Every remaining row of the result set."""
        rows = self._result_set()
        chunk = rows[self._index :]
        self._index = len(rows)
        return chunk

    def __iter__(self) -> Iterator[dict]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the result set; subsequent operations raise."""
        self._closed = True
        self._rows = None
        self.description = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise CursorError("cursor is closed")

    def _result_set(self) -> list[dict]:
        self._check_open()
        if self._rows is None:
            raise CursorError("no result set: execute a SELECT first")
        return self._rows

    @staticmethod
    def _describe(
        result: QueryResult, statement: PreparedStatement
    ) -> Optional[list[tuple]]:
        """Column metadata: from the first row, else from the prepared plan.

        The plan-derived fallback keeps ``description`` populated for
        SELECTs that match no rows; it is ``None`` only for empty results
        of plan shapes whose output layout is execution-dependent (joins).
        """
        if result.rows:
            names = list(result.rows[0])
        else:
            names = statement.output_columns()
            if names is None:
                return None
        return [(name, None, None, None, None, None, None) for name in names]


class SimulatedConnection:
    """Executes SQL against a :class:`Database` over a simulated network."""

    def __init__(
        self,
        database: Database,
        network: NetworkConditions,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.database = database
        self.network = network
        self.clock = clock or VirtualClock()
        self.stats = ConnectionStats()
        #: (table, key_column) -> prepared point-lookup statement.
        self._lookup_statements: dict[tuple[str, str], PreparedStatement] = {}

    # -- statement preparation -------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare ``sql`` through the database's statement cache."""
        return self.database.prepare(sql)

    def cursor(self) -> Cursor:
        """A new PEP 249-shaped cursor over this connection."""
        return Cursor(self)

    # -- query execution -------------------------------------------------

    def execute_query(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a SELECT and charge round trip + server + transfer time."""
        return self.execute_prepared(self.database.prepare(sql), params)

    def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a prepared SELECT with full network cost accounting.

        One prepared plan serves both execution and cost estimation, so the
        statement text is parsed exactly once over the statement's lifetime
        (the pre-prepared-statement driver parsed every call twice: once to
        execute, once to estimate).
        """
        result = statement.execute(params)
        estimate = statement.estimate(params)
        # Use the actual cardinality for transfer accounting but the
        # optimizer estimate for server-side time (first/last row).
        transfer_time = self.network.transfer_time(result.byte_size)
        server_first = estimate.first_row_time
        server_rest = max(0.0, estimate.last_row_time - estimate.first_row_time)
        elapsed = (
            self.network.round_trip_seconds
            + server_first
            + max(transfer_time, server_rest)
        )
        self.clock.advance(elapsed)
        self._record(result, transfer_time, server_first + server_rest)
        return result

    def execute_update(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Execute an UPDATE over the network (one round trip, tiny payload)."""
        changed = self.database.execute_update_sql(sql, params)
        self._charge_update()
        return changed

    def execute_update_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> int:
        """Execute a prepared UPDATE over the network."""
        changed = statement.execute_update(params)
        self._charge_update()
        return changed

    def execute_lookup(
        self, table: str, key_column: str, key_value: Any
    ) -> QueryResult:
        """Point lookup: ``SELECT * FROM table WHERE key_column = ?``.

        This is the query shape the ORM issues for lazy loads, i.e. the N+1
        select pattern.  The prepared statement is cached per
        ``(table, key_column)``, so the hot loop performs no SQL string
        building and no statement-cache text lookup.
        """
        statement = self.lookup_statement(table, key_column)
        return self.execute_prepared(statement, (key_value,))

    def lookup_statement(
        self, table: str, key_column: str
    ) -> PreparedStatement:
        """The cached prepared point-lookup statement for one (table, column).

        Statements prepared before a DDL change (``create_table``) are
        re-prepared, because their plan analysis may be stale.
        """
        key = (table, key_column)
        statement = self._lookup_statements.get(key)
        if (
            statement is None
            or statement.schema_generation != self.database.schema_generation
        ):
            statement = self.database.prepare(
                f"select * from {table} where {key_column} = ?"
            )
            self._lookup_statements[key] = statement
        return statement

    # -- bookkeeping -----------------------------------------------------

    def _charge_update(self) -> None:
        self.clock.advance(self.network.round_trip_seconds)
        self.stats.queries += 1
        self.stats.round_trips += 1
        self.stats.network_time += self.network.round_trip_seconds

    def _record(
        self, result: QueryResult, transfer_time: float, server_time: float
    ) -> None:
        self.stats.queries += 1
        self.stats.round_trips += 1
        self.stats.rows_transferred += result.cardinality
        self.stats.bytes_transferred += result.byte_size
        self.stats.network_time += (
            self.network.round_trip_seconds + transfer_time
        )
        self.stats.server_time += server_time

    @property
    def elapsed(self) -> float:
        """Current virtual time on this connection's clock."""
        return self.clock.now

    def reset(self) -> None:
        """Reset the clock and the statistics (start of an experiment run)."""
        self.clock.reset()
        self.stats.reset()
        self.database.reset_counters()
