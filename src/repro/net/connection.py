"""A simulated JDBC-style connection between the application and the database.

Every query executed through :class:`SimulatedConnection` charges the virtual
clock with the same components the paper's cost model accounts for:

    CQ = CNRT + CFQ + max(NQ * Srow(Q) / BW, CLQ - CFQ)

i.e. one round trip, the server's time to first row, and then whichever of
network transfer or remaining server work dominates (they overlap because the
server streams results).  The connection also tracks per-run statistics
(queries issued, rows and bytes transferred) so experiments can report the
N+1-select behaviour directly.

The connection speaks the database's prepared-statement protocol:
``execute_query`` prepares (or re-uses) one
:class:`repro.db.database.PreparedStatement` per SQL text, so a statement is
parsed once and its cost estimate is computed once, no matter how many times
it runs — previously every call parsed the text twice (once to execute, once
to estimate).  Point lookups (:meth:`execute_lookup`, the ORM's lazy-load
shape) additionally cache the prepared statement per ``(table, key_column)``
so the hot N+1 path never rebuilds SQL strings at all.

A PEP 249-shaped driver surface is provided by :meth:`cursor`:
``execute`` / ``executemany`` / ``fetchone`` / ``fetchmany`` / ``fetchall``
with ``description`` and ``rowcount``, dispatching SELECT and UPDATE
statements automatically.

Pipelining
----------

:meth:`SimulatedConnection.pipeline` opens an explicit batch context that
ships **many statements in one round trip**::

    with connection.pipeline() as pipe:
        a = pipe.execute("select * from orders where o_id = ?", (1,))
        b = pipe.execute("update orders set o_status = 'DONE' where o_id = ?", (2,))
    a.rows      # per-statement results, in order
    b.rowcount

The batch is charged one ``CNRT`` plus the summed server time and combined
transfer time (see :meth:`repro.net.network.NetworkConditions.pipelined_time`)
instead of one round trip per statement.  :meth:`Cursor.executemany` routes
through a pipeline, so a 1 000-tuple ``executemany`` costs one round trip
rather than 1 000.

A flushed batch has **partial-failure semantics**: statements execute in
queue order, the first failing statement stops the batch, every handle
before it keeps its valid result, the failing handle carries the error, and
the statements after it are marked aborted — readable per handle via
:attr:`PipelineResult.error`.

Transactions and robustness
---------------------------

``begin()`` / ``commit()`` / ``rollback()`` expose the server's
single-writer transaction through the connection (PEP 249 shape: ``commit``
and ``rollback`` are no-ops without an open transaction), and the cursor
additionally routes the literal statements ``BEGIN`` / ``COMMIT`` /
``ROLLBACK``.  When the connection carries a
:class:`repro.net.faults.FaultPolicy`, every exchange may suffer a
deterministic injected fault; a :class:`repro.net.faults.RetryPolicy`
retries *request-path* faults (the server never executed anything) with
capped exponential backoff on the virtual clock.  *Response-path* faults —
the server executed the request but the reply was lost — are retried only
for reads: an in-flight write or COMMIT surfaces
:class:`repro.net.faults.AmbiguousCommitError` rather than being silently
retried, because the client cannot know whether it took effect.
"""

from __future__ import annotations

import re
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.db.database import (
    Database,
    PreparedStatement,
    QueryResult,
    Transaction,
)
from repro.db.mvcc import SerializationError
from repro.net.admission import AdmissionController
from repro.net.clock import VirtualClock
from repro.net.faults import (
    AmbiguousCommitError,
    FaultError,
    FaultPolicy,
    RetryPolicy,
)
from repro.net.network import NetworkConditions
from repro.obs.trace import Tracer, attach_parallel_scatter

#: transaction-control statements the cursor routes to connection methods.
_TXN_RE = re.compile(
    r"^\s*(begin|commit|rollback)(?:\s+(?:transaction|work))?\s*;?\s*$",
    re.IGNORECASE,
)


@dataclass
class ConnectionStats:
    """Counters accumulated over the life of a connection."""

    queries: int = 0
    round_trips: int = 0
    #: pipelined batches flushed (each batch is a single round trip).
    batches: int = 0
    rows_transferred: int = 0
    bytes_transferred: int = 0
    network_time: float = 0.0
    server_time: float = 0.0
    #: virtual seconds spent waiting in the server's admission queue.
    queue_time: float = 0.0

    def reset(self) -> None:
        self.queries = 0
        self.round_trips = 0
        self.batches = 0
        self.rows_transferred = 0
        self.bytes_transferred = 0
        self.network_time = 0.0
        self.server_time = 0.0
        self.queue_time = 0.0


class CursorError(Exception):
    """Raised on misuse of a :class:`Cursor` (closed, no result set)."""


class ConnectionClosedError(Exception):
    """Raised when a closed :class:`SimulatedConnection` is used."""


class PipelineError(Exception):
    """Raised on misuse of a :class:`Pipeline` (unflushed reads, reuse)."""


class Cursor:
    """A PEP 249-shaped cursor over a :class:`SimulatedConnection`.

    SELECT statements populate the result set (``fetchone`` / ``fetchmany``
    / ``fetchall``, iteration) and ``description``; UPDATE statements set
    ``rowcount`` and leave the result set empty.  Statements are routed
    through the engine-level prepared-statement cache, so driving the same
    query shape repeatedly parses it once.
    """

    def __init__(self, connection: "SimulatedConnection") -> None:
        self.connection = connection
        self.arraysize = 1
        #: column metadata of the last SELECT: 7-item tuples per PEP 249
        #: (only the name slot is populated by this driver).
        self.description: Optional[list[tuple]] = None
        self.rowcount = -1
        self._rows: Optional[list[dict]] = None
        self._index = 0
        self._closed = False

    # -- execution -------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        """Prepare (or re-use) and execute one SQL statement.

        ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` are transaction control, not
        queries: they route to the connection's transaction methods and
        leave the cursor without a result set.
        """
        self._check_open()
        match = _TXN_RE.match(sql)
        if match is not None:
            word = match.group(1).lower()
            if word == "begin":
                self.connection.begin()
            elif word == "commit":
                self.connection.commit()
            else:
                self.connection.rollback()
            self._rows = None
            self._index = 0
            self.rowcount = -1
            self.description = None
            return self
        return self.execute_prepared(self.connection.prepare(sql), params)

    def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> "Cursor":
        """Execute an already-prepared statement through this cursor."""
        self._check_open()
        if statement.is_query:
            result = self.connection.execute_prepared(statement, tuple(params))
            self._rows = result.rows
            self._index = 0
            self.rowcount = result.cardinality
            self.description = self._describe(result, statement)
        else:
            changed = self.connection.execute_update_prepared(
                statement, tuple(params)
            )
            self._rows = None
            self._index = 0
            self.rowcount = changed
            self.description = None
        return self

    def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> "Cursor":
        """Execute the statement once per parameter tuple, **pipelined**.

        The statement is prepared a single time and every execution ships
        in one network round trip through :meth:`SimulatedConnection.pipeline`
        (the pre-pipeline driver paid one round trip per tuple).  For UPDATE
        statements ``rowcount`` accumulates the total rows changed; for
        SELECTs the result set of the *last* execution is retained.
        """
        self._check_open()
        statement = self.connection.prepare(sql)
        pipeline = self.connection.pipeline()
        handles = [
            pipeline.execute_prepared(statement, params)
            for params in seq_of_params
        ]
        pipeline.flush()
        _install_executemany_results(self, statement, handles)
        return self

    # -- fetching --------------------------------------------------------

    def fetchone(self) -> Optional[dict]:
        """Next row of the result set, or ``None`` when exhausted."""
        rows = self._result_set()
        if self._index >= len(rows):
            return None
        row = rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[dict]:
        """The next ``size`` rows (default :attr:`arraysize`)."""
        rows = self._result_set()
        if size is None:
            size = self.arraysize
        chunk = rows[self._index : self._index + size]
        self._index += len(chunk)
        return chunk

    def fetchall(self) -> list[dict]:
        """Every remaining row of the result set."""
        rows = self._result_set()
        chunk = rows[self._index :]
        self._index = len(rows)
        return chunk

    def __iter__(self) -> Iterator[dict]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the result set; subsequent operations raise."""
        self._closed = True
        self._rows = None
        self.description = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise CursorError("cursor is closed")

    def _result_set(self) -> list[dict]:
        self._check_open()
        if self._rows is None:
            raise CursorError("no result set: execute a SELECT first")
        return self._rows

    @staticmethod
    def _describe(
        result: QueryResult, statement: PreparedStatement
    ) -> Optional[list[tuple]]:
        """Column metadata: from the first row, else from the prepared plan.

        The plan-derived fallback keeps ``description`` populated for
        SELECTs that match no rows; it is ``None`` only for empty results
        of plan shapes whose output layout is execution-dependent (joins).
        """
        if result.rows:
            names = list(result.rows[0])
        else:
            names = statement.output_columns()
            if names is None:
                return None
        return [(name, None, None, None, None, None, None) for name in names]


def _install_executemany_results(
    cursor, statement: PreparedStatement, handles: list["PipelineResult"]
) -> None:
    """Install a flushed executemany batch into a cursor's result state.

    Shared by the sync and async cursors so their semantics cannot drift:
    for SELECTs the *last* execution's result set (and description) is
    retained; for UPDATEs ``rowcount`` accumulates the total rows changed
    and the result set is cleared.  An empty batch leaves a SELECT cursor's
    previous state untouched and sets an UPDATE cursor's rowcount to 0,
    matching the historical per-tuple loop.
    """
    if statement.is_query:
        if handles:
            last = handles[-1]
            cursor._rows = last.rows
            cursor._index = 0
            cursor.rowcount = last.rowcount
            cursor.description = Cursor._describe(last.result, statement)
    else:
        if handles:
            cursor._rows = None
            cursor._index = 0
            cursor.description = None
        cursor.rowcount = sum(handle.rowcount for handle in handles)


class SimulatedConnection:
    """Executes SQL against a :class:`Database` over a simulated network."""

    def __init__(
        self,
        database: Database,
        network: NetworkConditions,
        clock: Optional[VirtualClock] = None,
        *,
        faults: Optional[FaultPolicy] = None,
        retries: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionController] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.database = database
        self.network = network
        self.clock = clock or VirtualClock()
        self.stats = ConnectionStats()
        #: fault injector for this connection's exchanges (None = reliable).
        self.faults = faults
        #: retry policy applied to injected faults (None = surface at once).
        self.retries = retries
        #: server-side admission controller (None = infinite capacity).
        self.admission = admission
        #: structured-trace recorder (None or disabled = no tracing cost).
        self._tracer = tracer
        #: (table, key_column) -> prepared point-lookup statement.
        self._lookup_statements: dict[tuple[str, str], PreparedStatement] = {}
        #: the server transaction this connection opened, if any.
        self._txn: Optional[Transaction] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Close the connection; subsequent operations raise.

        Closing is idempotent — a second (or concurrent double) close is a
        no-op.  An open transaction begun through this connection is rolled
        back, per PEP 249's close-with-pending-transaction rule.  Prepared
        statements live in the *database's* statement cache, so closing a
        connection releases only its own per-connection state (the
        point-lookup statement map).
        """
        if self._closed:
            return
        self._closed = True
        txn = self._txn
        self._txn = None
        if txn is not None and txn.active:
            txn.rollback()
        self._lookup_statements.clear()
        if self.admission is not None:
            self.admission.release_connection(id(self))

    def __enter__(self) -> "SimulatedConnection":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("connection is closed")

    # -- statement preparation -------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare ``sql`` through the database's statement cache."""
        self._check_open()
        return self.database.prepare(sql)

    def cursor(self) -> Cursor:
        """A new PEP 249-shaped cursor over this connection."""
        self._check_open()
        return Cursor(self)

    def pipeline(self) -> "Pipeline":
        """A batch context shipping many statements in one round trip."""
        self._check_open()
        return Pipeline(self)

    # -- transactions ----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while a transaction begun on this connection is open."""
        return self._txn is not None and self._txn.active

    def begin(self) -> Transaction:
        """Open a server transaction on this connection (one round trip).

        Raises :class:`repro.db.database.TransactionError` if a transaction
        is already active anywhere on the server — the engine is
        single-writer.
        """
        self._check_open()
        txn = self.database.begin()
        self._txn = txn
        self._charge_control_round_trip()
        return txn

    def commit(self) -> None:
        """Commit the connection's open transaction (PEP 249 ``commit``).

        Without an open transaction this is a no-op, per PEP 249.  COMMIT
        is the one exchange whose reply loss cannot be papered over: a
        response-path fault here means the server *did* commit but the
        client cannot know it — surfaced as
        :class:`repro.net.faults.AmbiguousCommitError`, never retried.

        Under MVCC the server may refuse the commit entirely
        (first-committer-wins): :class:`repro.db.mvcc.SerializationError`
        surfaces after the server has already aborted the transaction, so
        the connection drops its reference — retry by running the whole
        transaction again (see :meth:`run_transaction`).
        """
        self._check_open()
        txn = self._txn
        if txn is None or not txn.active:
            self._txn = None
            return
        try:
            self._run_sync(
                "commit", lambda: self._measure_commit(txn), idempotent=False
            )
        except SerializationError:
            # The server resolved the conflict by aborting this transaction
            # (never a silent rollback of committed versions).  The exchange
            # still burned a round trip.
            self._txn = None
            self._charge_control_round_trip()
            if self.faults is not None:
                self.faults.stats.serialization_conflicts += 1
            raise
        except AmbiguousCommitError:
            # The server *did* commit; only the reply was lost.  The
            # transaction is finished server-side, so drop the reference.
            self._txn = None
            raise
        except FaultError:
            # Request-path fault with retries exhausted: the COMMIT never
            # reached the server and the transaction is still active there.
            # Keep the reference so rollback()/close() can release it —
            # clearing it here would wedge the single-writer server forever.
            raise
        self._txn = None

    def _measure_commit(self, txn) -> tuple[None, float]:
        """Commit the server transaction; return ``(None, elapsed)`` without
        advancing the clock (shared by the sync and async commit paths).

        :class:`~repro.db.mvcc.SerializationError` propagates from
        ``txn.commit()`` before any time is recorded — the caller charges
        the failed exchange's round trip.  With a WAL attached the elapsed
        time includes the commit's flush cost, which group commit
        (:meth:`repro.db.wal.WriteAheadLog.commit_flush`) may waive.
        """
        self._check_open()
        txn.commit()
        elapsed = self.network.round_trip_seconds
        wal = self.database.wal
        flush_cost = 0.0
        if wal is not None:
            flush_cost = wal.commit_flush(self.clock.now)
            elapsed += flush_cost
        self.stats.round_trips += 1
        self.stats.network_time += self.network.round_trip_seconds
        tracer = self._tracer
        if tracer is not None and tracer.active:
            tracer.add_span(
                "network_round_trip", self.network.round_trip_seconds
            )
            if wal is not None:
                # A zero-cost flush while the log has real flush latency
                # means this commit rode along on a recent group commit.
                tracer.add_span(
                    "wal_flush",
                    flush_cost,
                    group_commit_ride_along=(
                        flush_cost == 0.0 and wal.flush_seconds > 0.0
                    ),
                )
        return None, elapsed

    def run_transaction(
        self,
        work: Callable[["SimulatedConnection"], Any],
        *,
        max_attempts: Optional[int] = None,
    ) -> Any:
        """Run ``work(connection)`` inside a transaction, retrying conflicts.

        Begins a transaction, runs ``work``, and commits; when the commit
        loses first-committer-wins (:class:`~repro.db.mvcc.SerializationError`)
        the whole transaction is retried from scratch with the connection's
        :class:`~repro.net.faults.RetryPolicy` backoff (a default policy
        when none is configured), up to ``max_attempts`` (default: the
        policy's budget).  Retries are counted in
        ``FaultStats.serialization_retries`` — outside the injected-fault
        invariant, because conflicts are server outcomes, not network
        faults.  Any other failure rolls back and propagates.
        """
        self._check_open()
        policy = self.retries if self.retries is not None else RetryPolicy()
        if max_attempts is None:
            max_attempts = policy.max_attempts
        attempt = 1
        while True:
            self.begin()
            try:
                value = work(self)
            except BaseException:
                self.rollback()
                raise
            try:
                self.commit()
            except SerializationError:
                if attempt >= max_attempts:
                    raise
                backoff = policy.delay(attempt)
                self.clock.advance(backoff)
                if self.faults is not None:
                    self.faults.stats.serialization_retries += 1
                attempt += 1
                continue
            return value

    def rollback(self) -> None:
        """Roll back the connection's open transaction (PEP 249 shape).

        A no-op without an open transaction.  Rollback is not fault-injected:
        it is the recovery action itself, so the simulation keeps it
        reliable (like BEGIN).
        """
        self._check_open()
        txn = self._txn
        self._txn = None
        if txn is None or not txn.active:
            return
        txn.rollback()
        self._charge_control_round_trip()

    def _charge_control_round_trip(self) -> None:
        """Charge one round trip for a transaction-control exchange."""
        self.clock.advance(self.network.round_trip_seconds)
        self.stats.round_trips += 1
        self.stats.network_time += self.network.round_trip_seconds

    # -- fault injection and retry ----------------------------------------

    def _with_faults(
        self,
        operation: str,
        measure: Callable[[], tuple],
        *,
        idempotent: bool,
    ) -> tuple:
        """Run one exchange under the fault/retry policies, traced.

        ``measure`` performs the server-side work and returns ``(value,
        elapsed)`` without touching the clock; this wrapper returns the same
        shape with ``elapsed`` extended by every fault cost and backoff
        sleep along the way, so callers charge the clock exactly once.

        Every statement exchange funnels through here — the sequential
        path (:meth:`_run_sync`), the async overlap path, and the open-loop
        load generator — so this is also where a :class:`QueryTrace` is
        opened and finished: the trace's root span duration IS the elapsed
        time the caller charges, whichever charging discipline it uses.
        """
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            return self._exchange(operation, measure, idempotent=idempotent)
        trace = tracer.start(operation)
        try:
            value, elapsed = self._exchange(
                operation, measure, idempotent=idempotent
            )
        except SerializationError as exc:
            # MVCC first-committer-wins loss: mark the conflict so the
            # trace explains the aborted commit.
            trace.add_span("mvcc_conflict", 0.0, error=str(exc))
            tracer.finish_error(trace, exc)
            raise
        except BaseException as exc:
            tracer.finish_error(
                trace, exc, getattr(exc, "virtual_elapsed", 0.0)
            )
            raise
        tracer.finish(trace, elapsed)
        return value, elapsed

    def _exchange(
        self,
        operation: str,
        measure: Callable[[], tuple],
        *,
        idempotent: bool,
    ) -> tuple:
        """The fault/retry half of :meth:`_with_faults`.

        Fault handling follows the delivery split: a request-path fault
        never reached the server, so it is retryable for any operation; a
        response-path fault executed server-side with the reply lost, so it
        is retryable only when ``idempotent`` (reads) — otherwise
        :class:`AmbiguousCommitError` surfaces.  A surfaced exception
        carries ``virtual_elapsed``, the virtual time the failed exchange
        burned, so even failures keep the clock honest.
        """
        policy = self.faults
        if policy is None:
            return measure()
        retry = self.retries
        round_trip = self.network.round_trip_seconds
        elapsed_total = 0.0
        attempt = 1
        while True:
            fault = policy.inject(operation, round_trip)
            if fault is None:
                try:
                    value, elapsed = measure()
                except FaultError as exc:
                    # An admission-queue timeout raised inside the exchange:
                    # fold in the time earlier injected faults burned.
                    exc.virtual_elapsed += elapsed_total
                    raise
                return value, elapsed_total + elapsed
            elapsed_total += fault.cost
            tracer = self._tracer
            if tracer is not None and tracer.active:
                tracer.add_span(
                    "fault",
                    fault.cost,
                    operation=operation,
                    delivered=fault.delivered,
                    attempt=attempt,
                )
            if fault.delivered:
                # The server received and executed the request; only the
                # reply was lost.  Execute it for real so server state
                # reflects what actually happened.
                try:
                    _, elapsed = measure()
                except SerializationError as exc:
                    # An MVCC commit that lost first-committer-wins while
                    # its reply was lost: the server aborted it, but this
                    # client cannot distinguish that from a commit — so it
                    # surfaces as ambiguous, never as a silent rollback.
                    elapsed_total += round_trip
                    policy.stats.ambiguous += 1
                    error = AmbiguousCommitError(
                        f"reply to {operation} lost in flight: the server "
                        f"resolved it as a write conflict, but the client "
                        f"cannot confirm"
                    )
                    error.virtual_elapsed = elapsed_total
                    raise error from exc
                except FaultError as exc:
                    policy.stats.exhausted += 1
                    exc.virtual_elapsed += elapsed_total
                    raise
                elapsed_total += elapsed
                if not idempotent:
                    policy.stats.ambiguous += 1
                    error = AmbiguousCommitError(
                        f"reply to {operation} lost in flight: the server "
                        f"executed it, but the client cannot confirm"
                    )
                    error.virtual_elapsed = elapsed_total
                    raise error from fault
            if retry is None or attempt >= retry.max_attempts:
                policy.stats.exhausted += 1
                fault.virtual_elapsed = elapsed_total
                raise fault
            backoff = retry.delay(attempt)
            policy.stats.retries += 1
            policy.stats.backoff_seconds += backoff
            elapsed_total += backoff
            if tracer is not None and tracer.active:
                tracer.add_span("retry_backoff", backoff, attempt=attempt)
            attempt += 1

    def _run_sync(
        self,
        operation: str,
        measure: Callable[[], tuple],
        *,
        idempotent: bool,
    ) -> Any:
        """Fault-wrap ``measure`` and charge the clock sequentially.

        The failure path charges ``virtual_elapsed`` before re-raising, so
        a surfaced fault still accounts for the time it consumed.
        """
        try:
            value, elapsed = self._with_faults(
                operation, measure, idempotent=idempotent
            )
        except (FaultError, AmbiguousCommitError) as exc:
            self.clock.advance(exc.virtual_elapsed)
            raise
        self.clock.advance(elapsed)
        return value

    # -- server-side scoping and admission --------------------------------

    def _server_context(self):
        """The MVCC read context this exchange executes under.

        With MVCC off this is a no-op: the legacy single-writer engine lets
        statements join whatever transaction is ambient, and existing
        behaviour must not change.  With MVCC on, every exchange is scoped
        to the transaction open on *this* connection — or to autocommit
        (latest committed state) when none — so one connection's open
        transaction never leaks into another connection's reads.
        """
        if self.database._mvcc is None:
            return nullcontext()
        txn = self._txn
        if txn is not None and getattr(txn, "active", False):
            return self.database.using(txn)
        return self.database.using(None)

    def _admit(self, service_seconds: float) -> float:
        """Pass one exchange through admission control.

        Returns queue wait + service time — the elapsed time the caller
        should charge — after booking a server slot.  Raises
        :class:`~repro.net.faults.RequestTimeoutError` when the queue wait
        would exceed the controller's timeout.  Without a controller the
        server has infinite capacity and this is the identity.
        """
        admission = self.admission
        if admission is None:
            return service_seconds
        wait = admission.admit(
            self.clock.now, service_seconds, connection=id(self)
        )
        self.stats.queue_time += wait
        tracer = self._tracer
        if wait > 0.0 and tracer is not None and tracer.active:
            tracer.add_span("admission_wait", wait)
        return service_seconds + wait

    # -- query execution -------------------------------------------------

    def execute_query(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a SELECT and charge round trip + server + transfer time."""
        self._check_open()
        return self.execute_prepared(self.database.prepare(sql), params)

    def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a prepared SELECT with full network cost accounting.

        One prepared plan serves both execution and cost estimation, so the
        statement text is parsed exactly once over the statement's lifetime
        (the pre-prepared-statement driver parsed every call twice: once to
        execute, once to estimate).  SELECTs are idempotent, so the fault
        layer may retry them on any injected fault.
        """
        return self._run_sync(
            "query",
            lambda: self._measure_prepared(statement, params),
            idempotent=True,
        )

    def _measure_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> tuple[QueryResult, float]:
        """Execute a prepared SELECT; return (result, elapsed) without
        advancing the clock.

        Statistics are recorded here; the caller decides how the elapsed
        time hits the clock — ``advance`` for the sequential path,
        ``advance_to(start + elapsed)`` for overlapping async requests.
        """
        self._check_open()
        with self._server_context():
            result = statement.execute(params)
            estimate = statement.estimate(params)
        # Use the actual cardinality for transfer accounting but the
        # optimizer estimate for server-side time (first/last row).
        transfer_time = self.network.transfer_time(result.byte_size)
        server_first = estimate.first_row_time
        server_rest = max(0.0, estimate.last_row_time - estimate.first_row_time)
        elapsed = (
            self.network.round_trip_seconds
            + server_first
            + max(transfer_time, server_rest)
        )
        self._record(result, transfer_time, server_first + server_rest)
        tracer = self._tracer
        if tracer is not None and tracer.active:
            self._trace_query(
                tracer,
                statement,
                result,
                estimate,
                transfer_time,
                server_first,
                server_rest,
            )
        return result, self._admit(elapsed)

    def _trace_query(
        self,
        tracer: Tracer,
        statement: PreparedStatement,
        result: QueryResult,
        estimate,
        transfer_time: float,
        server_first: float,
        server_rest: float,
    ) -> None:
        """Record one SELECT exchange's spans on the open trace.

        The plan and route spans are zero-duration events; the execute
        span's duration is the max-overlap server + transfer total the cost
        model charged, with the overlapping components carried as
        attributes.  Together with the round-trip span (and any admission
        wait recorded by :meth:`_admit`) the children partition the root
        exactly.  The actual cardinality is also offered back to the
        statistics catalog here — runtime feedback rides on tracing.
        """
        tracer.set_sql(statement.sql)
        trace = tracer.current
        trace.add_span(
            "plan",
            0.0,
            root_operator=type(statement.plan).__name__,
            estimated_rows=estimate.cardinality,
        )
        route = statement.last_route
        if route is not None:
            route_span = trace.add_span(
                "route", 0.0, kind=route["kind"], shards=route["shards"]
            )
            parallel = route.get("parallel")
            if parallel is not None:
                attach_parallel_scatter(route_span, parallel)
        trace.add_span("network_round_trip", self.network.round_trip_seconds)
        execute = trace.add_span(
            "execute",
            server_first + max(transfer_time, server_rest),
            tier=statement.last_tier,
            rows_out=result.cardinality,
            server_first=server_first,
            server_rest=server_rest,
            transfer_time=transfer_time,
        )
        if statement.last_fallback_reason is not None:
            execute.attributes["fallback_reason"] = (
                statement.last_fallback_reason
            )
        statement.observe_actual(result.cardinality)

    def execute_update(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Execute an UPDATE over the network (one round trip, tiny payload).

        Writes are not idempotent: a response-path fault (executed
        server-side, reply lost) surfaces as
        :class:`~repro.net.faults.AmbiguousCommitError` instead of retrying.
        """
        self._check_open()
        return self._run_sync(
            "update",
            lambda: self._measure_update(
                lambda: self.database.execute_update_sql(sql, params), sql=sql
            ),
            idempotent=False,
        )

    def execute_update_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> int:
        """Execute a prepared UPDATE over the network."""
        return self._run_sync(
            "update",
            lambda: self._measure_update_prepared(statement, params),
            idempotent=False,
        )

    def _measure_update_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> tuple[int, float]:
        """Execute a prepared UPDATE; return (changed, elapsed) without
        advancing the clock (async counterpart of the sequential charge)."""
        return self._measure_update(
            lambda: statement.execute_update(params), sql=statement.sql
        )

    def _measure_update(
        self, run: Callable[[], int], sql: Optional[str] = None
    ) -> tuple[int, float]:
        """Execute one UPDATE exchange; return (changed, elapsed)."""
        self._check_open()
        with self._server_context():
            changed = run()
        self.stats.queries += 1
        self.stats.round_trips += 1
        self.stats.network_time += self.network.round_trip_seconds
        tracer = self._tracer
        if tracer is not None and tracer.active:
            if sql is not None:
                tracer.set_sql(sql)
            tracer.add_span("execute", 0.0, tier="update", rows_changed=changed)
            tracer.add_span(
                "network_round_trip", self.network.round_trip_seconds
            )
        return changed, self._admit(self.network.round_trip_seconds)

    def execute_lookup(
        self, table: str, key_column: str, key_value: Any
    ) -> QueryResult:
        """Point lookup: ``SELECT * FROM table WHERE key_column = ?``.

        This is the query shape the ORM issues for lazy loads, i.e. the N+1
        select pattern.  The prepared statement is cached per
        ``(table, key_column)``, so the hot loop performs no SQL string
        building and no statement-cache text lookup.
        """
        statement = self.lookup_statement(table, key_column)
        return self.execute_prepared(statement, (key_value,))

    def lookup_statement(
        self, table: str, key_column: str
    ) -> PreparedStatement:
        """The cached prepared point-lookup statement for one (table, column).

        Statements prepared before a DDL change (``create_table``) are
        re-prepared, because their plan analysis may be stale.
        """
        key = (table, key_column)
        statement = self._lookup_statements.get(key)
        if (
            statement is None
            or statement.schema_generation != self.database.schema_generation
        ):
            statement = self.database.prepare(
                f"select * from {table} where {key_column} = ?"
            )
            self._lookup_statements[key] = statement
        return statement

    # -- bookkeeping -----------------------------------------------------

    def _record(
        self, result: QueryResult, transfer_time: float, server_time: float
    ) -> None:
        self.stats.queries += 1
        self.stats.round_trips += 1
        self.stats.rows_transferred += result.cardinality
        self.stats.bytes_transferred += result.byte_size
        self.stats.network_time += (
            self.network.round_trip_seconds + transfer_time
        )
        self.stats.server_time += server_time

    @property
    def elapsed(self) -> float:
        """Current virtual time on this connection's clock."""
        return self.clock.now

    def reset(self) -> None:
        """Reset the clock and the statistics (start of an experiment run)."""
        self.clock.reset()
        self.stats.reset()
        self.database.reset_counters()


class PipelineResult:
    """Per-statement result slot of a :class:`Pipeline` batch.

    Populated when the pipeline flushes; reading :attr:`rows`,
    :attr:`rowcount`, or :attr:`result` earlier raises
    :class:`PipelineError`.  A batch has partial-failure semantics: if a
    statement fails, its handle carries the error (:attr:`error`), handles
    queued before it keep their valid results, and handles after it are
    marked aborted.  Reading a result off a failed or aborted handle
    re-raises its error.
    """

    __slots__ = (
        "statement",
        "_params",
        "_rows",
        "_rowcount",
        "_result",
        "_error",
        "_done",
    )

    def __init__(
        self, statement: PreparedStatement, params: tuple
    ) -> None:
        self.statement = statement
        self._params = params
        self._rows: Optional[list[dict]] = None
        self._rowcount = -1
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None
        self._done = False

    @property
    def is_query(self) -> bool:
        """True for SELECT statements, False for UPDATEs."""
        return self.statement.is_query

    @property
    def rows(self) -> Optional[list[dict]]:
        """Result rows of a SELECT (``None`` for UPDATE statements)."""
        self._check_ok()
        return self._rows

    @property
    def rowcount(self) -> int:
        """Rows returned (SELECT) or changed (UPDATE)."""
        self._check_ok()
        return self._rowcount

    @property
    def result(self) -> Optional[QueryResult]:
        """The full :class:`QueryResult` of a SELECT (``None`` for UPDATEs)."""
        self._check_ok()
        return self._result

    @property
    def error(self) -> Optional[BaseException]:
        """This statement's own error, or ``None`` if it succeeded.

        A statement that never ran because an earlier statement in the
        batch failed carries a :class:`PipelineError` marking it aborted.
        """
        self._check_done()
        return self._error

    def _reset(self) -> None:
        """Return the handle to its pre-flush state (fault-layer re-send)."""
        self._rows = None
        self._rowcount = -1
        self._result = None
        self._error = None
        self._done = False

    def _check_done(self) -> None:
        if not self._done:
            raise PipelineError(
                "pipeline result read before the batch was flushed"
            )

    def _check_ok(self) -> None:
        self._check_done()
        if self._error is not None:
            raise self._error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._done:
            state = "pending"
        elif self._error is not None:
            state = "failed"
        else:
            state = "done"
        return f"<PipelineResult {state} {self.statement.sql!r}>"


class Pipeline:
    """An explicit batch context: many statements, one network round trip.

    Statements queued via :meth:`execute` / :meth:`execute_prepared` return
    :class:`PipelineResult` handles immediately; nothing touches the wire
    until :meth:`flush` (called automatically on clean ``with``-block exit),
    which executes the whole batch server-side in queue order, fills every
    handle, and charges the virtual clock **once** with the batched cost
    formula (:meth:`repro.net.network.NetworkConditions.pipelined_time`).

    A pipeline may be flushed repeatedly — each flush is one round trip for
    the statements queued since the previous flush.  Leaving the ``with``
    block on an exception discards the pending queue instead of flushing.
    """

    def __init__(self, connection: SimulatedConnection) -> None:
        self.connection = connection
        self._queue: list[PipelineResult] = []
        #: round trips this pipeline has performed (one per non-empty flush).
        self.flushes = 0

    # -- queueing --------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> PipelineResult:
        """Queue one statement (prepared through the statement cache)."""
        return self.execute_prepared(self.connection.prepare(sql), params)

    def execute_prepared(
        self, statement: PreparedStatement, params: Sequence[Any] = ()
    ) -> PipelineResult:
        """Queue an already-prepared statement with its parameters."""
        self.connection._check_open()
        handle = PipelineResult(statement, tuple(params))
        self._queue.append(handle)
        return handle

    def __len__(self) -> int:
        return len(self._queue)

    # -- flushing --------------------------------------------------------

    def flush(self) -> list[PipelineResult]:
        """Ship the queued batch in one round trip; returns the handles.

        On partial failure the clock is still charged for the round trip,
        every handle is filled (valid results before the failure, the error
        on the failing handle, aborted markers after it), and the first
        statement error is re-raised.
        """
        handles = list(self._queue)
        connection = self.connection
        try:
            error, elapsed = self._measure_flush()
        except (FaultError, AmbiguousCommitError) as exc:
            connection.clock.advance(exc.virtual_elapsed)
            raise
        if handles:
            connection.clock.advance(elapsed)
        if error is not None:
            raise error
        return handles

    def _measure_flush(self) -> tuple[Optional[BaseException], float]:
        """Execute the queued batch under the fault layer; return
        ``(first statement error, elapsed)`` without advancing the clock
        (the async path overlaps the elapsed time instead).

        An empty queue costs nothing — no round trip is charged.  A batch
        of SELECTs is idempotent and may be re-sent on any injected fault;
        a batch containing a write gets the ambiguous-commit treatment on
        response-path faults.  Terminal faults raise with
        ``virtual_elapsed`` set, like every fault-wrapped exchange.
        """
        connection = self.connection
        connection._check_open()
        handles = self._queue
        self._queue = []
        if not handles:
            return None, 0.0
        idempotent = all(handle.statement.is_query for handle in handles)
        return connection._with_faults(
            "pipeline",
            lambda: self._measure_batch(handles),
            idempotent=idempotent,
        )

    def _measure_batch(
        self, handles: list[PipelineResult]
    ) -> tuple[Optional[BaseException], float]:
        """One server-side execution of a batch; return (error, elapsed).

        Statements run in queue order; the first failure stops the batch,
        leaving earlier handles valid, storing the error on the failing
        handle, and marking the rest aborted.  The fault layer may call
        this again to model a re-sent batch, so handles are reset first.
        """
        connection = self.connection
        stats = connection.stats
        network = connection.network
        first_total = 0.0
        rest_total = 0.0
        total_bytes = 0
        error: Optional[BaseException] = None
        for handle in handles:
            handle._reset()
        for position, handle in enumerate(handles):
            statement = handle.statement
            try:
                with connection._server_context():
                    if statement.is_query:
                        result = statement.execute(handle._params)
                        estimate = statement.estimate(handle._params)
                    else:
                        handle._rowcount = statement.execute_update(
                            handle._params
                        )
                if statement.is_query:
                    first_total += estimate.first_row_time
                    rest_total += max(
                        0.0,
                        estimate.last_row_time - estimate.first_row_time,
                    )
                    total_bytes += result.byte_size
                    handle._rows = result.rows
                    handle._rowcount = result.cardinality
                    handle._result = result
                    stats.rows_transferred += result.cardinality
                    stats.bytes_transferred += result.byte_size
            except Exception as exc:
                error = exc
                handle._error = exc
                handle._done = True
                stats.queries += 1
                for aborted in handles[position + 1 :]:
                    aborted._error = PipelineError(
                        "statement aborted: an earlier statement in the "
                        "batch failed"
                    )
                    aborted._done = True
                break
            handle._done = True
            stats.queries += 1
        transfer_time = network.transfer_time(total_bytes)
        elapsed = network.pipelined_time(first_total, rest_total, total_bytes)
        stats.round_trips += 1
        stats.batches += 1
        stats.network_time += network.round_trip_seconds + transfer_time
        stats.server_time += first_total + rest_total
        self.flushes += 1
        tracer = connection._tracer
        if tracer is not None and tracer.active:
            trace = tracer.current
            round_trip = network.round_trip_seconds
            trace.add_span("network_round_trip", round_trip)
            execute = trace.add_span(
                "execute",
                max(0.0, elapsed - round_trip),
                tier="pipeline",
                statements=len(handles),
                server_first=first_total,
                server_rest=rest_total,
                transfer_time=transfer_time,
            )
            for handle in handles:
                execute.child(
                    "statement",
                    0.0,
                    sql=handle.statement.sql,
                    rows=handle._rowcount,
                    failed=handle._error is not None,
                )
        return error, connection._admit(elapsed)

    def discard(self) -> None:
        """Drop the pending batch: nothing is sent, nothing is charged."""
        self._queue = []

    # -- context management ----------------------------------------------

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            self.discard()
