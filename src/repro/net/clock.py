"""A virtual clock for deterministic time accounting.

All "program execution times" reported by the reproduction are virtual: the
runtime advances this clock by the network round-trip time, server execution
time, data transfer time, and per-statement CPU cost of everything the
application program does.  This makes slow-remote-network experiments run in
milliseconds of wall time while still reproducing the paper's shapes exactly
and deterministically.
"""

from __future__ import annotations


class VirtualClock:
    """An accounted clock: ``advance`` adds seconds, ``now`` reads them."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the clock was created/reset."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new current time.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (no-op if already past).

        This is the primitive behind overlapping in-flight requests: each
        concurrent request captures its start time, computes its own
        duration, and advances the shared clock *to* its completion time.
        Requests issued at the same instant therefore cost the maximum of
        their durations rather than the sum, while strictly sequential
        requests (each started after the previous one completed) remain
        additive.

        Returns the new current time.
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self) -> None:
        """Reset the clock to zero."""
        self._now = 0.0

    def elapsed_since(self, start: float) -> float:
        """Seconds elapsed since the given earlier reading."""
        return self._now - start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f}s)"
