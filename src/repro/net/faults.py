"""Deterministic fault injection and retry policies for the simulated network.

The robustness model mirrors what a real driver faces on a flaky network,
but on the **virtual clock** and fully deterministic (every random draw
comes from a seeded :class:`random.Random`), so a faulty run is exactly
reproducible and comparable row-for-row against a fault-free run.

Fault taxonomy
--------------

Faults are injected per operation by a :class:`FaultPolicy` and come in two
shapes that matter very differently to the retry layer:

* **Request-path faults** (``delivered=False``): the request never reached
  the server — a timeout before delivery, a drop on the way out, a
  transient server error thrown before execution.  The server did *not*
  execute anything, so retrying is always safe, for reads and writes alike.
* **Response-path faults** (``delivered=True``): the server executed the
  request but the reply was lost in flight.  Retrying a *read* is safe (it
  re-executes and returns the same rows); retrying a *write* or a COMMIT is
  not — the client cannot know whether the first attempt took effect, so
  the driver surfaces :class:`AmbiguousCommitError` instead of silently
  retrying.  This is the classic "in-doubt transaction" rule.

Retry policy
------------

:class:`RetryPolicy` implements capped exponential backoff with
deterministic jitter, again on the virtual clock: the sleep between
attempts is charged as elapsed virtual time, never as wall time.  Every
injected fault is therefore either retried (and counted) or surfaced as an
exception carrying ``virtual_elapsed`` — the virtual time the failed
exchange consumed — so callers can charge the clock faithfully even on the
failure path.  No fault is ever silently swallowed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


class FaultError(Exception):
    """Base class of injected network faults.

    ``delivered`` distinguishes request-path faults (the server never saw
    the request; always retryable) from response-path faults (the server
    executed it and the reply was lost; retryable only for idempotent
    operations).  ``virtual_elapsed`` is filled in by the retry layer when
    the fault is surfaced: the virtual seconds the whole failed exchange
    (fault costs, backoff sleeps, any delivered server work) consumed.
    """

    kind = "fault"

    def __init__(
        self, message: str, *, delivered: bool = False, cost: float = 0.0
    ) -> None:
        super().__init__(message)
        self.delivered = delivered
        #: virtual seconds this single fault event costs (time to notice it).
        self.cost = cost
        #: total virtual seconds of the failed exchange; set when surfaced.
        self.virtual_elapsed = 0.0


class RequestTimeoutError(FaultError):
    """The request timed out before the server received it."""

    kind = "timeout"


class ConnectionDroppedError(FaultError):
    """The connection dropped — on the way out, or with the reply in flight."""

    kind = "drop"


class TransientServerError(FaultError):
    """The server refused the request before executing it (retryable)."""

    kind = "server_error"


class AmbiguousCommitError(Exception):
    """A write or COMMIT was executed server-side but the reply was lost.

    The driver cannot know whether the work took effect, so it must not
    retry — it surfaces the ambiguity for the application to resolve (by
    re-reading state, or by treating the transaction as in-doubt).  Carries
    ``virtual_elapsed`` like :class:`FaultError` so the clock stays honest.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.virtual_elapsed = 0.0


@dataclass
class FaultStats:
    """Counters for injected faults and the retry layer's reactions."""

    injected: int = 0
    timeouts: int = 0
    drops: int = 0
    server_errors: int = 0
    #: response-path faults: the server executed before the reply was lost.
    delivered: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    ambiguous: int = 0
    #: faults surfaced because the retry budget ran out (or retries are off).
    exhausted: int = 0
    #: MVCC first-committer-wins conflicts surfaced to this client.  These
    #: are server-side outcomes, not injected network faults, so they live
    #: outside the ``injected == retries + exhausted + ambiguous`` invariant.
    serialization_conflicts: int = 0
    #: conflicts that ``run_transaction`` retried after backoff.
    serialization_retries: int = 0

    def reset(self) -> None:
        self.injected = 0
        self.timeouts = 0
        self.drops = 0
        self.server_errors = 0
        self.delivered = 0
        self.retries = 0
        self.backoff_seconds = 0.0
        self.ambiguous = 0
        self.exhausted = 0
        self.serialization_conflicts = 0
        self.serialization_retries = 0

    def as_dict(self) -> dict:
        return {
            "injected": self.injected,
            "timeouts": self.timeouts,
            "drops": self.drops,
            "server_errors": self.server_errors,
            "delivered": self.delivered,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "ambiguous": self.ambiguous,
            "exhausted": self.exhausted,
            "serialization_conflicts": self.serialization_conflicts,
            "serialization_retries": self.serialization_retries,
        }


#: fault kinds a policy cycles through by default.
DEFAULT_FAULT_KINDS = ("timeout", "drop", "server_error")


class FaultPolicy:
    """Seeded, deterministic fault injector for the simulated network.

    ``rate`` is the per-operation fault probability; the fault kind is drawn
    uniformly from ``kinds``.  ``delivered_fraction`` is the probability
    that a *drop* is response-path (the server executed, the reply was
    lost) — timeouts and transient server errors are always request-path.
    The default of ``0.0`` makes every fault retryable, which is what the
    convergence property wants (a retried faulty run ends row-identical to
    a fault-free run); raise it to exercise the ambiguous-commit rule.

    All draws come from one seeded :class:`random.Random`, so a given
    (seed, operation sequence) produces the same fault sequence every run.
    """

    def __init__(
        self,
        rate: float = 0.05,
        *,
        seed: int = 0,
        kinds: tuple = DEFAULT_FAULT_KINDS,
        delivered_fraction: float = 0.0,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ValueError("at least one fault kind is required")
        unknown = set(kinds) - set(DEFAULT_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.rate = rate
        self.seed = seed
        self.kinds = tuple(kinds)
        self.delivered_fraction = delivered_fraction
        #: virtual seconds a timeout burns before the client notices; when
        #: None, 4x the network round trip is used.
        self.timeout_seconds = timeout_seconds
        self._rng = random.Random(seed)
        self.stats = FaultStats()

    def inject(
        self, operation: str, round_trip_seconds: float
    ) -> Optional[FaultError]:
        """Roll the dice for one operation; a fault instance or ``None``.

        The returned fault carries its virtual-time ``cost``: a timeout
        burns the configured timeout (default 4 round trips) before the
        client notices, a drop or server error costs one round trip.
        """
        if self._rng.random() >= self.rate:
            return None
        stats = self.stats
        stats.injected += 1
        kind = self.kinds[self._rng.randrange(len(self.kinds))]
        if kind == "timeout":
            stats.timeouts += 1
            cost = (
                self.timeout_seconds
                if self.timeout_seconds is not None
                else 4.0 * round_trip_seconds
            )
            return RequestTimeoutError(
                f"request timed out during {operation}", cost=cost
            )
        if kind == "drop":
            stats.drops += 1
            delivered = self._rng.random() < self.delivered_fraction
            if delivered:
                stats.delivered += 1
            return ConnectionDroppedError(
                f"connection dropped during {operation}"
                + (" (reply lost in flight)" if delivered else ""),
                delivered=delivered,
                cost=round_trip_seconds,
            )
        stats.server_errors += 1
        return TransientServerError(
            f"transient server error during {operation}",
            cost=round_trip_seconds,
        )

    def reset(self) -> None:
        """Re-seed the generator and zero the counters (fresh experiment)."""
        self._rng = random.Random(self.seed)
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPolicy(rate={self.rate}, seed={self.seed}, "
            f"kinds={self.kinds})"
        )


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` (1-based) returns
    ``min(base_delay * multiplier**(attempt-1), max_delay)`` stretched by a
    jitter factor drawn from a seeded generator — virtual seconds to sleep
    on the virtual clock before re-issuing the request.  ``max_attempts``
    bounds total tries (first attempt included); at most
    ``max_attempts - 1`` retries happen before the fault is surfaced.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        *,
        base_delay: float = 0.01,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds."""
        backoff = min(
            self.base_delay * (self.multiplier ** (attempt - 1)),
            self.max_delay,
        )
        if self.jitter:
            backoff *= 1.0 + self.jitter * self._rng.random()
        return backoff

    def reset(self) -> None:
        """Re-seed the jitter generator (fresh experiment)."""
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier})"
        )


__all__ = [
    "AmbiguousCommitError",
    "ConnectionDroppedError",
    "DEFAULT_FAULT_KINDS",
    "FaultError",
    "FaultPolicy",
    "FaultStats",
    "RequestTimeoutError",
    "RetryPolicy",
    "TransientServerError",
]
