"""Server-side admission control on the virtual clock.

Without admission control the simulated server has infinite capacity: any
number of in-flight requests overlap freely, so ``AsyncEngine`` fleets scale
without bound.  :class:`AdmissionController` bounds that — it models a
server with ``limit`` execution slots:

* Each admitted request occupies one slot for its service time.  A request
  arriving while every slot is busy **waits in queue** until the earliest
  slot frees; the wait is charged to the virtual clock as part of the
  request's latency (and surfaced in ``ConnectionStats.queue_time``), so
  overlap accounting saturates at the limit instead of scaling unboundedly.
* The queue is FIFO in virtual time: slots are modelled as free-at times
  and an arriving request takes the earliest-free slot, so requests drain
  in arrival order.  ``priority_slots`` reserves the N earliest-freeing
  slots for priority requests — normal requests queue behind the reserve,
  priority requests (``admit(..., priority=True)``) may use any slot.
* ``per_connection`` caps one connection's in-flight requests the same way,
  so a single aggressive client cannot monopolise the server.
* ``queue_timeout`` bounds the queue wait: a request that would wait longer
  is rejected with the existing :class:`repro.net.faults.RequestTimeoutError`
  fault type (carrying ``virtual_elapsed``), *without* occupying a slot.
  Queue timeouts are server rejections, not injected network faults, so
  they do not disturb the ``FaultStats`` invariant.

Everything is pure virtual-time bookkeeping — no threads, no real queue —
which keeps the sequential sync path free (a sequential client's clock is
always past every slot's free time) while concurrent async clients and
open-loop load generators observe real queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.faults import RequestTimeoutError


class AdmissionError(Exception):
    """Raised on invalid admission-controller configuration."""


@dataclass
class AdmissionStats:
    """Counters for one admission controller."""

    admitted: int = 0
    #: admitted requests that had to wait for a slot.
    queued: int = 0
    #: total virtual seconds spent waiting in queue.
    queue_seconds: float = 0.0
    #: requests rejected because their queue wait exceeded the timeout.
    queue_timeouts: int = 0
    #: highest number of simultaneously busy slots observed.
    peak_in_flight: int = 0

    def reset(self) -> None:
        self.admitted = 0
        self.queued = 0
        self.queue_seconds = 0.0
        self.queue_timeouts = 0
        self.peak_in_flight = 0

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "queued": self.queued,
            "queue_seconds": self.queue_seconds,
            "queue_timeouts": self.queue_timeouts,
            "peak_in_flight": self.peak_in_flight,
        }


class AdmissionController:
    """A concurrency limit with a FIFO/priority wait queue in virtual time.

    Shared by every connection of one engine.  ``admit`` is the whole
    protocol: given a request's arrival time and service duration it returns
    the queue wait (0.0 when a slot is free), books the slot, and updates
    the counters — or raises :class:`RequestTimeoutError` when the wait
    would exceed ``queue_timeout``.
    """

    def __init__(
        self,
        limit: int,
        *,
        per_connection: Optional[int] = None,
        queue_timeout: Optional[float] = None,
        priority_slots: int = 0,
    ) -> None:
        if limit < 1:
            raise AdmissionError(
                f"admission limit must be at least 1, got {limit}"
            )
        if per_connection is not None and per_connection < 1:
            raise AdmissionError(
                f"per-connection limit must be at least 1, "
                f"got {per_connection}"
            )
        if not 0 <= priority_slots < limit:
            raise AdmissionError(
                f"priority_slots must be in [0, limit), got {priority_slots}"
            )
        self.limit = limit
        self.per_connection = per_connection
        self.queue_timeout = queue_timeout
        self.priority_slots = priority_slots
        #: virtual time each server slot becomes free.
        self._slots: list[float] = [0.0] * limit
        #: connection key -> per-connection slot free times.
        self._connection_slots: dict = {}
        self.stats = AdmissionStats()

    def admit(
        self,
        start: float,
        service_seconds: float,
        *,
        connection=None,
        priority: bool = False,
    ) -> float:
        """Admit one request arriving at ``start``; returns its queue wait.

        The request begins service at ``start + wait`` and occupies its
        slot (and, when ``per_connection`` is set, one of the connection's
        slots) until ``start + wait + service_seconds``.  Raises
        :class:`RequestTimeoutError` — without occupying anything — when
        the wait would exceed ``queue_timeout``.
        """
        slots = self._slots
        order = sorted(range(len(slots)), key=slots.__getitem__)
        if priority or not self.priority_slots:
            index = order[0]
        else:
            # The priority reserve holds back the earliest-freeing slots;
            # normal traffic queues for the next one after the reserve.
            index = order[min(self.priority_slots, len(order) - 1)]
        begin = max(start, slots[index])
        connection_slots = None
        connection_index = 0
        if self.per_connection is not None and connection is not None:
            connection_slots = self._connection_slots.setdefault(
                connection, [0.0] * self.per_connection
            )
            connection_index = min(
                range(len(connection_slots)),
                key=connection_slots.__getitem__,
            )
            begin = max(begin, connection_slots[connection_index])
        wait = begin - start
        if self.queue_timeout is not None and wait > self.queue_timeout:
            self.stats.queue_timeouts += 1
            timeout = RequestTimeoutError(
                f"request timed out after {self.queue_timeout}s in the "
                f"admission queue (estimated wait {wait:.3f}s)",
                cost=self.queue_timeout,
            )
            timeout.virtual_elapsed = self.queue_timeout
            raise timeout
        done = begin + service_seconds
        slots[index] = done
        if connection_slots is not None:
            connection_slots[connection_index] = done
        stats = self.stats
        stats.admitted += 1
        if wait > 0.0:
            stats.queued += 1
            stats.queue_seconds += wait
        in_flight = sum(1 for free in slots if free > begin)
        if in_flight > stats.peak_in_flight:
            stats.peak_in_flight = in_flight
        return wait

    def release_connection(self, connection) -> None:
        """Forget a closed connection's per-connection slot bookkeeping."""
        self._connection_slots.pop(connection, None)

    def reset(self) -> None:
        """Zero the slots and counters (fresh experiment run)."""
        self._slots = [0.0] * self.limit
        self._connection_slots.clear()
        self.stats.reset()

    def register_metrics(self, registry) -> None:
        """Expose the controller's counters as a live ``admission`` view."""
        registry.register_view("admission", self.as_dict)

    def as_dict(self) -> dict:
        """Configuration plus counters (``Engine.stats()["admission"]``)."""
        return {
            "enabled": True,
            "limit": self.limit,
            "per_connection": self.per_connection,
            "queue_timeout": self.queue_timeout,
            "priority_slots": self.priority_slots,
            **self.stats.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(limit={self.limit}, "
            f"admitted={self.stats.admitted}, queued={self.stats.queued})"
        )


__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionStats",
]
