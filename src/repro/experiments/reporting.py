"""Exporting experiment result tables.

:class:`repro.experiments.harness.ResultTable` renders to aligned text for
the terminal; this module adds the formats a paper-reproduction pipeline
typically needs:

* ``to_markdown``   — a GitHub-flavoured markdown table (for EXPERIMENTS.md),
* ``to_csv``        — comma-separated values (for plotting scripts),
* ``to_series``     — ``{column -> [values]}``, the shape plotting libraries
  and the figure-comparison tests consume,
* ``write_report``  — write several tables into one text report file.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Union

from repro.experiments.harness import ResultTable


def to_markdown(table: ResultTable) -> str:
    """Render ``table`` as a GitHub-flavoured markdown table."""
    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(_cell(value) for value in row) + " |")
    for note in table.notes:
        lines.append("")
        lines.append(f"*{note}*")
    return "\n".join(lines) + "\n"


def to_csv(table: ResultTable) -> str:
    """Render ``table`` as CSV text (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def to_series(table: ResultTable) -> dict[str, list]:
    """Column-oriented view of the table (one list per column)."""
    return {name: table.column(name) for name in table.columns}


def write_report(
    tables: Iterable[ResultTable],
    path: Union[str, Path],
    fmt: str = "text",
) -> Path:
    """Write several tables into one report file.

    ``fmt`` is ``"text"`` (aligned tables), ``"markdown"``, or ``"csv"``
    (tables separated by blank lines).
    """
    path = Path(path)
    renderers = {
        "text": lambda t: t.render(),
        "markdown": to_markdown,
        "csv": to_csv,
    }
    try:
        renderer = renderers[fmt]
    except KeyError:
        raise ValueError(
            f"unknown report format {fmt!r}; choose from {sorted(renderers)}"
        ) from None
    parts = [renderer(table) for table in tables]
    path.write_text("\n\n".join(parts) + "\n")
    return path


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
