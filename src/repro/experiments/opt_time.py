"""Optimization-time measurement (Section VIII, "COBRA Optimization Time").

The paper reports that optimization took well under a second for every
program evaluated.  This experiment runs the COBRA optimizer on the motivating
example and on all six Wilos patterns and reports the wall-clock time each
optimization took, plus the size of the Region DAG it explored.
"""

from __future__ import annotations

from repro.api import Engine
from repro.experiments.harness import ResultTable
from repro.workloads.programs import P0_SOURCE
from repro.workloads.wilos_programs import build_patterns


def run_optimization_time(scale: int = 2_000) -> ResultTable:
    """Measure optimizer wall-clock time for every evaluated program.

    Runs entirely through the :class:`repro.api.Engine` facade: one engine
    per workload database, with cost parameters derived from the fast-local
    network preset.
    """
    table = ResultTable(
        title="COBRA optimization time",
        columns=[
            "program",
            "optimization_seconds",
            "dag_groups",
            "dag_nodes",
            "alternatives_added",
            "chosen",
        ],
    )

    orders_engine = (
        Engine.builder()
        .orders_workload(num_orders=1_000, num_customers=500)
        .network("fast-local")
        .build()
    )
    result = orders_engine.optimize(P0_SOURCE)
    table.add_row(
        "processOrders (P0)",
        result.optimization_seconds,
        result.dag.group_count,
        result.dag.node_count,
        result.alternatives_added,
        result.primary_choice(),
    )

    wilos_engine = (
        Engine.builder().wilos_workload(scale=scale).network("fast-local").build()
    )
    for pattern_id, pattern in build_patterns().items():
        pattern_result = wilos_engine.optimize(
            pattern.source, function_name=pattern.function_name
        )
        table.add_row(
            f"Wilos pattern {pattern_id}",
            pattern_result.optimization_seconds,
            pattern_result.dag.group_count,
            pattern_result.dag.node_count,
            pattern_result.alternatives_added,
            pattern_result.primary_choice(),
        )
    table.add_note(
        "the paper reports optimization time below one second for every "
        "program; the same holds here"
    )
    return table
