"""Experiment reproductions: one module per figure/table of the paper.

* :mod:`repro.experiments.figure13` — Experiments 1-3 (Figures 13a/13b/13c),
* :mod:`repro.experiments.figure15` — Experiment 4 (Figures 14, 15, 16),
* :mod:`repro.experiments.opt_time` — optimization-time measurement,
* :mod:`repro.experiments.ablations` — ablations of design choices,
* :mod:`repro.experiments.harness` — shared result tables and runners.
"""

from repro.experiments.harness import ResultTable

__all__ = ["ResultTable"]
