"""Experiments 1-3: Figure 13a, 13b, 13c of the paper.

The three experiments run the motivating-example programs P0 (Hibernate ORM,
N+1 selects), P1 (single SQL join), and P2 (prefetch both relations, join at
the client) under two simulated network conditions and varying Order/Customer
cardinalities, and record which alternative COBRA chooses at every point.

Two modes are provided:

* **measured** — the data is materialised in the in-memory database, the
  programs actually execute, and the virtual clock gives their execution
  time.  Used for the default (scaled-down) cardinalities.
* **analytical** — only table statistics are installed (no rows), and the
  reported numbers are the cost model's estimates for each alternative.  Used
  to also cover the paper's full-scale cardinalities (up to 1M orders) without
  materialising millions of Python dictionaries.

In both modes the COBRA column reports the value of the alternative the
optimizer chose at that point, exactly as in Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.appsim.runtime import AppRuntime
from repro.core.catalog import CostParameters
from repro.core.cost_model import CostModel
from repro.core.dag import RegionDag
from repro.core.optimizer import CobraOptimizer
from repro.core.plans import DagCostCalculator
from repro.db.database import Database
from repro.db.statistics import TableStatistics
from repro.experiments.harness import ResultTable
from repro.net.network import FAST_LOCAL, SLOW_REMOTE, NetworkConditions
from repro.workloads import programs, tpcds

#: Cardinalities the paper sweeps in Figures 13a and 13b.
PAPER_ORDER_COUNTS = (100, 1_000, 10_000, 100_000, 1_000_000)

#: Customer cardinalities the paper sweeps in Figure 13c.
PAPER_CUSTOMER_COUNTS = (10, 100, 1_000, 10_000, 100_000)

#: Customer cardinality fixed in Experiments 1 and 2.
PAPER_NUM_CUSTOMERS = 73_000

#: Order cardinality fixed in Experiment 3.
PAPER_NUM_ORDERS = 10_000

#: Default scale divisor for the measured runs (paper cardinality / divisor).
DEFAULT_SCALE_DIVISOR = 100

#: Strategy labels as the optimizer reports them, mapped to the paper's names.
STRATEGY_TO_PROGRAM = {
    "original": "Hibernate(P0)",
    "sql-join": "SQL Query(P1)",
    "prefetch": "Prefetching(P2)",
}


@dataclass
class Figure13Point:
    """One x-axis point of a Figure 13 plot."""

    num_orders: int
    num_customers: int
    p0_seconds: float
    p1_seconds: float
    p2_seconds: float
    cobra_choice: str
    cobra_seconds: float
    mode: str

    def as_row(self, vary: str) -> list:
        x = self.num_orders if vary == "orders" else self.num_customers
        return [
            x,
            self.p0_seconds,
            self.p1_seconds,
            self.p2_seconds,
            self.cobra_choice,
            self.cobra_seconds,
            self.mode,
        ]


# -- measured mode -------------------------------------------------------------


def measure_point(
    num_orders: int,
    num_customers: int,
    network: NetworkConditions,
    seed: int = 7,
) -> Figure13Point:
    """Materialise the data, run P0/P1/P2, and record COBRA's choice."""
    runtime = tpcds.build_runtime(
        num_orders=num_orders,
        num_customers=num_customers,
        network=network,
        seed=seed,
    )
    measurements = {}
    for label, function in programs.VARIANTS.items():
        measurements[label] = runtime.measure(function)
    results = {label: m.result for label, m in measurements.items()}
    reference = results["Hibernate(P0)"]
    for label, value in results.items():
        if value != reference:
            raise AssertionError(
                f"variant {label} produced a different result at "
                f"orders={num_orders}, customers={num_customers}"
            )
    choice_label = _cobra_choice(runtime.database, network)
    return Figure13Point(
        num_orders=num_orders,
        num_customers=num_customers,
        p0_seconds=measurements["Hibernate(P0)"].elapsed_seconds,
        p1_seconds=measurements["SQL Query(P1)"].elapsed_seconds,
        p2_seconds=measurements["Prefetching(P2)"].elapsed_seconds,
        cobra_choice=choice_label,
        cobra_seconds=measurements[choice_label].elapsed_seconds,
        mode="measured",
    )


def _cobra_choice(database: Database, network: NetworkConditions) -> str:
    """Which of P0/P1/P2 COBRA picks for the current data and network."""
    parameters = CostParameters.for_network(network)
    optimizer = CobraOptimizer(
        database, parameters, registry=tpcds.build_registry()
    )
    result = optimizer.optimize(programs.P0_SOURCE)
    return STRATEGY_TO_PROGRAM.get(result.primary_choice(), "Hibernate(P0)")


# -- analytical mode -----------------------------------------------------------


def build_stats_only_database(num_orders: int, num_customers: int) -> Database:
    """A database with the orders/customer schema and statistics but no rows."""
    database = Database()
    database.create_table(
        "customer", tpcds.customer_columns(), primary_key="c_customer_sk"
    )
    database.create_table(
        "orders", tpcds.orders_columns(), primary_key="o_id"
    )
    database.set_table_statistics(
        "customer",
        TableStatistics(
            row_count=num_customers,
            distinct={"c_customer_sk": num_customers},
            row_width=tpcds.CUSTOMER_ROW_WIDTH,
        ),
    )
    database.set_table_statistics(
        "orders",
        TableStatistics(
            row_count=num_orders,
            distinct={
                "o_id": num_orders,
                "o_customer_sk": min(num_orders, num_customers),
            },
            row_width=tpcds.ORDER_ROW_WIDTH,
        ),
    )
    return database


def estimate_point(
    num_orders: int,
    num_customers: int,
    network: NetworkConditions,
) -> Figure13Point:
    """Cost-model estimates for P0/P1/P2 at paper-scale cardinalities."""
    database = build_stats_only_database(num_orders, num_customers)
    parameters = CostParameters.for_network(network)
    optimizer = CobraOptimizer(
        database, parameters, registry=tpcds.build_registry()
    )
    result = optimizer.optimize(programs.P0_SOURCE)
    estimates = {
        "Hibernate(P0)": _estimate_source(
            optimizer, programs.P0_SOURCE
        ),
        "SQL Query(P1)": _estimate_source(optimizer, programs.P1_SOURCE),
        "Prefetching(P2)": _estimate_source(optimizer, programs.P2_SOURCE),
    }
    choice_label = STRATEGY_TO_PROGRAM.get(
        result.primary_choice(), "Hibernate(P0)"
    )
    return Figure13Point(
        num_orders=num_orders,
        num_customers=num_customers,
        p0_seconds=estimates["Hibernate(P0)"],
        p1_seconds=estimates["SQL Query(P1)"],
        p2_seconds=estimates["Prefetching(P2)"],
        cobra_choice=choice_label,
        cobra_seconds=estimates[choice_label],
        mode="analytical",
    )


def _estimate_source(optimizer: CobraOptimizer, source: str) -> float:
    return optimizer.estimate_cost(source)


# -- the three experiments -----------------------------------------------------


def run_figure13a(
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    include_analytical: bool = True,
    order_counts: Sequence[int] = PAPER_ORDER_COUNTS,
    num_customers: int = PAPER_NUM_CUSTOMERS,
) -> ResultTable:
    """Experiment 1: slow remote network, vary the number of Order rows."""
    return _run_order_sweep(
        title="Figure 13a — slow remote network, varying Orders",
        network=SLOW_REMOTE,
        scale_divisor=scale_divisor,
        include_analytical=include_analytical,
        order_counts=order_counts,
        num_customers=num_customers,
    )


def run_figure13b(
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    include_analytical: bool = True,
    order_counts: Sequence[int] = PAPER_ORDER_COUNTS,
    num_customers: int = PAPER_NUM_CUSTOMERS,
) -> ResultTable:
    """Experiment 2: fast local network, vary the number of Order rows."""
    return _run_order_sweep(
        title="Figure 13b — fast local network, varying Orders",
        network=FAST_LOCAL,
        scale_divisor=scale_divisor,
        include_analytical=include_analytical,
        order_counts=order_counts,
        num_customers=num_customers,
    )


def run_figure13c(
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    include_analytical: bool = True,
    customer_counts: Sequence[int] = PAPER_CUSTOMER_COUNTS,
    num_orders: int = PAPER_NUM_ORDERS,
) -> ResultTable:
    """Experiment 3: slow remote network, vary the number of Customer rows."""
    table = ResultTable(
        title="Figure 13c — slow remote network, varying Customers",
        columns=[
            "customers",
            "Hibernate(P0)",
            "SQL Query(P1)",
            "Prefetching(P2)",
            "COBRA choice",
            "COBRA",
            "mode",
        ],
    )
    for num_customers in customer_counts:
        scaled_customers = max(num_customers // scale_divisor, 5)
        scaled_orders = max(num_orders // scale_divisor, 20)
        point = measure_point(scaled_orders, scaled_customers, SLOW_REMOTE)
        table.add_row(*point.as_row("customers"))
        if include_analytical:
            analytic = estimate_point(num_orders, num_customers, SLOW_REMOTE)
            table.add_row(*analytic.as_row("customers"))
    table.add_note(
        f"measured rows use cardinalities divided by {scale_divisor}; "
        "analytical rows are cost-model estimates at paper scale"
    )
    return table


def _run_order_sweep(
    title: str,
    network: NetworkConditions,
    scale_divisor: int,
    include_analytical: bool,
    order_counts: Sequence[int],
    num_customers: int,
) -> ResultTable:
    table = ResultTable(
        title=title,
        columns=[
            "orders",
            "Hibernate(P0)",
            "SQL Query(P1)",
            "Prefetching(P2)",
            "COBRA choice",
            "COBRA",
            "mode",
        ],
    )
    for num_orders in order_counts:
        scaled_orders = max(num_orders // scale_divisor, 10)
        scaled_customers = max(num_customers // scale_divisor, 10)
        point = measure_point(scaled_orders, scaled_customers, network)
        table.add_row(*point.as_row("orders"))
        if include_analytical:
            analytic = estimate_point(num_orders, num_customers, network)
            table.add_row(*analytic.as_row("orders"))
    table.add_note(
        f"measured rows use cardinalities divided by {scale_divisor}; "
        "analytical rows are cost-model estimates at paper scale"
    )
    return table
