"""Ablation studies for design choices called out in the paper.

These are not figures of the paper itself; they probe the design decisions
the paper discusses in Sections V, VI and VIII:

* **Amortization factor sweep** — how the prefetch-vs-query decision moves
  with AF (Section VI introduces AF; Figure 15 evaluates only AF = 1 and 50).
* **Rule-set ablation** — what happens to the chosen plan and its cost when
  the prefetching rules (N1/N2) or the SQL-translation rules (T1-T5) are
  removed, quantifying how much of COBRA's benefit each rule family provides.
* **Network sensitivity** — the crossover point between P1 and P2 for the
  motivating example as bandwidth scales between the two presets (Experiments
  1-3 only evaluate the two endpoints).
* **Duplicate detection** — size of the Region DAG with and without node
  reuse, demonstrating why Volcano-style duplicate detection matters for
  termination and memory.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.catalog import CostParameters
from repro.core.optimizer import CobraOptimizer
from repro.experiments.figure13 import build_stats_only_database
from repro.experiments.harness import ResultTable
from repro.fir.rules import (
    AggregationRule,
    JoinRewriteRule,
    NestedJoinRule,
    PredicatePushRule,
    PrefetchFilterRule,
    PrefetchGroupRule,
    PrefetchNestedJoinRule,
    PrefetchRule,
    SqlTranslationRule,
)
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE
from repro.workloads.wilos import build_wilos_database
from repro.workloads.wilos_programs import build_patterns

#: Rule families used by the rule-set ablation.
SQL_RULES = (
    SqlTranslationRule(),
    AggregationRule(),
    PredicatePushRule(),
    JoinRewriteRule(),
    NestedJoinRule(),
)
PREFETCH_RULES = (
    PrefetchRule(),
    PrefetchFilterRule(),
    PrefetchNestedJoinRule(),
    PrefetchGroupRule(),
)


def run_af_sweep(
    factors: Sequence[float] = (1, 2, 5, 10, 20, 50, 100),
    scale: int = 2_000,
) -> ResultTable:
    """How COBRA's choice for pattern D moves with the amortization factor."""
    table = ResultTable(
        title="Ablation — amortization factor sweep (Wilos pattern D)",
        columns=["amortization_factor", "chosen_strategy", "estimated_cost"],
    )
    database = build_wilos_database(scale=scale)
    pattern = build_patterns()["D"]
    for factor in factors:
        parameters = CostParameters.for_network(FAST_LOCAL).with_amortization(
            factor
        )
        optimizer = CobraOptimizer(database, parameters)
        result = optimizer.optimize(
            pattern.source, function_name=pattern.function_name
        )
        table.add_row(factor, result.primary_choice(), result.best_cost)
    table.add_note(
        "a larger AF amortises the prefetch over more invocations, so the "
        "chosen strategy should move from per-call queries towards prefetching"
    )
    return table


def run_rule_ablation(scale: int = 2_000) -> ResultTable:
    """Chosen plan and estimated cost with rule families removed."""
    table = ResultTable(
        title="Ablation — rule families (motivating example, slow remote)",
        columns=["rule_set", "chosen_strategy", "estimated_cost", "alternatives"],
    )
    database = tpcds.build_orders_database(num_orders=scale, num_customers=scale // 10)
    parameters = CostParameters.for_network(SLOW_REMOTE)
    registry = tpcds.build_registry()
    configurations = {
        "all rules": None,
        "SQL rules only (no prefetching)": SQL_RULES,
        "prefetch rules only (no SQL translation)": PREFETCH_RULES,
        "no rules (original only)": (),
    }
    for label, rules in configurations.items():
        optimizer = CobraOptimizer(
            database, parameters, registry=registry, fir_rules=rules
        )
        result = optimizer.optimize(P0_SOURCE)
        table.add_row(
            label,
            result.primary_choice(),
            result.best_cost,
            result.alternatives_added,
        )
    return table


def run_network_sensitivity(
    bandwidth_factors: Sequence[float] = (1, 4, 16, 64, 256, 1024, 4096),
    num_orders: int = 1_000_000,
    num_customers: int = 73_000,
) -> ResultTable:
    """Where the P1/P2 crossover falls as the network speeds up.

    Starts from the slow-remote preset and scales bandwidth and latency
    towards the fast-local preset.
    """
    table = ResultTable(
        title="Ablation — network sensitivity of the P1/P2 choice",
        columns=[
            "bandwidth_factor",
            "latency_factor",
            "chosen",
            "p1_estimate",
            "p2_estimate",
        ],
    )
    from repro.workloads.programs import P1_SOURCE, P2_SOURCE

    for factor in bandwidth_factors:
        latency_factor = 1.0 / factor
        network = SLOW_REMOTE.scaled(
            bandwidth_factor=factor, latency_factor=latency_factor
        )
        database = build_stats_only_database(num_orders, num_customers)
        parameters = CostParameters.for_network(network)
        optimizer = CobraOptimizer(
            database, parameters, registry=tpcds.build_registry()
        )
        result = optimizer.optimize(P0_SOURCE)
        table.add_row(
            factor,
            latency_factor,
            result.primary_choice(),
            optimizer.estimate_cost(P1_SOURCE),
            optimizer.estimate_cost(P2_SOURCE),
        )
    return table


def run_dynamic_prefetch_ablation(
    access_counts: Sequence[int] = (1, 5, 20, 80, 300),
    num_customers: int = 500,
) -> ResultTable:
    """Dynamic (ski-rental) prefetching vs the two static policies.

    Section VI lists dynamic prefetching as future work; this ablation shows
    how the dynamic policy tracks whichever static policy (never prefetch /
    always prefetch) is better as the number of accesses grows.
    """
    from repro.appsim.dynamic_prefetch import dynamic_lookup_program
    from repro.workloads import tpcds as tpcds_workload

    table = ResultTable(
        title="Ablation — dynamic (ski-rental) prefetching",
        columns=[
            "accesses",
            "never_prefetch_s",
            "always_prefetch_s",
            "dynamic_s",
            "dynamic_prefetched",
        ],
    )
    for accesses in access_counts:
        runtime = tpcds_workload.build_runtime(
            num_orders=50, num_customers=num_customers, network=SLOW_REMOTE
        )
        keys = [(i % num_customers) + 1 for i in range(accesses)]

        def never(rt):
            return [
                rt.execute_query(
                    "select * from customer where c_customer_sk = ?", (key,)
                )[0]
                for key in keys
            ]

        def always(rt):
            rt.prefetch("customer", "c_customer_sk", "pf")
            return [rt.lookup(key, "pf") for key in keys]

        stats_holder = {}

        def dynamic(rt):
            rows, stats = dynamic_lookup_program(
                rt, "customer", "c_customer_sk", keys
            )
            stats_holder["stats"] = stats
            return rows

        never_time = runtime.measure(never).elapsed_seconds
        always_time = runtime.measure(always).elapsed_seconds
        dynamic_time = runtime.measure(dynamic).elapsed_seconds
        table.add_row(
            accesses,
            never_time,
            always_time,
            dynamic_time,
            stats_holder["stats"].prefetched,
        )
    table.add_note(
        "the dynamic policy should stay close to the better static policy at "
        "both ends of the sweep (2-competitive ski rental)"
    )
    return table


def run_dedup_ablation(scale: int = 2_000) -> ResultTable:
    """Region DAG size with Volcano-style duplicate detection vs without.

    "Without" is simulated by counting every alternative insertion as a new
    node (the DAG itself always deduplicates; the counterfactual count shows
    what an unshared expansion would have produced).
    """
    table = ResultTable(
        title="Ablation — duplicate detection in the Region DAG",
        columns=[
            "program",
            "groups",
            "nodes (with dedup)",
            "insertions (without dedup)",
        ],
    )
    parameters = CostParameters.for_network(FAST_LOCAL)
    database = build_wilos_database(scale=scale)
    for pattern_id, pattern in build_patterns().items():
        optimizer = CobraOptimizer(database, parameters)
        result = optimizer.optimize(
            pattern.source, function_name=pattern.function_name
        )
        dag = result.dag
        # Counterfactual: every region of every alternative inserted afresh.
        insertions = 0
        for group in dag.iter_groups():
            for node in group.alternatives:
                insertions += 1 + len(node.children)
        table.add_row(
            f"Wilos pattern {pattern_id}",
            dag.group_count,
            dag.node_count,
            insertions,
        )
    return table
