"""Shared infrastructure for the experiment reproductions.

Every experiment produces one or more :class:`ResultTable` objects: a title,
column names, and rows of values.  Tables render to aligned text (what the
benchmark harness prints) and to dictionaries (what tests assert on).

``run_program_variant`` compiles a program source, runs it through a driver on
a fresh runtime measurement, and returns the measurement — used whenever an
experiment executes optimizer-generated code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.appsim.runtime import AppRuntime, RunMeasurement


@dataclass
class ResultTable:
    """A table of experiment results (one per figure/table of the paper)."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned text."""
        formatted_rows = [
            [_format_value(value) for value in row] for row in self.rows
        ]
        widths = [len(c) for c in self.columns]
        for row in formatted_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            name.ljust(widths[index]) for index, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in formatted_rows:
            lines.append(
                "  ".join(
                    cell.ljust(widths[index]) for index, cell in enumerate(row)
                )
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class VariantOutcome:
    """Measurement of one program variant within an experiment."""

    label: str
    measurement: RunMeasurement
    source: str = ""

    @property
    def elapsed(self) -> float:
        return self.measurement.elapsed_seconds


def compile_program(source: str, function_name: str, extra_globals: Optional[dict] = None):
    """Compile program source and return the named function object."""
    namespace: dict = dict(extra_globals or {})
    exec(compile(source, f"<{function_name}>", "exec"), namespace)
    try:
        return namespace[function_name]
    except KeyError:
        raise ValueError(
            f"program source does not define {function_name!r}"
        ) from None


def run_program_variant(
    runtime: AppRuntime,
    source: str,
    function_name: str,
    driver: Callable[[AppRuntime, Callable], Any],
    label: str,
    extra_globals: Optional[dict] = None,
) -> VariantOutcome:
    """Compile and measure one program variant."""
    function = compile_program(source, function_name, extra_globals)
    measurement = runtime.measure(lambda rt: driver(rt, function))
    return VariantOutcome(label=label, measurement=measurement, source=source)


def assert_equivalent(outcomes: Sequence[VariantOutcome]) -> bool:
    """True when all variant outcomes produced the same result."""
    if not outcomes:
        return True
    reference = outcomes[0].measurement.result
    return all(o.measurement.result == reference for o in outcomes[1:])
