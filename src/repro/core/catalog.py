"""The cost catalog file.

The paper: "The cost metrics we used were provided to our system as a cost
catalog file."  This module serialises :class:`CostParameters` to and from a
small JSON document so experiments can be configured without code changes,
and provides the two network presets used in the evaluation.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.core.cost_model import CostParameters
from repro.net.network import FAST_LOCAL, SLOW_REMOTE, NetworkConditions, PRESETS


class CatalogError(Exception):
    """Raised for malformed cost catalog files."""


_FIELDS = {
    "network_round_trip",
    "bandwidth_bytes_per_sec",
    "statement_cost",
    "operator_cost",
    "amortization_factor",
    "branch_probability",
    "default_loop_iterations",
}


def to_dict(parameters: CostParameters) -> dict:
    """Serialise cost parameters to a plain dictionary."""
    return asdict(parameters)


def from_dict(data: dict) -> CostParameters:
    """Build cost parameters from a dictionary, validating field names."""
    unknown = set(data) - _FIELDS - {"network"}
    if unknown:
        raise CatalogError(
            f"unknown cost catalog fields: {sorted(unknown)}; valid fields "
            f"are {sorted(_FIELDS)} plus 'network'"
        )
    values = dict(data)
    network_name = values.pop("network", None)
    if network_name is not None:
        network = PRESETS.get(network_name)
        if network is None:
            raise CatalogError(
                f"unknown network preset {network_name!r}; presets are "
                f"{sorted(PRESETS)}"
            )
        base = CostParameters.for_network(network)
        merged = asdict(base)
        merged.update(values)
        values = merged
    return CostParameters(**values)


def save_catalog(
    parameters: CostParameters, path: Union[str, Path]
) -> Path:
    """Write a cost catalog file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(to_dict(parameters), indent=2) + "\n")
    return path


def load_catalog(path: Union[str, Path]) -> CostParameters:
    """Read a cost catalog file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CatalogError(f"cannot read cost catalog {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise CatalogError("cost catalog must be a JSON object")
    return from_dict(data)


def catalog_for_network(
    network: Union[str, NetworkConditions], **overrides
) -> CostParameters:
    """Cost parameters for a named or explicit network preset."""
    if isinstance(network, str):
        preset = PRESETS.get(network)
        if preset is None:
            raise CatalogError(
                f"unknown network preset {network!r}; presets are "
                f"{sorted(PRESETS)}"
            )
        network = preset
    return CostParameters.for_network(network, **overrides)


#: Ready-made parameter sets for the paper's two network conditions.
SLOW_REMOTE_PARAMETERS = CostParameters.for_network(SLOW_REMOTE)
FAST_LOCAL_PARAMETERS = CostParameters.for_network(FAST_LOCAL)
