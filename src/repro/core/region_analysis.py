"""Region analysis: from Python source to a region tree with data-access info.

The paper builds regions from the control-flow graph of Java bytecode (via
Soot); it notes that "it is possible to use an abstract syntax tree of code
written in a structured programming language to identify program regions".
This reproduction follows that route: application functions are Python source,
parsed with :mod:`ast`, and each statement/if/for maps directly onto a region.

Besides the region structure, the analysis annotates regions with the
data-access operations COBRA cares about:

* explicit SQL queries (``rt.execute_query("select ...")``),
* ORM collection loads (``rt.orm.load_all("Order")``),
* lazy many-to-one loads (``cust = o.customer`` where ``customer`` is a mapped
  relation of the loop variable's entity — the N+1 pattern),
* prefetches and local cache lookups (already-rewritten programs).

The ORM mapping registry supplies entity→table and relation→join-column
information so later transformation rules can produce concrete SQL.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass, field
from typing import Optional

from repro.core.regions import (
    BasicBlockRegion,
    ConditionalRegion,
    FunctionRegion,
    LoopRegion,
    QueryCallInfo,
    Region,
    SequentialRegion,
)
from repro.orm.mapping import MappingRegistry


class AnalysisError(Exception):
    """Raised when the program cannot be analysed."""


@dataclass
class AnalysisContext:
    """Everything the analysis needs besides the source text."""

    registry: Optional[MappingRegistry] = None
    runtime_parameter: Optional[str] = None
    #: loop variable name -> entity name (for lazy-load detection)
    loop_entities: dict = field(default_factory=dict)


@dataclass
class ProgramInfo:
    """Result of analysing one function."""

    name: str
    parameters: list[str]
    region: FunctionRegion
    source: str
    context: AnalysisContext

    def cursor_loops(self) -> list[LoopRegion]:
        """All cursor loops in the program."""
        return [
            r
            for r in self.region.walk()
            if isinstance(r, LoopRegion) and r.is_cursor_loop
        ]


def analyze_program(
    source: str,
    registry: Optional[MappingRegistry] = None,
    function_name: Optional[str] = None,
) -> ProgramInfo:
    """Analyse the (single) function in ``source`` and build its region tree."""
    source = textwrap.dedent(source)
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse program: {exc}") from exc
    functions = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if not functions:
        raise AnalysisError("no function definition found in program source")
    if function_name is not None:
        matches = [f for f in functions if f.name == function_name]
        if not matches:
            raise AnalysisError(f"no function named {function_name!r} in source")
        function = matches[0]
    else:
        function = functions[0]

    parameters = [a.arg for a in function.args.args]
    context = AnalysisContext(
        registry=registry,
        runtime_parameter=parameters[0] if parameters else None,
    )
    body = _build_sequence(function.body, context, prefix=function.name)
    region = FunctionRegion(function.name, parameters, body)
    return ProgramInfo(
        name=function.name,
        parameters=parameters,
        region=region,
        source=source,
        context=context,
    )


# -- region construction --------------------------------------------------


def _build_sequence(
    statements: list[ast.stmt], context: AnalysisContext, prefix: str
) -> Region:
    regions = [
        _build_region(stmt, context, f"{prefix}.{index}")
        for index, stmt in enumerate(statements)
    ]
    if len(regions) == 1:
        return regions[0]
    return SequentialRegion(regions, label=f"{prefix}.seq")


def _build_region(
    stmt: ast.stmt, context: AnalysisContext, label: str
) -> Region:
    if isinstance(stmt, ast.For):
        return _build_loop(stmt, context, label)
    if isinstance(stmt, ast.While):
        body = _build_sequence(stmt.body, context, f"{label}.body")
        return LoopRegion(
            loop_variable="",
            iterable=stmt.test,
            body=body,
            label=label,
            query=None,
            loop_node=stmt,
        )
    if isinstance(stmt, ast.If):
        then_region = _build_sequence(stmt.body, context, f"{label}.then")
        else_region = (
            _build_sequence(stmt.orelse, context, f"{label}.else")
            if stmt.orelse
            else None
        )
        return ConditionalRegion(stmt.test, then_region, else_region, label)
    queries = _queries_in_statement(stmt, context)
    return BasicBlockRegion(stmt, label=label, queries=queries)


def _build_loop(
    stmt: ast.For, context: AnalysisContext, label: str
) -> LoopRegion:
    loop_variable = (
        stmt.target.id if isinstance(stmt.target, ast.Name) else ast.unparse(stmt.target)
    )
    query = classify_data_access(stmt.iter, context)
    if query is not None and query.kind == "load_all" and context.registry:
        context.loop_entities[loop_variable] = query.entity
    elif query is not None and query.kind == "sql":
        context.loop_entities.pop(loop_variable, None)
    body = _build_sequence(stmt.body, context, f"{label}.body")
    return LoopRegion(
        loop_variable=loop_variable,
        iterable=stmt.iter,
        body=body,
        label=label,
        query=query,
        loop_node=stmt,
    )


# -- data-access classification -------------------------------------------


def classify_data_access(
    node: ast.expr, context: AnalysisContext
) -> Optional[QueryCallInfo]:
    """Classify an expression as a data-access call, if it is one."""
    if not isinstance(node, ast.Call):
        return None
    callee = _attribute_chain(node.func)
    if callee is None:
        return None
    runtime = context.runtime_parameter
    # rt.execute_query("sql"[, params]) / rt.execute_query_result(...)
    if callee[-1] in {"execute_query", "execute_query_result"} and (
        runtime is None or callee[0] == runtime or callee[-2:] == ["orm", callee[-1]]
    ):
        sql = _literal_string(node.args[0]) if node.args else None
        return QueryCallInfo(kind="sql", sql=sql)
    # rt.orm.load_all("Entity")
    if callee[-1] == "load_all":
        entity = _literal_string(node.args[0]) if node.args else None
        table = None
        if entity and context.registry and context.registry.has_entity(entity):
            table = context.registry.entity(entity).table
        return QueryCallInfo(kind="load_all", entity=entity, table=table)
    # rt.execute_update("update ...", params) — a database write.
    if callee[-1] == "execute_update":
        sql = _literal_string(node.args[0]) if node.args else None
        return QueryCallInfo(kind="update", sql=sql)
    # rt.prefetch("table", "column") / rt.prefetch_group(...) /
    # rt.prefetch_query(sql, "column")
    if callee[-1] in {"prefetch", "prefetch_group", "prefetch_query"}:
        first = _literal_string(node.args[0]) if node.args else None
        column = (
            _literal_string(node.args[1]) if len(node.args) > 1 else None
        )
        info = QueryCallInfo(kind="prefetch", key_column=column)
        if callee[-1] == "prefetch_query":
            info.sql = first
        else:
            info.table = first
        return info
    # rt.cache.cache_by_column(rows, "column")
    if callee[-1] == "cache_by_column":
        column = (
            _literal_string(node.args[1]) if len(node.args) > 1 else None
        )
        return QueryCallInfo(kind="prefetch", key_column=column)
    # rt.lookup(key, "region") / rt.lookup_group(key, "region") /
    # rt.cache.lookup(key, "region")
    if callee[-1] in {"lookup", "lookup_group"}:
        region = (
            _literal_string(node.args[1]) if len(node.args) > 1 else None
        )
        table = None
        key_column = region
        if region and "." in region:
            table, key_column = region.split(".", 1)
        return QueryCallInfo(kind="lookup", table=table, key_column=key_column)
    # rt.orm.get("Entity", key) — a point lookup through the ORM.
    if callee[-1] == "get" and len(callee) >= 2 and callee[-2] == "orm":
        entity = _literal_string(node.args[0]) if node.args else None
        table = None
        if entity and context.registry and context.registry.has_entity(entity):
            table = context.registry.entity(entity).table
        return QueryCallInfo(kind="orm_get", entity=entity, table=table)
    return None


def _queries_in_statement(
    stmt: ast.stmt, context: AnalysisContext
) -> list[QueryCallInfo]:
    """All data-access operations performed by one statement."""
    queries: list[QueryCallInfo] = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            info = classify_data_access(node, context)
            if info is not None:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    info.target_variable = stmt.targets[0].id
                queries.append(info)
        elif isinstance(node, ast.Attribute):
            lazy = _classify_lazy_load(node, context)
            if lazy is not None:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    lazy.target_variable = stmt.targets[0].id
                queries.append(lazy)
    return queries


def _classify_lazy_load(
    node: ast.Attribute, context: AnalysisContext
) -> Optional[QueryCallInfo]:
    """Detect ``o.relation`` where ``o`` is a loop variable over an entity."""
    if context.registry is None:
        return None
    if not isinstance(node.value, ast.Name):
        return None
    entity_name = context.loop_entities.get(node.value.id)
    if entity_name is None or not context.registry.has_entity(entity_name):
        return None
    definition = context.registry.entity(entity_name)
    if not definition.has_relation(node.attr):
        return None
    relation = definition.relation(node.attr)
    target = context.registry.entity(relation.target_entity)
    return QueryCallInfo(
        kind="lazy_load",
        entity=relation.target_entity,
        table=target.table,
        relation_name=node.attr,
        key_column=relation.target_key_column,
        source_column=relation.join_column,
    )


# -- small AST helpers -----------------------------------------------------


def _attribute_chain(node: ast.expr) -> Optional[list[str]]:
    """Return ['rt', 'orm', 'load_all'] for ``rt.orm.load_all``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _literal_string(node: ast.expr) -> Optional[str]:
    """The value of a string literal, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
