"""The heuristic optimizer baseline (the prior-work policy COBRA is compared to).

The paper's Experiment 4 compares COBRA against "the heuristic from [4]":
push as much computation as possible into SQL queries, then prefetch the
query results at the earliest program point — without consulting a cost
model.  This module packages that policy behind the same interface as
:class:`repro.core.optimizer.CobraOptimizer`, reusing the same Region DAG and
transformation rules so the two optimizers differ only in how they *choose*
among alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.cost_model import CostModel, CostParameters
from repro.core.dag import RegionDag
from repro.core.optimizer import CobraOptimizer, OptimizationResult
from repro.core.plans import DagCostCalculator, Plan, PlanExtractor, heuristic_chooser
from repro.db.database import Database
from repro.fir.rules import FIRRule
from repro.orm.mapping import MappingRegistry


@dataclass
class HeuristicResult:
    """Outcome of a heuristic rewrite."""

    plan: Plan
    cobra_result: OptimizationResult

    @property
    def rewritten_source(self) -> str:
        return self.plan.source

    @property
    def chosen_strategies(self) -> set[str]:
        return self.plan.chosen_strategies

    @property
    def estimated_cost(self) -> float:
        return self.plan.cost


class HeuristicOptimizer:
    """Always-push-to-SQL rewriting (no cost-based choice)."""

    def __init__(
        self,
        database: Database,
        parameters: CostParameters,
        registry: Optional[MappingRegistry] = None,
        fir_rules: Optional[Sequence[FIRRule]] = None,
    ) -> None:
        self._cobra = CobraOptimizer(
            database=database,
            parameters=parameters,
            registry=registry,
            fir_rules=fir_rules,
        )

    def rewrite(
        self, source: str, function_name: Optional[str] = None
    ) -> HeuristicResult:
        """Rewrite ``source`` with the heuristic policy."""
        result = self._cobra.optimize(source, function_name=function_name)
        plan = self._cobra.extract_heuristic_plan(result)
        return HeuristicResult(plan=plan, cobra_result=result)
