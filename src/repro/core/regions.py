"""Program regions (Section III-B of the paper).

A region is a single-entry single-exit fragment of a program.  The kinds used
by COBRA are:

* basic block — a single statement,
* sequential region — a sequence of regions,
* conditional region — an if/else,
* loop region — a loop (for COBRA's purposes, usually a *cursor loop* over a
  query result or an ORM collection),
* function region — the whole function body (the outermost region).

Regions form a tree (the *region tree*); the COBRA optimizer converts the
region tree into an AND-OR *Region DAG* (:mod:`repro.core.dag`) whose OR nodes
are regions and whose AND nodes are the operators that combine sub-regions
(``seq``, ``cond``, ``loop``, ``block``).

Every region can render itself back to Python source (``to_source``), which is
what plan extraction uses for the parts of the program that transformations
left untouched.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


class RegionError(Exception):
    """Raised for malformed region trees."""


@dataclass
class QueryCallInfo:
    """Description of a data-access call found in a statement or loop header.

    ``kind`` is one of:

    * ``"sql"``       — ``rt.execute_query("<sql>")`` with a literal query,
    * ``"load_all"``  — ``rt.orm.load_all("<Entity>")``,
    * ``"lazy_load"`` — attribute access on a loop variable that the ORM
      mapping declares as a many-to-one relation (a per-iteration lookup),
    * ``"prefetch"``  — ``rt.prefetch(...)`` / ``rt.cache.cache_by_column(...)``,
    * ``"lookup"``    — ``rt.lookup(...)`` local cache lookup.
    """

    kind: str
    sql: Optional[str] = None
    entity: Optional[str] = None
    table: Optional[str] = None
    target_variable: Optional[str] = None
    relation_name: Optional[str] = None
    key_column: Optional[str] = None
    source_column: Optional[str] = None

    def describe(self) -> str:
        if self.kind == "sql":
            return f"sql:{self.sql}"
        if self.kind == "load_all":
            return f"load_all:{self.entity}"
        if self.kind == "lazy_load":
            return f"lazy:{self.relation_name}"
        return self.kind


class Region:
    """Base class of all regions."""

    kind: str = "region"

    def __init__(self, label: str = "") -> None:
        self.label = label

    # -- structure -------------------------------------------------------

    def sub_regions(self) -> tuple["Region", ...]:
        """Immediate sub-regions, in program order."""
        return ()

    def walk(self) -> Iterator["Region"]:
        """Pre-order traversal of the region tree."""
        yield self
        for sub in self.sub_regions():
            yield from sub.walk()

    def statement_count(self) -> int:
        """Number of simple statements contained in the region."""
        return sum(sub.statement_count() for sub in self.sub_regions())

    # -- code ------------------------------------------------------------

    def to_source(self, indent: int = 0) -> str:
        """Render the region back to Python source."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label!r})"


class BasicBlockRegion(Region):
    """A single statement."""

    kind = "block"

    def __init__(
        self,
        statement: ast.stmt,
        label: str = "",
        queries: Optional[Iterable[QueryCallInfo]] = None,
    ) -> None:
        super().__init__(label)
        self.statement = statement
        self.queries: list[QueryCallInfo] = list(queries or [])

    def statement_count(self) -> int:
        return 1

    def to_source(self, indent: int = 0) -> str:
        text = ast.unparse(self.statement)
        prefix = " " * indent
        return "\n".join(prefix + line for line in text.splitlines())

    @property
    def source(self) -> str:
        """Unindented source of the statement."""
        return ast.unparse(self.statement)

    def has_query(self) -> bool:
        """True if the statement performs any database access."""
        return any(
            q.kind in {"sql", "load_all", "lazy_load"} for q in self.queries
        )


class SequentialRegion(Region):
    """A sequence of two or more regions (or a wrapper around one)."""

    kind = "seq"

    def __init__(self, regions: Iterable[Region], label: str = "") -> None:
        super().__init__(label)
        self.regions: list[Region] = list(regions)
        if not self.regions:
            raise RegionError("a sequential region needs at least one child")

    def sub_regions(self) -> tuple[Region, ...]:
        return tuple(self.regions)

    def to_source(self, indent: int = 0) -> str:
        return "\n".join(region.to_source(indent) for region in self.regions)


class ConditionalRegion(Region):
    """An if/else statement."""

    kind = "cond"

    def __init__(
        self,
        test: ast.expr,
        then_region: Region,
        else_region: Optional[Region] = None,
        label: str = "",
    ) -> None:
        super().__init__(label)
        self.test = test
        self.then_region = then_region
        self.else_region = else_region

    def sub_regions(self) -> tuple[Region, ...]:
        if self.else_region is not None:
            return (self.then_region, self.else_region)
        return (self.then_region,)

    def statement_count(self) -> int:
        return 1 + super().statement_count()

    def to_source(self, indent: int = 0) -> str:
        prefix = " " * indent
        lines = [f"{prefix}if {ast.unparse(self.test)}:"]
        lines.append(self.then_region.to_source(indent + 4))
        if self.else_region is not None:
            lines.append(f"{prefix}else:")
            lines.append(self.else_region.to_source(indent + 4))
        return "\n".join(lines)


class LoopRegion(Region):
    """A loop.  When the iterable is a query result this is a *cursor loop*."""

    kind = "loop"

    def __init__(
        self,
        loop_variable: str,
        iterable: ast.expr,
        body: Region,
        label: str = "",
        query: Optional[QueryCallInfo] = None,
        loop_node: Optional[ast.stmt] = None,
    ) -> None:
        super().__init__(label)
        self.loop_variable = loop_variable
        self.iterable = iterable
        self.body = body
        self.query = query
        self.loop_node = loop_node

    def sub_regions(self) -> tuple[Region, ...]:
        return (self.body,)

    def statement_count(self) -> int:
        return 1 + super().statement_count()

    @property
    def is_cursor_loop(self) -> bool:
        """True when the loop iterates over a query/ORM result."""
        return self.query is not None

    def to_source(self, indent: int = 0) -> str:
        prefix = " " * indent
        header = (
            f"{prefix}for {self.loop_variable} in "
            f"{ast.unparse(self.iterable)}:"
        )
        return header + "\n" + self.body.to_source(indent + 4)


class FunctionRegion(Region):
    """The outermost region: a whole function."""

    kind = "function"

    def __init__(
        self,
        name: str,
        parameters: list[str],
        body: Region,
        label: str = "",
        returns: Optional[str] = None,
    ) -> None:
        super().__init__(label or name)
        self.name = name
        self.parameters = parameters
        self.body = body
        self.returns = returns

    def sub_regions(self) -> tuple[Region, ...]:
        return (self.body,)

    def to_source(self, indent: int = 0) -> str:
        prefix = " " * indent
        header = f"{prefix}def {self.name}({', '.join(self.parameters)}):"
        return header + "\n" + self.body.to_source(indent + 4)


def iter_cursor_loops(region: Region) -> Iterator[LoopRegion]:
    """Yield every cursor loop anywhere in ``region``."""
    for node in region.walk():
        if isinstance(node, LoopRegion) and node.is_cursor_loop:
            yield node


def count_regions(region: Region) -> dict[str, int]:
    """Count regions by kind (useful for reporting and tests)."""
    counts: dict[str, int] = {}
    for node in region.walk():
        counts[node.kind] = counts.get(node.kind, 0) + 1
    return counts
