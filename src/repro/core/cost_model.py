"""The COBRA cost model (Section VI, Figure 12 of the paper).

Cost parameters
---------------
``CNRT``      network round trip time between client and database
``CFQ/CLQ``   server time to first/last result row (estimated by the database)
``NQ``        estimated result cardinality of a query
``Srow(Q)``   byte width of one result row
``BW``        network bandwidth
``AFQ``       amortization factor: estimated number of invocations of a query
``CY``        cost of evaluating one F-IR / program operator
``CZ``        cost of one imperative statement (30 ns in the paper)

Node costs
----------
``query execution``   CQ = CNRT + CFQ + max(NQ * Srow / BW, CLQ - CFQ)
``prefetch``          Cprefetch = CQ / AFQ
``basic block``       sum of statement costs (CZ each) plus the cost of every
                      query executed by the block
``seq``               sum of children
``cond``              p * Ctrue + (1 - p) * Cfalse + Cp
``loop over Q``       CQ + NQ * Cbody  (fold cost: NQ * Cf + CDb(Q))
``other loop``        K * Cbody with a tunable default K
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.regions import (
    BasicBlockRegion,
    LoopRegion,
    QueryCallInfo,
)
from repro.db.database import Database, QueryEstimate
from repro.net.network import NetworkConditions


@dataclass(frozen=True)
class CostParameters:
    """Tunable parameters of the cost model (the paper's "cost catalog")."""

    #: Network round trip time in seconds (CNRT).
    network_round_trip: float = 0.0005
    #: Network bandwidth in bytes per second (BW).
    bandwidth_bytes_per_sec: float = 750e6
    #: Cost of one imperative statement in seconds (CZ; 30 ns in the paper).
    statement_cost: float = 30e-9
    #: Cost of one F-IR / program operator in seconds (CY).
    operator_cost: float = 100e-9
    #: Amortization factor: estimated number of invocations of a prefetched
    #: query (AFQ).  AF=1 means the prefetch is paid in full by a single use.
    amortization_factor: float = 1.0
    #: Probability a conditional region's predicate evaluates to true.
    branch_probability: float = 0.5
    #: Iteration-count guess for loops whose trip count cannot be estimated.
    default_loop_iterations: int = 1000

    @classmethod
    def for_network(
        cls, network: NetworkConditions, **overrides
    ) -> "CostParameters":
        """Parameters matching a network preset (slow remote / fast local)."""
        params = cls(
            network_round_trip=network.round_trip_seconds,
            bandwidth_bytes_per_sec=network.bandwidth_bytes_per_sec,
        )
        return replace(params, **overrides) if overrides else params

    def with_amortization(self, factor: float) -> "CostParameters":
        """A copy of the parameters with a different amortization factor."""
        return replace(self, amortization_factor=factor)


@dataclass
class CostBreakdown:
    """Optional per-component accounting used for reports and tests."""

    query_time: float = 0.0
    transfer_time: float = 0.0
    statement_time: float = 0.0

    @property
    def total(self) -> float:
        return self.query_time + self.transfer_time + self.statement_time


class CostModel:
    """Estimates costs of Region-DAG nodes using database statistics."""

    def __init__(self, database: Database, parameters: CostParameters) -> None:
        self.database = database
        self.parameters = parameters
        self._estimate_cache: dict[str, QueryEstimate] = {}

    # -- query-level costs -------------------------------------------------

    def estimate(self, sql: str) -> QueryEstimate:
        """Cached database estimate for a query."""
        cached = self._estimate_cache.get(sql)
        if cached is None:
            cached = self.database.estimate_sql(sql)
            self._estimate_cache[sql] = cached
        return cached

    def query_cost(self, sql: str) -> float:
        """CQ for one execution of ``sql``."""
        estimate = self.estimate(sql)
        return self.query_cost_from_estimate(estimate)

    def query_cost_from_estimate(self, estimate: QueryEstimate) -> float:
        """CQ = CNRT + CFQ + max(NQ * Srow / BW, CLQ - CFQ)."""
        transfer = estimate.byte_size / self.parameters.bandwidth_bytes_per_sec
        server_rest = max(0.0, estimate.last_row_time - estimate.first_row_time)
        return (
            self.parameters.network_round_trip
            + estimate.first_row_time
            + max(transfer, server_rest)
        )

    def point_lookup_cost(self, table: str, key_column: str) -> float:
        """CQ of a single-row lookup query on ``table`` (the N+1 query)."""
        sql = f"select * from {table} where {key_column} = ?"
        return self.query_cost(sql)

    def prefetch_cost(self, table: Optional[str], sql: Optional[str]) -> float:
        """Cprefetch = CQ / AFQ for prefetching a relation or query result."""
        if sql is None:
            if table is None:
                return self.parameters.operator_cost
            sql = f"select * from {table}"
        return self.query_cost(sql) / max(self.parameters.amortization_factor, 1e-9)

    def query_cardinality(self, sql: str) -> float:
        """NQ for ``sql``."""
        return self.estimate(sql).cardinality

    # -- region-operator costs ---------------------------------------------

    def data_access_cost(self, info: QueryCallInfo) -> float:
        """Cost of one data-access operation described by ``info``."""
        if info.kind == "sql" and info.sql:
            return self.query_cost(info.sql)
        if info.kind == "load_all" and info.table:
            return self.query_cost(f"select * from {info.table}")
        if info.kind == "lazy_load" and info.table and info.key_column:
            return self.point_lookup_cost(info.table, info.key_column)
        if info.kind == "orm_get" and info.table:
            return self.point_lookup_cost(info.table, _pk_guess(info))
        if info.kind == "prefetch":
            return self.prefetch_cost(info.table, info.sql)
        if info.kind == "update":
            # One round trip; the server-side work and payload are negligible
            # compared to the network latency the model cares about.
            return self.parameters.network_round_trip
        if info.kind == "lookup":
            return self.parameters.operator_cost
        return self.parameters.operator_cost

    def block_cost(self, block: BasicBlockRegion) -> float:
        """Cost of a basic block: statement cost plus its data accesses."""
        cost = self.parameters.statement_cost
        for info in block.queries:
            cost += self.data_access_cost(info)
        return cost

    def loop_iterations(self, loop: LoopRegion) -> float:
        """Estimated trip count of a loop region."""
        if loop.query is not None:
            if loop.query.kind == "sql" and loop.query.sql:
                if "?" in loop.query.sql:
                    # Parameterised selection: estimate with the parameter
                    # treated as an equality literal.
                    return max(1.0, self.query_cardinality(loop.query.sql))
                return self.query_cardinality(loop.query.sql)
            if loop.query.kind == "load_all" and loop.query.table:
                return self.query_cardinality(
                    f"select * from {loop.query.table}"
                )
            if loop.query.kind == "lookup":
                # Iterating over a locally cached group: the average group
                # size of the prefetched relation (rows / distinct keys).
                return self._group_size(loop.query.table, loop.query.key_column)
        return float(self.parameters.default_loop_iterations)

    def _group_size(
        self, table: Optional[str], key_column: Optional[str]
    ) -> float:
        if not table:
            return max(
                1.0, float(self.parameters.default_loop_iterations) ** 0.5
            )
        stats = self.database.statistics.table_stats(table)
        if stats.row_count <= 0:
            return max(
                1.0, float(self.parameters.default_loop_iterations) ** 0.5
            )
        distinct = stats.distinct_count(key_column or "")
        return max(1.0, stats.row_count / max(1, distinct))

    def loop_header_cost(self, loop: LoopRegion) -> float:
        """Cost of producing the iterated collection (charged once)."""
        if loop.query is None:
            return 0.0
        if loop.query.kind == "lookup":
            return self.parameters.operator_cost
        return self.data_access_cost(loop.query)

    def loop_cost(self, loop: LoopRegion, body_cost: float) -> float:
        """Cfold = CDb(Q) + NQ * Cf."""
        return self.loop_header_cost(loop) + self.loop_iterations(loop) * (
            body_cost + self.parameters.operator_cost
        )

    def conditional_cost(
        self, then_cost: float, else_cost: float, predicate_cost: float = 0.0
    ) -> float:
        """Ccond = p * Ctrue + (1 - p) * Cfalse + Cp."""
        probability = self.parameters.branch_probability
        if predicate_cost <= 0.0:
            predicate_cost = self.parameters.statement_cost
        return (
            probability * then_cost
            + (1.0 - probability) * else_cost
            + predicate_cost
        )

    def sequence_cost(self, child_costs: list[float]) -> float:
        """Cseq = sum of children."""
        return float(sum(child_costs))

    # -- program-level convenience -------------------------------------------

    def clear_cache(self) -> None:
        """Drop memoised query estimates (call after data/statistics change)."""
        self._estimate_cache.clear()


def _pk_guess(info: QueryCallInfo) -> str:
    """Best-effort key column for an ORM ``get`` when not recorded."""
    return info.key_column or "id"
