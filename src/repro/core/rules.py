"""Region-level transformation rules.

The Volcano/Cascades-style rule engine of COBRA works on the Region DAG: a
rule looks at one group (a region), produces zero or more alternative region
implementations, and the optimizer adds each alternative to the group.  For
database applications the interesting rules all concern cursor loops, and are
driven by the F-IR layer:

1. build the fold representation of the loop (:func:`repro.fir.builder.build_fold`),
2. apply the F-IR rules T1-T5 / N1 / N2 (:mod:`repro.fir.rules`), each of
   which yields replacement Python source for the loop region,
3. parse the replacement source back into a region tree
   (:func:`region_from_source`), so the alternative enters the DAG through
   the exact same region machinery as the original program.

The rule set is extensible: any object with an ``apply(region, program, context)``
method returning :class:`RegionAlternative` instances can be registered.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.region_analysis import (
    AnalysisContext,
    ProgramInfo,
    analyze_program,
)
from repro.core.regions import LoopRegion, Region
from repro.fir.builder import build_fold
from repro.fir.rules import DEFAULT_RULES, FIRRule, RuleContext


@dataclass
class RegionAlternative:
    """One alternative implementation of a region, produced by a rule."""

    strategy: str
    region: Region
    rule: str
    description: str = ""
    source: str = ""


@dataclass
class TransformationContext:
    """Context shared by all region rules during one optimization run."""

    program: ProgramInfo
    analysis: AnalysisContext
    fir_rules: Sequence[FIRRule]

    @property
    def runtime_parameter(self) -> str:
        return self.analysis.runtime_parameter or "rt"


def region_from_source(
    source: str, context: TransformationContext
) -> Region:
    """Parse replacement statements into a region tree.

    The statements are wrapped in a synthetic function whose parameter list
    matches the original program, so the analysis classifies data accesses
    exactly as it would in the original.
    """
    parameters = ", ".join(context.program.parameters) or "rt"
    wrapped = (
        f"def __rewritten__({parameters}):\n"
        + textwrap.indent(textwrap.dedent(source).strip("\n"), "    ")
        + "\n"
    )
    info = analyze_program(wrapped, registry=context.analysis.registry)
    return info.region.body


class RegionRule:
    """Base class of region-level transformation rules."""

    name = "region-rule"

    def apply(
        self, region: Region, context: TransformationContext
    ) -> list[RegionAlternative]:
        """Return alternatives for ``region`` (possibly empty)."""
        raise NotImplementedError


class CursorLoopRule(RegionRule):
    """Apply the F-IR rule set to every cursor loop region."""

    name = "cursor-loop transformations"

    def apply(
        self, region: Region, context: TransformationContext
    ) -> list[RegionAlternative]:
        if not isinstance(region, LoopRegion) or not region.is_cursor_loop:
            return []
        fold = build_fold(region, context.analysis)
        if fold is None:
            return []
        rule_context = RuleContext(runtime_parameter=context.runtime_parameter)
        alternatives: list[RegionAlternative] = []
        for fir_rule in context.fir_rules:
            for rewrite in fir_rule.apply(fold, rule_context):
                try:
                    replacement = region_from_source(rewrite.source, context)
                except Exception:
                    # A rule produced unparsable source; skip the alternative
                    # rather than failing the whole optimization.
                    continue
                alternatives.append(
                    RegionAlternative(
                        strategy=rewrite.strategy,
                        region=replacement,
                        rule=rewrite.rule,
                        description=rewrite.description,
                        source=rewrite.source,
                    )
                )
        return alternatives


#: Default region-level rule set.
DEFAULT_REGION_RULES: tuple[RegionRule, ...] = (CursorLoopRule(),)


def make_context(
    program: ProgramInfo,
    fir_rules: Optional[Sequence[FIRRule]] = None,
) -> TransformationContext:
    """Build the transformation context for one program."""
    return TransformationContext(
        program=program,
        analysis=program.context,
        fir_rules=tuple(fir_rules) if fir_rules is not None else DEFAULT_RULES,
    )
