"""The Region AND-OR DAG (Section IV of the paper).

The Region DAG is the memo structure of a Volcano/Cascades-style optimizer
specialised to program regions:

* an **OR node** (:class:`Group`) represents a region — all alternative ways
  of performing the computation of that region;
* an **AND node** (:class:`AndNode`) represents one operator combining
  sub-regions into the parent region (``seq``, ``cond``, ``loop``, ``block``,
  ``function``), i.e. one concrete alternative.

Duplicate detection works exactly as in Volcano/Cascades: an AND node is
identified by its operator kind, its payload key (for blocks, the normalised
statement source; for loops, the loop header source; for conditionals, the
predicate source) and the identity of its child groups.  Inserting an
expression that already exists returns the existing node, so cyclic
transformations terminate and common sub-regions (like ``P0.B2`` in the
paper's Figure 6c) are shared between alternatives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.regions import (
    BasicBlockRegion,
    ConditionalRegion,
    FunctionRegion,
    LoopRegion,
    Region,
    SequentialRegion,
)


class DagError(Exception):
    """Raised for inconsistent Region DAG operations."""


@dataclass
class AndNode:
    """An operator node: one alternative implementation of its owner group."""

    kind: str
    payload: Region
    children: tuple["Group", ...]
    strategy: str = "original"
    rule: str = ""
    description: str = ""
    key: tuple = field(default_factory=tuple)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child_ids = [c.group_id for c in self.children]
        return f"AndNode({self.kind}, strategy={self.strategy}, children={child_ids})"


@dataclass
class Group:
    """An OR node: all alternative implementations of one region."""

    group_id: int
    label: str
    alternatives: list[AndNode] = field(default_factory=list)

    def add(self, node: AndNode) -> bool:
        """Add an alternative if not already present; returns True if added."""
        for existing in self.alternatives:
            if existing.key == node.key:
                return False
        self.alternatives.append(node)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Group(id={self.group_id}, label={self.label!r}, "
            f"alternatives={len(self.alternatives)})"
        )


class RegionDag:
    """The memo: groups, AND nodes, and duplicate detection."""

    def __init__(self) -> None:
        self.groups: list[Group] = []
        #: structural key -> (AndNode, owning Group)
        self._node_index: dict[tuple, tuple[AndNode, Group]] = {}
        self.root: Optional[Group] = None
        #: (group, node) memberships created since the last drain; feeds the
        #: optimizer's dirty worklist so rules fire only on new alternatives.
        self._new_memberships: list[tuple[Group, AndNode]] = []

    # -- construction ------------------------------------------------------

    def build(self, region: Region) -> Group:
        """Insert the initial region tree; the returned group is the root."""
        self.root = self.insert_region(region)
        return self.root

    def insert_region(self, region: Region, into: Optional[Group] = None) -> Group:
        """Insert ``region`` (recursively) and return the group representing it.

        If ``into`` is given, the region's top-level AND node is added as an
        alternative of that group (this is how transformation results are
        attached); otherwise a group is found or created by duplicate
        detection.
        """
        children = tuple(
            self.insert_region(sub) for sub in self._dag_children(region)
        )
        key = self._node_key(region, children)
        existing = self._node_index.get(key)
        if existing is not None:
            node, owner = existing
            if into is not None and owner is not into:
                if into.add(node):
                    self._new_memberships.append((into, node))
            return into or owner
        node = AndNode(
            kind=region.kind,
            payload=region,
            children=children,
            key=key,
        )
        group = into or self._new_group(region.label or region.kind)
        group.add(node)
        self._node_index[key] = (node, group)
        self._new_memberships.append((group, node))
        return group

    def add_alternative(
        self,
        group: Group,
        region: Region,
        strategy: str,
        rule: str = "",
        description: str = "",
    ) -> Optional[AndNode]:
        """Add a transformation-produced region as an alternative of ``group``.

        Returns the AND node representing the alternative, or ``None`` when an
        identical alternative was already present (duplicate detection).
        """
        children = tuple(
            self.insert_region(sub) for sub in self._dag_children(region)
        )
        key = self._node_key(region, children)
        existing = self._node_index.get(key)
        if existing is not None:
            node, owner = existing
            if owner is not group:
                if group.add(node):
                    self._new_memberships.append((group, node))
                return node
            return None
        node = AndNode(
            kind=region.kind,
            payload=region,
            children=children,
            strategy=strategy,
            rule=rule,
            description=description,
            key=key,
        )
        added = group.add(node)
        if not added:
            return None
        self._node_index[key] = (node, group)
        self._new_memberships.append((group, node))
        return node

    def drain_new_memberships(self) -> list[tuple[Group, AndNode]]:
        """Return and clear the (group, node) pairs added since last drain.

        A pair appears when a brand-new AND node is created *or* when an
        existing node is shared into an additional group — in both cases the
        optimizer's worklist must apply the transformation rules to the node
        in the context of that group.
        """
        drained = self._new_memberships
        self._new_memberships = []
        return drained

    # -- inspection --------------------------------------------------------

    def iter_groups(self) -> Iterator[Group]:
        return iter(self.groups)

    def iter_nodes(self) -> Iterator[AndNode]:
        for group in self.groups:
            yield from group.alternatives

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def node_count(self) -> int:
        return sum(len(group.alternatives) for group in self.groups)

    def alternatives_at_root(self) -> list[AndNode]:
        """The alternatives of the root group (the whole program)."""
        if self.root is None:
            raise DagError("the DAG has not been built yet")
        return list(self.root.alternatives)

    # -- internals ----------------------------------------------------------

    def _new_group(self, label: str) -> Group:
        group = Group(group_id=len(self.groups), label=label)
        self.groups.append(group)
        return group

    @staticmethod
    def _dag_children(region: Region) -> tuple[Region, ...]:
        """The sub-regions that become child groups of the region's AND node."""
        if isinstance(region, BasicBlockRegion):
            return ()
        return region.sub_regions()

    @staticmethod
    def _node_key(region: Region, children: tuple[Group, ...]) -> tuple:
        """Structural identity of an AND node for duplicate detection."""
        child_ids = tuple(group.group_id for group in children)
        if isinstance(region, BasicBlockRegion):
            return ("block", _normalise(region.source), child_ids)
        if isinstance(region, LoopRegion):
            header = f"for {region.loop_variable} in {ast.unparse(region.iterable)}"
            return ("loop", _normalise(header), child_ids)
        if isinstance(region, ConditionalRegion):
            return ("cond", _normalise(ast.unparse(region.test)), child_ids)
        if isinstance(region, SequentialRegion):
            return ("seq", len(region.regions), child_ids)
        if isinstance(region, FunctionRegion):
            return ("function", region.name, child_ids)
        return (region.kind, region.label, child_ids)


def _normalise(source: str) -> str:
    """Whitespace-insensitive normalisation of statement source."""
    return " ".join(source.split())
