"""The COBRA optimizer: cost-based rewriting of database application programs.

Pipeline (Sections IV-VI of the paper):

1. **Region analysis** — parse the program source and build its region tree.
2. **Region DAG** — insert the region tree into an AND-OR DAG (the memo).
3. **Transformation** — for every group, apply the region rules (which in turn
   apply the F-IR rules T1-T5 / N1 / N2 to cursor loops) and add every
   generated alternative to the DAG, reusing duplicate nodes.  New
   alternatives are themselves transformed until a fixpoint, so compositions
   of rules are explored; duplicate detection guarantees termination.
4. **Costing and extraction** — compute the minimum cost of the root group
   with the Section-VI cost model and extract the corresponding program.

The result carries the rewritten Python source (runnable against
:class:`repro.appsim.runtime.AppRuntime`), the estimated cost of the chosen
program and of the original program, and the strategy chosen for every region.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.cost_model import CostModel, CostParameters
from repro.core.dag import AndNode, Group, RegionDag
from repro.core.plans import (
    DagCostCalculator,
    Plan,
    PlanExtractor,
    cost_based_chooser,
    heuristic_chooser,
    region_cost,
)
from repro.core.region_analysis import ProgramInfo, analyze_program
from repro.core.regions import Region
from repro.core.rules import (
    DEFAULT_REGION_RULES,
    RegionRule,
    TransformationContext,
    make_context,
)
from repro.db.database import Database
from repro.fir.rules import FIRRule
from repro.orm.mapping import MappingRegistry


@dataclass
class OptimizationResult:
    """Outcome of one COBRA optimization run."""

    program: ProgramInfo
    dag: RegionDag
    best_plan: Plan
    original_cost: float
    optimization_seconds: float
    alternatives_added: int
    strategies: dict[str, str] = field(default_factory=dict)

    @property
    def best_cost(self) -> float:
        return self.best_plan.cost

    @property
    def rewritten_source(self) -> str:
        return self.best_plan.source

    @property
    def chosen_strategies(self) -> set[str]:
        return self.best_plan.chosen_strategies

    @property
    def estimated_speedup(self) -> float:
        """Original cost divided by best cost (>= 1 when rewriting helps)."""
        if self.best_plan.cost <= 0:
            return 1.0
        return self.original_cost / self.best_plan.cost

    def primary_choice(self) -> str:
        """The strategy chosen for the most significant rewritten region.

        Returns ``"original"`` when COBRA kept the program unchanged.
        """
        chosen = self.chosen_strategies
        for strategy in (
            "sql-join",
            "prefetch",
            "prefetch-join",
            "sql-aggregate",
            "sql-filter",
            "sql-translation",
            "sql-aggregate-extra",
        ):
            if strategy in chosen:
                return strategy
        return "original"


class CobraOptimizer:
    """Cost-based optimizer for database application programs."""

    def __init__(
        self,
        database: Database,
        parameters: CostParameters,
        registry: Optional[MappingRegistry] = None,
        region_rules: Optional[Sequence[RegionRule]] = None,
        fir_rules: Optional[Sequence[FIRRule]] = None,
        max_passes: int = 4,
    ) -> None:
        self.database = database
        self.parameters = parameters
        self.registry = registry
        self.region_rules = (
            tuple(region_rules) if region_rules is not None else DEFAULT_REGION_RULES
        )
        self.fir_rules = fir_rules
        self.max_passes = max_passes

    # -- public API ----------------------------------------------------------

    def optimize(
        self, source: str, function_name: Optional[str] = None
    ) -> OptimizationResult:
        """Optimize the program in ``source`` and return the best plan."""
        started = time.perf_counter()
        program = analyze_program(
            source, registry=self.registry, function_name=function_name
        )
        dag = RegionDag()
        dag.build(program.region)
        context = make_context(program, fir_rules=self.fir_rules)
        added = self._expand(dag, context)

        cost_model = CostModel(self.database, self.parameters)
        calculator = DagCostCalculator(dag, cost_model)
        # The original program is the region tree as analysed; price it
        # directly instead of re-extracting it from the DAG.
        original_cost = region_cost(program.region, cost_model)
        best_cost = calculator.group_cost(dag.root)
        extractor = PlanExtractor(dag, cost_based_chooser(calculator))
        region = extractor.extract()
        plan = Plan(
            region=region,
            cost=best_cost,
            strategies=dict(extractor.strategies),
            source=region.to_source(),
        )
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            program=program,
            dag=dag,
            best_plan=plan,
            original_cost=original_cost,
            optimization_seconds=elapsed,
            alternatives_added=added,
            strategies=dict(extractor.strategies),
        )

    def extract_heuristic_plan(self, result: OptimizationResult) -> Plan:
        """Extract the plan the heuristic optimizer (max SQL pushing) picks.

        Uses the same expanded DAG, so the comparison in Experiment 4 is
        between selection policies, not between different search spaces.
        """
        cost_model = CostModel(self.database, self.parameters)
        calculator = DagCostCalculator(result.dag, cost_model)
        extractor = PlanExtractor(result.dag, heuristic_chooser())
        region = extractor.extract()
        # Price the heuristic's chosen program with the same cost model.
        cost = self._plan_cost(region, calculator)
        return Plan(
            region=region,
            cost=cost,
            strategies=dict(extractor.strategies),
            source=region.to_source(),
        )

    def estimate_cost(self, source: str, function_name: Optional[str] = None) -> float:
        """Cost of a program as written (no transformation)."""
        program = analyze_program(
            source, registry=self.registry, function_name=function_name
        )
        cost_model = CostModel(self.database, self.parameters)
        return region_cost(program.region, cost_model)

    # -- expansion -------------------------------------------------------------

    def _expand(self, dag: RegionDag, context: TransformationContext) -> int:
        """Apply rules to a fixpoint with a dirty worklist.

        Instead of re-scanning every DAG node on every pass, the worklist
        holds exactly the (group, node) memberships that have not had the
        rules applied yet: the seed nodes from building the DAG, plus every
        alternative (and shared sub-region) a rule application adds.  Rules
        are pure functions of the node payload, so re-firing them on an
        unchanged node can only reproduce duplicates the memo rejects —
        skipping the re-scan leaves the reachable fixpoint identical.

        Each membership carries a generation: seed nodes are generation 0 and
        alternatives produced by a generation-``g`` node are generation
        ``g + 1``.  Memberships at generation ``max_passes`` or deeper are not
        expanded, bounding rule composition depth exactly as the old
        ``max_passes`` whole-DAG passes did.
        """
        total_added = 0
        worklist = deque(
            (group, node, 0) for group, node in dag.drain_new_memberships()
        )
        while worklist:
            group, node, generation = worklist.popleft()
            if generation >= self.max_passes:
                continue
            total_added += self._apply_rules_to_node(dag, group, node, context)
            for new_group, new_node in dag.drain_new_memberships():
                worklist.append((new_group, new_node, generation + 1))
        return total_added

    def _apply_rules_to_node(
        self,
        dag: RegionDag,
        group: Group,
        node: AndNode,
        context: TransformationContext,
    ) -> int:
        added = 0
        for rule in self.region_rules:
            try:
                alternatives = rule.apply(node.payload, context)
            except Exception:
                # A failing rule must not abort optimization of the program.
                continue
            for alternative in alternatives:
                inserted = dag.add_alternative(
                    group,
                    alternative.region,
                    strategy=alternative.strategy,
                    rule=alternative.rule,
                    description=alternative.description,
                )
                if inserted is not None:
                    added += 1
        return added

    # -- costing helpers --------------------------------------------------------

    def _plan_cost(self, region: Region, calculator: DagCostCalculator) -> float:
        """Cost a concrete region tree with the same model (no alternatives)."""
        return region_cost(region, calculator.cost_model)
