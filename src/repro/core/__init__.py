"""COBRA core: regions, the Region AND-OR DAG, cost model, and the optimizer.

Public entry points:

* :func:`repro.core.region_analysis.analyze_program` — source → region tree,
* :class:`repro.core.dag.RegionDag` — the AND-OR DAG over regions,
* :class:`repro.core.cost_model.CostModel` / ``CostParameters`` — Section VI,
* :class:`repro.core.optimizer.CobraOptimizer` — the cost-based rewriter,
* :class:`repro.core.heuristic.HeuristicOptimizer` — the always-push-to-SQL
  baseline used in Experiment 4.
"""

from repro.core.cost_model import CostModel, CostParameters
from repro.core.heuristic import HeuristicOptimizer
from repro.core.optimizer import CobraOptimizer, OptimizationResult

__all__ = [
    "CobraOptimizer",
    "CostModel",
    "CostParameters",
    "HeuristicOptimizer",
    "OptimizationResult",
]
