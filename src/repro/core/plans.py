"""Plan costing and extraction over the Region DAG.

Two pieces live here:

* :class:`DagCostCalculator` — memoised min-cost computation over the AND-OR
  DAG (the OR-node cost is the minimum over its alternatives, the AND-node
  cost combines its operator cost with the costs of its child groups, exactly
  the table in Section III-A of the paper, with the loop/cond refinements of
  Section VI), and
* :class:`PlanExtractor` — rebuilding a concrete program (a region tree and
  its Python source) from a choice of one alternative per group.

Both guard against alternatives that reference their own ancestor group
(which can happen when a transformation keeps the original region as a part
of its rewrite, e.g. the "extra aggregate query" alternative of Section V-B):
while a group is being expanded, re-entering it falls back to its original
alternative, so costing and extraction always terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.cost_model import CostModel
from repro.core.dag import AndNode, Group, RegionDag
from repro.core.regions import (
    BasicBlockRegion,
    ConditionalRegion,
    FunctionRegion,
    LoopRegion,
    Region,
    SequentialRegion,
)

#: Cost assigned to alternatives that cannot be priced (self-referential).
INFINITE_COST = float("inf")


@dataclass
class Plan:
    """A concrete program chosen from the Region DAG."""

    region: Region
    cost: float
    strategies: dict[str, str] = field(default_factory=dict)
    source: str = ""

    @property
    def chosen_strategies(self) -> set[str]:
        """All non-original strategies used anywhere in the plan."""
        return {s for s in self.strategies.values() if s != "original"}


class DagCostCalculator:
    """Memoised cost computation over a Region DAG.

    Memoisation happens at two levels: per group (the minimum over its
    alternatives) and per basic block (leaf AND nodes, whose cost is
    independent of the costing context and therefore always safe to reuse —
    it prices the block's query estimates, which dominate costing time).
    ``memoize=False`` disables both caches; the memoised and unmemoised
    calculators must return identical costs (covered by the cost-memoization
    tests), the flag only exists for that comparison and for debugging.
    """

    def __init__(
        self, dag: RegionDag, cost_model: CostModel, *, memoize: bool = True
    ) -> None:
        self.dag = dag
        self.cost_model = cost_model
        self._memoize = memoize
        self._group_costs: dict[int, float] = {}
        #: id(AndNode) -> cost, for context-independent (block) nodes only.
        self._block_costs: dict[int, float] = {}

    # -- group / node costs --------------------------------------------------

    def group_cost(self, group: Group, active: Optional[set] = None) -> float:
        """Minimum cost over the group's alternatives."""
        cached = self._group_costs.get(group.group_id)
        if cached is not None:
            return cached
        active = active or set()
        if group.group_id in active:
            original = _original_alternative(group)
            if original is None:
                return INFINITE_COST
            return self.node_cost(original, active)
        active = active | {group.group_id}
        costs = [self.node_cost(node, active) for node in group.alternatives]
        best = min(costs) if costs else INFINITE_COST
        if self._memoize:
            self._group_costs[group.group_id] = best
        return best

    def node_cost(self, node: AndNode, active: Optional[set] = None) -> float:
        """Cost of one AND node (operator + children)."""
        active = active or set()
        model = self.cost_model
        if node.kind == "block":
            cached = self._block_costs.get(id(node))
            if cached is not None:
                return cached
            cost = model.block_cost(node.payload)  # type: ignore[arg-type]
            if self._memoize:
                self._block_costs[id(node)] = cost
            return cost
        child_costs = [self.group_cost(child, active) for child in node.children]
        if any(cost == INFINITE_COST for cost in child_costs):
            return INFINITE_COST
        if node.kind == "seq":
            return model.sequence_cost(child_costs)
        if node.kind == "loop":
            body_cost = child_costs[0] if child_costs else 0.0
            return model.loop_cost(node.payload, body_cost)  # type: ignore[arg-type]
        if node.kind == "cond":
            then_cost = child_costs[0] if child_costs else 0.0
            else_cost = child_costs[1] if len(child_costs) > 1 else 0.0
            return model.conditional_cost(then_cost, else_cost)
        if node.kind == "function":
            return child_costs[0] if child_costs else 0.0
        return model.sequence_cost(child_costs)

    def best_alternative(
        self, group: Group, active: Optional[set] = None
    ) -> AndNode:
        """The minimum-cost alternative of ``group``."""
        active = (active or set()) | {group.group_id}
        best_node: Optional[AndNode] = None
        best_cost = INFINITE_COST
        for node in group.alternatives:
            cost = self.node_cost(node, active)
            if cost < best_cost:
                best_cost = cost
                best_node = node
        if best_node is None:
            best_node = group.alternatives[0]
        return best_node

    def clear(self) -> None:
        """Forget memoised costs (after the DAG or cost model changes)."""
        self._group_costs.clear()
        self._block_costs.clear()


#: A chooser maps (group, candidate alternatives) to the chosen AND node.
Chooser = Callable[[Group, list[AndNode]], AndNode]


class PlanExtractor:
    """Rebuilds a concrete region tree from per-group choices."""

    def __init__(self, dag: RegionDag, chooser: Chooser) -> None:
        self.dag = dag
        self.chooser = chooser
        self.strategies: dict[str, str] = {}

    def extract(self, group: Optional[Group] = None) -> Region:
        """Extract the chosen program starting from ``group`` (default: root)."""
        group = group or self.dag.root
        if group is None:
            raise ValueError("the Region DAG has no root group")
        self.strategies = {}
        return self._extract_group(group, active=set())

    # -- internals ------------------------------------------------------------

    def _extract_group(self, group: Group, active: set) -> Region:
        if group.group_id in active:
            node = _original_alternative(group) or group.alternatives[0]
        else:
            node = self.chooser(group, list(group.alternatives))
        key = f"{group.label or 'region'}#{group.group_id}"
        # A group can be re-entered when an alternative embeds the original
        # region (the "extra aggregate query" case); the first visit is the
        # actual choice, so do not let the fallback overwrite it.
        self.strategies.setdefault(key, node.strategy)
        return self._extract_node(node, active | {group.group_id})

    def _extract_node(self, node: AndNode, active: set) -> Region:
        payload = node.payload
        if node.kind == "block":
            return payload
        children = [self._extract_group(child, active) for child in node.children]
        if node.kind == "seq":
            return SequentialRegion(children, label=payload.label)
        if node.kind == "loop":
            loop: LoopRegion = payload  # type: ignore[assignment]
            return LoopRegion(
                loop_variable=loop.loop_variable,
                iterable=loop.iterable,
                body=children[0],
                label=loop.label,
                query=loop.query,
                loop_node=loop.loop_node,
            )
        if node.kind == "cond":
            cond: ConditionalRegion = payload  # type: ignore[assignment]
            else_region = children[1] if len(children) > 1 else None
            return ConditionalRegion(
                cond.test, children[0], else_region, label=cond.label
            )
        if node.kind == "function":
            function: FunctionRegion = payload  # type: ignore[assignment]
            return FunctionRegion(
                function.name,
                function.parameters,
                children[0],
                label=function.label,
            )
        if len(children) == 1:
            return children[0]
        return SequentialRegion(children, label=payload.label)


def _original_alternative(group: Group) -> Optional[AndNode]:
    for node in group.alternatives:
        if node.strategy == "original":
            return node
    return None


def region_cost(region: Region, cost_model: CostModel) -> float:
    """Cost a concrete region tree directly, without building a Region DAG.

    Applies exactly the per-operator formulas of
    :meth:`DagCostCalculator.node_cost`; used to price already-extracted
    plans (and the original program), where the DAG's alternative bookkeeping
    and duplicate detection would be pure overhead.
    """
    if isinstance(region, BasicBlockRegion):
        return cost_model.block_cost(region)
    if isinstance(region, SequentialRegion):
        return cost_model.sequence_cost(
            [region_cost(sub, cost_model) for sub in region.regions]
        )
    if isinstance(region, LoopRegion):
        return cost_model.loop_cost(region, region_cost(region.body, cost_model))
    if isinstance(region, ConditionalRegion):
        then_cost = region_cost(region.then_region, cost_model)
        else_cost = (
            region_cost(region.else_region, cost_model)
            if region.else_region is not None
            else 0.0
        )
        return cost_model.conditional_cost(then_cost, else_cost)
    if isinstance(region, FunctionRegion):
        return region_cost(region.body, cost_model)
    return cost_model.sequence_cost(
        [region_cost(sub, cost_model) for sub in region.sub_regions()]
    )


def cost_based_chooser(calculator: DagCostCalculator) -> Chooser:
    """The COBRA policy: pick the minimum-cost alternative of every group."""

    def choose(group: Group, alternatives: list[AndNode]) -> AndNode:
        return calculator.best_alternative(group)

    return choose


#: Preference order of the heuristic optimizer from the paper's prior work:
#: push as much computation as possible into SQL.  The heuristic never fetches
#: *more* data than needed, so whole-relation prefetching ranks below keeping
#: the original (already maximally filtered) query — this matches the paper's
#: description of patterns E/F, where the heuristic "deemed the filtered
#: queries optimal" while COBRA chose to prefetch.
HEURISTIC_RANK = {
    "sql-join": 0,
    "sql-translation": 1,
    "sql-filter": 1,
    "sql-aggregate": 2,
    "sql-aggregate-extra": 3,
    "original": 9,
    "prefetch": 20,
    "prefetch-join": 20,
}


def heuristic_chooser() -> Chooser:
    """The heuristic policy: maximal SQL pushing regardless of cost."""

    def choose(group: Group, alternatives: list[AndNode]) -> AndNode:
        return min(
            alternatives,
            key=lambda node: HEURISTIC_RANK.get(node.strategy, 5),
        )

    return choose
