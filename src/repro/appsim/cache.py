"""Client-side query-result cache (the EhCache/Memcache stand-in).

Rule N1 in the paper rewrites iterative lookup queries into a *prefetch*
followed by local cache lookups.  The pseudo-functions it uses are
``cacheByColumn(collection, column)`` and ``lookupCache(key)``; this module
provides them as :class:`ClientCache.cache_by_column` and
:class:`ClientCache.lookup`.  The cache is keyed by (region name, key value),
where the region defaults to the column the collection was cached on.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional


class CacheError(Exception):
    """Raised on lookups against a region that was never populated."""


class ClientCache:
    """A simple in-process cache of query results keyed by a column value."""

    def __init__(self) -> None:
        self._regions: dict[str, dict[Any, dict]] = {}
        self.lookups = 0
        self.hits = 0

    # -- population ------------------------------------------------------

    def cache_by_column(
        self,
        rows: Iterable[Mapping],
        column: str,
        region: Optional[str] = None,
    ) -> int:
        """Cache ``rows`` keyed by ``column``; returns the number cached.

        ``rows`` may be plain dicts or ORM entity objects exposing ``get``.
        Rows with a ``None`` key are skipped.  When several rows share a key
        the last one wins (the paper's usage caches by a unique column).
        """
        region = region or column
        store = self._regions.setdefault(region, {})
        count = 0
        for row in rows:
            key = _value_of(row, column)
            if key is None:
                continue
            store[key] = row
            count += 1
        return count

    def cache_groups_by_column(
        self,
        rows: Iterable[Mapping],
        column: str,
        region: Optional[str] = None,
    ) -> int:
        """Cache rows grouped by ``column`` (each key maps to a list of rows).

        Useful when the lookup key is not unique (e.g. all order lines of an
        order); ``lookup_group`` retrieves the list.
        """
        region = region or f"{column}#group"
        store = self._regions.setdefault(region, {})
        count = 0
        for row in rows:
            key = _value_of(row, column)
            if key is None:
                continue
            store.setdefault(key, []).append(row)
            count += 1
        return count

    # -- lookups ---------------------------------------------------------

    def lookup(self, key: Any, region: str) -> Optional[Any]:
        """Fetch the row cached under ``key`` in ``region`` (or ``None``)."""
        self.lookups += 1
        store = self._regions.get(region)
        if store is None:
            raise CacheError(
                f"cache region {region!r} was never populated; populated "
                f"regions are {sorted(self._regions)}"
            )
        row = store.get(key)
        if row is not None:
            self.hits += 1
        return row

    def lookup_group(self, key: Any, region: str) -> list:
        """Fetch the list of rows cached under ``key`` in a grouped region."""
        self.lookups += 1
        store = self._regions.get(region)
        if store is None:
            raise CacheError(
                f"cache region {region!r} was never populated; populated "
                f"regions are {sorted(self._regions)}"
            )
        rows = store.get(key, [])
        if rows:
            self.hits += 1
        return rows

    def has_region(self, region: str) -> bool:
        """Return True if ``region`` has been populated."""
        return region in self._regions

    def region_size(self, region: str) -> int:
        """Number of keys cached in ``region`` (0 if absent)."""
        return len(self._regions.get(region, {}))

    def clear(self) -> None:
        """Drop all cached data and reset counters."""
        self._regions.clear()
        self.lookups = 0
        self.hits = 0


def _value_of(row: Any, column: str) -> Any:
    """Read ``column`` from a dict-like row or an ORM entity object."""
    if isinstance(row, Mapping):
        return row.get(column)
    getter = getattr(row, "get", None)
    if callable(getter):
        return getter(column)
    return getattr(row, column, None)
