"""Dynamic (ski-rental style) prefetching.

Section VI of the paper notes that the one-time latency of a prefetch "can be
mitigated by prefetching asynchronously, and dynamically deciding to prefetch
only after a certain number of accesses ...  This is similar to the classical
ski-rental problem", and lists dynamic prefetching as future work.  This
module implements that extension so it can be evaluated alongside the static
choice COBRA makes.

:class:`DynamicPrefetcher` mediates keyed lookups on a relation.  While the
accumulated cost of the point-lookup queries issued so far is below the cost
of prefetching the whole relation, lookups go to the database one key at a
time (renting skis); once the accumulated cost reaches the prefetch cost, the
whole relation is fetched and cached, and every later lookup is served
locally (buying skis).  The classical argument bounds the total cost by twice
the optimal offline choice, whichever that would have been — the property
test in ``tests/test_dynamic_prefetch.py`` checks exactly that bound on the
virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.appsim.runtime import AppRuntime


@dataclass
class DynamicPrefetchStats:
    """Counters describing one prefetcher's behaviour."""

    point_lookups: int = 0
    cache_hits: int = 0
    prefetched: bool = False
    prefetch_trigger_access: Optional[int] = None


class DynamicPrefetcher:
    """Ski-rental mediation of keyed lookups on one relation."""

    def __init__(
        self,
        runtime: AppRuntime,
        table: str,
        key_column: str,
        cost_ratio_threshold: float = 1.0,
    ) -> None:
        """Create a prefetcher for ``table`` keyed by ``key_column``.

        ``cost_ratio_threshold`` is the fraction of the prefetch cost that
        must be accumulated in point lookups before the relation is
        prefetched; 1.0 is the classical break-even rule.
        """
        if cost_ratio_threshold <= 0:
            raise ValueError("cost_ratio_threshold must be positive")
        self.runtime = runtime
        self.table = table
        self.key_column = key_column
        self.cost_ratio_threshold = cost_ratio_threshold
        self.region = f"dynamic:{table}.{key_column}"
        self.stats = DynamicPrefetchStats()
        self._accumulated_lookup_cost = 0.0

    # -- cost accounting ---------------------------------------------------

    def estimated_prefetch_cost(self) -> float:
        """Virtual-time cost of fetching the whole relation once."""
        estimate = self.runtime.database.estimate_sql(
            f"select * from {self.table}"
        )
        transfer = self.runtime.network.transfer_time(estimate.byte_size)
        server_rest = max(0.0, estimate.last_row_time - estimate.first_row_time)
        return (
            self.runtime.network.round_trip_seconds
            + estimate.first_row_time
            + max(transfer, server_rest)
        )

    def estimated_lookup_cost(self) -> float:
        """Virtual-time cost of one point-lookup query."""
        estimate = self.runtime.database.estimate_sql(
            f"select * from {self.table} where {self.key_column} = ?"
        )
        transfer = self.runtime.network.transfer_time(estimate.byte_size)
        server_rest = max(0.0, estimate.last_row_time - estimate.first_row_time)
        return (
            self.runtime.network.round_trip_seconds
            + estimate.first_row_time
            + max(transfer, server_rest)
        )

    @property
    def has_prefetched(self) -> bool:
        return self.stats.prefetched

    # -- lookups -------------------------------------------------------------

    def lookup(self, key: Any) -> Optional[dict]:
        """Fetch the row with ``key``; may trigger the one-time prefetch."""
        if self.stats.prefetched:
            self.stats.cache_hits += 1
            return self.runtime.lookup(key, self.region)
        if self._should_prefetch():
            self._do_prefetch()
            self.stats.cache_hits += 1
            return self.runtime.lookup(key, self.region)
        self.stats.point_lookups += 1
        self._accumulated_lookup_cost += self.estimated_lookup_cost()
        rows = self.runtime.execute_query(
            f"select * from {self.table} where {self.key_column} = ?", (key,)
        )
        return rows[0] if rows else None

    def lookup_group(self, key: Any) -> list[dict]:
        """Fetch all rows with ``key`` (non-unique key columns)."""
        if self.stats.prefetched:
            self.stats.cache_hits += 1
            return self.runtime.lookup_group(key, self.region)
        if self._should_prefetch():
            self._do_prefetch(grouped=True)
            self.stats.cache_hits += 1
            return self.runtime.lookup_group(key, self.region)
        self.stats.point_lookups += 1
        self._accumulated_lookup_cost += self.estimated_lookup_cost()
        return self.runtime.execute_query(
            f"select * from {self.table} where {self.key_column} = ?", (key,)
        )

    # -- internals -------------------------------------------------------------

    def _should_prefetch(self) -> bool:
        threshold = self.estimated_prefetch_cost() * self.cost_ratio_threshold
        return self._accumulated_lookup_cost >= threshold

    def _do_prefetch(self, grouped: bool = False) -> None:
        if grouped:
            self.runtime.prefetch_group(self.table, self.key_column, self.region)
        else:
            self.runtime.prefetch(self.table, self.key_column, self.region)
        self.stats.prefetched = True
        self.stats.prefetch_trigger_access = self.stats.point_lookups


def dynamic_lookup_program(
    runtime: AppRuntime,
    table: str,
    key_column: str,
    keys,
    cost_ratio_threshold: float = 1.0,
) -> tuple[list, DynamicPrefetchStats]:
    """Run a sequence of keyed lookups through a dynamic prefetcher.

    Returns the looked-up rows and the prefetcher statistics; used by the
    ablation benchmark to compare never-prefetch, always-prefetch, and
    dynamic policies on the same access sequence.
    """
    prefetcher = DynamicPrefetcher(
        runtime, table, key_column, cost_ratio_threshold
    )
    rows = [prefetcher.lookup(key) for key in keys]
    return rows, prefetcher.stats
