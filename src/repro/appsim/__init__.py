"""Application-side runtime simulation.

This package binds the database, network, ORM, and client cache into a single
:class:`repro.appsim.runtime.AppRuntime` object that application programs
(the P0/P1/P2 variants, the Wilos patterns, and COBRA-generated code) run
against.  It also charges the imperative-statement cost ``CZ`` from the cost
model, so virtual execution times include the loop-body work the paper
profiles at 30 ns per statement.
"""

from repro.appsim.cache import ClientCache
from repro.appsim.runtime import AppRuntime, RunMeasurement

__all__ = ["AppRuntime", "ClientCache", "RunMeasurement"]
