"""The application runtime: what rewritten and original programs run against.

An :class:`AppRuntime` bundles

* a :class:`repro.db.database.Database` (the server),
* a :class:`repro.net.connection.SimulatedConnection` (the network link and
  virtual clock),
* an ORM :class:`repro.orm.session.Session` (Hibernate stand-in),
* a :class:`repro.appsim.cache.ClientCache` (prefetch target), and
* the imperative-statement cost ``CZ`` from the cost model.

Application programs are plain Python callables taking the runtime as their
only argument, e.g.::

    def process_orders(rt):
        result = []
        for o in rt.orm.load_all("Order"):
            cust = o.customer
            rt.work(3)
            result.append(my_func(o.o_id, cust.c_birth_year))
        return result

``AppRuntime.measure`` runs such a callable from a clean clock and returns a
:class:`RunMeasurement` with the virtual execution time and the transfer and
query counters — these are the numbers the Figure 13/15 reproductions report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.appsim.cache import ClientCache
from repro.db.database import Database, QueryResult
from repro.net.clock import VirtualClock
from repro.net.connection import SimulatedConnection
from repro.net.network import NetworkConditions
from repro.orm.mapping import MappingRegistry
from repro.orm.session import Session

#: The paper's measured per-statement cost: 30 nanoseconds.
DEFAULT_STATEMENT_COST = 30e-9


@dataclass(frozen=True)
class RunMeasurement:
    """Outcome of one measured program run."""

    elapsed_seconds: float
    queries: int
    rows_transferred: int
    bytes_transferred: int
    statements_executed: int
    result: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunMeasurement(elapsed={self.elapsed_seconds:.3f}s, "
            f"queries={self.queries}, rows={self.rows_transferred})"
        )


class AppRuntime:
    """Execution environment for application programs under simulation."""

    def __init__(
        self,
        database: Database,
        network: NetworkConditions,
        registry: Optional[MappingRegistry] = None,
        statement_cost: float = DEFAULT_STATEMENT_COST,
    ) -> None:
        self.database = database
        self.network = network
        self.clock = VirtualClock()
        self.connection = SimulatedConnection(database, network, self.clock)
        self.registry = registry or MappingRegistry()
        self.orm = Session(self.registry, self.connection)
        self.cache = ClientCache()
        self.statement_cost = statement_cost
        self.statements_executed = 0

    # -- program-facing API ----------------------------------------------

    def execute_query(self, sql: str, params: Sequence[Any] = ()) -> list[dict]:
        """Execute a SQL SELECT over the network; returns row dicts."""
        result = self.connection.execute_query(sql, tuple(params))
        return result.rows

    def execute_query_result(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Execute a SELECT and return the full :class:`QueryResult`."""
        return self.connection.execute_query(sql, tuple(params))

    def execute_update(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Execute an UPDATE statement over the network (pattern-A workloads)."""
        return self.connection.execute_update(sql, tuple(params))

    def work(self, statements: int = 1) -> None:
        """Charge the cost of ``statements`` imperative statements (CZ each)."""
        if statements < 0:
            raise ValueError("statement count must be non-negative")
        self.statements_executed += statements
        self.clock.advance(statements * self.statement_cost)

    def prefetch(
        self, table: str, key_column: str, region: Optional[str] = None
    ) -> int:
        """Fetch an entire relation and cache it locally by ``key_column``.

        This is the runtime counterpart of transformation N1's ``prefetch``
        operator; returns the number of rows cached.  Prefetching is
        idempotent: if the cache region is already populated (for example
        because the prefetch statement ended up inside an enclosing loop) the
        query is not re-issued — this is the caching behaviour the cost
        model's amortization factor (AF) accounts for.
        """
        region = region or key_column
        if self.cache.has_region(region):
            self.work(1)
            return 0
        rows = self.execute_query(f"select * from {table}")
        return self.cache.cache_by_column(rows, key_column, region)

    def prefetch_query(
        self, sql: str, key_column: str, region: Optional[str] = None
    ) -> int:
        """Prefetch the result of an arbitrary query and cache it by column."""
        region = region or key_column
        if self.cache.has_region(region):
            self.work(1)
            return 0
        rows = self.execute_query(sql)
        return self.cache.cache_by_column(rows, key_column, region)

    def prefetch_group(
        self, table: str, key_column: str, region: Optional[str] = None
    ) -> int:
        """Prefetch a relation and cache its rows *grouped* by ``key_column``.

        Used when the lookup key is not unique (rule N1 applied to
        parameterised selections): ``lookup_group`` then returns all rows with
        the given key.  Idempotent, like :meth:`prefetch`.
        """
        region = region or f"{table}.{key_column}"
        if self.cache.has_region(region):
            self.work(1)
            return 0
        rows = self.execute_query(f"select * from {table}")
        return self.cache.cache_groups_by_column(rows, key_column, region)

    def lookup(self, key: Any, region: str) -> Optional[Any]:
        """Local cache lookup (rule N1's ``lookup``)."""
        self.work(1)
        return self.cache.lookup(key, region)

    def lookup_group(self, key: Any, region: str) -> list:
        """Local cache lookup returning every row cached under ``key``."""
        self.work(1)
        return self.cache.lookup_group(key, region)

    # -- measurement -----------------------------------------------------

    def reset(self) -> None:
        """Reset clock, counters, ORM cache, and client cache for a fresh run."""
        self.connection.reset()
        self.orm.clear()
        self.cache.clear()
        self.statements_executed = 0

    def measure(
        self, program: Callable[["AppRuntime"], Any], *args: Any, **kwargs: Any
    ) -> RunMeasurement:
        """Run ``program(self, *args, **kwargs)`` from a clean state and
        return its measurement."""
        self.reset()
        result = program(self, *args, **kwargs)
        return RunMeasurement(
            elapsed_seconds=self.clock.now,
            queries=self.connection.stats.queries,
            rows_transferred=self.connection.stats.rows_transferred,
            bytes_transferred=self.connection.stats.bytes_transferred,
            statements_executed=self.statements_executed,
            result=result,
        )

    @property
    def elapsed(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now
