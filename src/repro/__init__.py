"""Reproduction of COBRA: cost-based rewriting of database applications.

The public API re-exports the pieces a downstream user needs most often:

* :class:`repro.api.Engine` and :func:`repro.api.connect` — the unified
  client facade (database + network + ORM + optimizer in one place),
* :class:`repro.core.optimizer.CobraOptimizer` — the cost-based rewriter,
* :class:`repro.core.cost_model.CostModel` and
  :class:`repro.core.cost_model.CostParameters` — the Section VI cost model,
* :class:`repro.appsim.runtime.AppRuntime` — the simulated execution
  environment programs run against,
* the network presets :data:`repro.net.network.SLOW_REMOTE` and
  :data:`repro.net.network.FAST_LOCAL`,
* :class:`repro.db.database.Database` — the in-memory database engine.

See ``examples/quickstart.py`` for an end-to-end walk-through.
"""

__version__ = "1.0.0"

from repro.api import Engine, connect
from repro.appsim.runtime import AppRuntime, RunMeasurement
from repro.db.database import Database
from repro.net.network import FAST_LOCAL, SLOW_REMOTE, NetworkConditions

__all__ = [
    "AppRuntime",
    "Database",
    "Engine",
    "FAST_LOCAL",
    "NetworkConditions",
    "RunMeasurement",
    "SLOW_REMOTE",
    "__version__",
    "connect",
]
