"""F-IR expression nodes.

The node set covers what the paper's Figure 8/10/11 use:

* imperative-side values: constants, variables, parametric accumulator
  references (the ``<v>`` notation), attribute/column accesses, arithmetic,
  comparisons, function calls, collection insertion and map put,
* relational-side values: ``QueryExpr`` (a SQL query / algebra tree leaf),
  ``InnerLookupQuery`` (an ``executeQuery(σ R.A = Q.B (R))`` issued inside a
  loop body — the shape rules T4 and N1 match on), ``CacheLookup`` and
  ``Prefetch`` (rule N1's client-side operators),
* the loop abstraction: ``Fold(function, initial, query)`` extended with
  ``TupleExpr`` and ``ProjectExpr`` for dependent aggregations,
* region-combining operators used by rewritten expressions: ``SeqExpr`` and
  ``CondExec`` (the ``?`` conditional-execution operator of rule T2/N2).

Every node renders a readable text form via ``describe()`` (used in tests and
documentation) and exposes ``children()`` for generic traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


class FIRError(Exception):
    """Raised when an F-IR expression cannot be built or transformed."""


class FIRNode:
    """Base class of all F-IR nodes."""

    def children(self) -> tuple["FIRNode", ...]:
        """Immediate child nodes."""
        return ()

    def describe(self) -> str:
        """A compact human-readable rendering of the node."""
        raise NotImplementedError

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# -- scalar / imperative-side nodes ---------------------------------------


@dataclass(frozen=True)
class Const(FIRNode):
    """A constant value (including ``{}`` / ``[]`` initial accumulators)."""

    value: Any

    def describe(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(FIRNode):
    """A reference to a program variable available at region entry."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class ParamVar(FIRNode):
    """A parametric accumulator reference — the paper's ``<v>`` notation."""

    name: str

    def describe(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class ColumnOf(FIRNode):
    """``Q.column`` — the value of a column of the current tuple of a query."""

    source: str
    column: str

    def describe(self) -> str:
        return f"{self.source}.{self.column}"


@dataclass(frozen=True)
class Attr(FIRNode):
    """A generic attribute access on a non-query value."""

    base: FIRNode
    name: str

    def children(self) -> tuple[FIRNode, ...]:
        return (self.base,)

    def describe(self) -> str:
        return f"{self.base.describe()}.{self.name}"


@dataclass(frozen=True)
class BinOp(FIRNode):
    """Binary arithmetic (``+``, ``-``, ``*``, ``/``) or comparison."""

    op: str
    left: FIRNode
    right: FIRNode

    def children(self) -> tuple[FIRNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass(frozen=True)
class Call(FIRNode):
    """A call to an opaque (side-effect free) function such as ``my_func``."""

    function: str
    args: tuple[FIRNode, ...]

    def children(self) -> tuple[FIRNode, ...]:
        return self.args

    def describe(self) -> str:
        rendered = ", ".join(a.describe() for a in self.args)
        return f"{self.function}({rendered})"


@dataclass(frozen=True)
class Insert(FIRNode):
    """Collection insertion — the ``insert`` function of rules T1/T4."""

    collection: FIRNode
    element: FIRNode

    def children(self) -> tuple[FIRNode, ...]:
        return (self.collection, self.element)

    def describe(self) -> str:
        return f"insert({self.collection.describe()}, {self.element.describe()})"


@dataclass(frozen=True)
class MapPut(FIRNode):
    """Map/dictionary put — used by dependent aggregations (Figure 8)."""

    mapping: FIRNode
    key: FIRNode
    value: FIRNode

    def children(self) -> tuple[FIRNode, ...]:
        return (self.mapping, self.key, self.value)

    def describe(self) -> str:
        return (
            f"put({self.mapping.describe()}, {self.key.describe()}, "
            f"{self.value.describe()})"
        )


@dataclass(frozen=True)
class CondExec(FIRNode):
    """The ``?`` operator: execute ``body`` only when ``predicate`` holds."""

    predicate: FIRNode
    body: FIRNode

    def children(self) -> tuple[FIRNode, ...]:
        return (self.predicate, self.body)

    def describe(self) -> str:
        return f"?({self.predicate.describe()}, {self.body.describe()})"


# -- relational-side nodes -------------------------------------------------


@dataclass(frozen=True)
class QueryExpr(FIRNode):
    """A relational query leaf, carried as SQL text (parsed on demand)."""

    sql: str
    label: str = "Q"

    def describe(self) -> str:
        return f"{self.label}[{self.sql}]"


@dataclass(frozen=True)
class InnerLookupQuery(FIRNode):
    """``executeQuery(σ table.key_column = <key expression> (table))``.

    This is the per-iteration lookup query issued inside a cursor loop (either
    an explicit parameterised query or an ORM lazy load); it is exactly the
    pattern rules T4 (join identification) and N1 (prefetching) rewrite.
    """

    table: str
    key_column: str
    key_expression: FIRNode

    def children(self) -> tuple[FIRNode, ...]:
        return (self.key_expression,)

    def describe(self) -> str:
        return (
            f"executeQuery(σ {self.table}.{self.key_column} = "
            f"{self.key_expression.describe()} ({self.table}))"
        )


@dataclass(frozen=True)
class CacheLookup(FIRNode):
    """A local cache lookup (rule N1's ``lookup``)."""

    region: str
    key_expression: FIRNode

    def children(self) -> tuple[FIRNode, ...]:
        return (self.key_expression,)

    def describe(self) -> str:
        return f"lookup({self.key_expression.describe()}, {self.region!r})"


@dataclass(frozen=True)
class Prefetch(FIRNode):
    """Rule N1's ``prefetch(R, A)``: fetch relation R and cache it by column A."""

    table: str
    key_column: str
    sql: Optional[str] = None

    def describe(self) -> str:
        return f"prefetch({self.table}, {self.key_column})"


# -- fold and its extensions ------------------------------------------------


@dataclass(frozen=True)
class TupleExpr(FIRNode):
    """The ``tuple`` operator: an n-tuple of expressions (n >= 1)."""

    items: tuple[FIRNode, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise FIRError("tuple requires at least one item")

    def children(self) -> tuple[FIRNode, ...]:
        return self.items

    def describe(self) -> str:
        return "tuple(" + ", ".join(i.describe() for i in self.items) + ")"


@dataclass(frozen=True)
class ProjectExpr(FIRNode):
    """The ``project`` operator: the i-th component of a tuple expression."""

    source: FIRNode
    index: int

    def children(self) -> tuple[FIRNode, ...]:
        return (self.source,)

    def describe(self) -> str:
        return f"project{self.index}({self.source.describe()})"


@dataclass(frozen=True)
class Fold(FIRNode):
    """``fold(function, initial, query)`` — the loop abstraction.

    ``function`` is the aggregation function applied per tuple (a single
    expression or, with the tuple/project extension, a :class:`TupleExpr`);
    ``initial`` is the value of the accumulator(s) before the loop;
    ``query`` is the query whose result the loop iterates over.
    """

    function: FIRNode
    initial: FIRNode
    query: QueryExpr

    def children(self) -> tuple[FIRNode, ...]:
        return (self.function, self.initial, self.query)

    def describe(self) -> str:
        return (
            f"fold({self.function.describe()}, {self.initial.describe()}, "
            f"{self.query.describe()})"
        )


@dataclass(frozen=True)
class SeqExpr(FIRNode):
    """Sequential composition of F-IR expressions (rule N1's ``seq``)."""

    items: tuple[FIRNode, ...]

    def children(self) -> tuple[FIRNode, ...]:
        return self.items

    def describe(self) -> str:
        return "seq(" + ", ".join(i.describe() for i in self.items) + ")"


# -- helpers ----------------------------------------------------------------


def contains_node(root: FIRNode, node_type: type) -> bool:
    """True if any node in ``root`` is an instance of ``node_type``."""
    return any(isinstance(node, node_type) for node in root.walk())


def find_nodes(root: FIRNode, node_type: type) -> list[FIRNode]:
    """All nodes of ``node_type`` in ``root`` (pre-order)."""
    return [node for node in root.walk() if isinstance(node, node_type)]
