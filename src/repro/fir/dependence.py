"""Data-dependence analysis of cursor-loop bodies.

The F-IR construction algorithm (Figure 9 of the paper) requires a data
dependence graph of the loop body to check its preconditions: every statement
in the loop must either

* bind a loop-local temporary from the current tuple (possibly through a
  lookup query / lazy load), or
* update an accumulator variable as a pure function of the accumulator's
  previous value, the current tuple, and loop-invariant values.

External dependence edges — updates to database state, writes to variables
that are read before being written in the same iteration in unsupported ways,
``break``/``return`` inside the loop, calls with unknown side effects on
shared state — make the loop non-representable as a fold (the preconditions
fail) and the builder leaves the loop untouched.

This module provides a light-weight analysis sufficient for the patterns the
paper evaluates: it computes, per statement, the sets of variables read and
written and classifies accumulator updates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class StatementFacts:
    """Reads/writes and classification of one loop-body statement."""

    node: ast.stmt
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    #: 'binding' | 'accumulate' | 'guard' | 'work' | 'unsupported'
    classification: str = "work"
    reason: str = ""


@dataclass
class LoopDependenceInfo:
    """Result of analysing a loop body."""

    statements: list[StatementFacts]
    loop_variable: str
    #: variables written in the loop whose value escapes the loop
    accumulators: set[str] = field(default_factory=set)
    #: variables bound fresh each iteration (loop-local temporaries)
    locals_: set[str] = field(default_factory=set)
    has_external_effects: bool = False
    failure_reasons: list[str] = field(default_factory=list)

    @property
    def is_foldable(self) -> bool:
        """True when the Figure-9 preconditions (minus P2) are satisfied."""
        return not self.has_external_effects and not self.failure_reasons


#: Calls considered to have external side effects (database writes, I/O).
_EFFECTFUL_CALL_SUFFIXES = {
    "execute_update",
    "update_rows",
    "insert",
    "delete",
    "save",
    "persist",
    "write",
    "print",
}

#: Calls that are known-pure data accesses (allowed inside a foldable loop).
_PURE_DATA_CALLS = {
    "execute_query",
    "execute_query_result",
    "load_all",
    "get",
    "lookup",
    "append",
    "add",
    "put",
}


def analyze_loop_body(
    body: list[ast.stmt], loop_variable: str
) -> LoopDependenceInfo:
    """Analyse the statements of a cursor-loop body."""
    info = LoopDependenceInfo(statements=[], loop_variable=loop_variable)
    bound_locals: set[str] = {loop_variable}
    for stmt in body:
        facts = _analyze_statement(stmt, bound_locals)
        info.statements.append(facts)
        if facts.classification == "unsupported":
            info.failure_reasons.append(facts.reason)
        elif facts.classification == "binding":
            bound_locals |= facts.writes
            info.locals_ |= facts.writes
        elif facts.classification == "accumulate":
            info.accumulators |= facts.writes
        if _has_external_effect(stmt):
            info.has_external_effects = True
            info.failure_reasons.append(
                f"statement has external side effects: {ast.unparse(stmt)}"
            )
    return info


def _analyze_statement(stmt: ast.stmt, bound_locals: set[str]) -> StatementFacts:
    facts = StatementFacts(node=stmt)
    facts.reads = _names_read(stmt)
    facts.writes = _names_written(stmt)

    if isinstance(stmt, (ast.Break, ast.Continue, ast.Return)):
        facts.classification = "unsupported"
        facts.reason = f"control-flow escape inside loop: {ast.unparse(stmt)}"
        return facts

    if isinstance(stmt, ast.If):
        # A guard around accumulations: analyse its body recursively.
        inner = analyze_loop_body(stmt.body + stmt.orelse, loop_variable="")
        if inner.failure_reasons:
            facts.classification = "unsupported"
            facts.reason = "; ".join(inner.failure_reasons)
        else:
            facts.classification = "guard"
        facts.writes |= {
            name for s in inner.statements for name in s.writes
        }
        return facts

    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            if target.id in facts.reads:
                facts.classification = "accumulate"
            else:
                facts.classification = "binding"
            return facts
        if isinstance(target, ast.Subscript):
            # map[key] = value — a map-put accumulation.
            facts.classification = "accumulate"
            facts.writes |= _names_read_expr(target.value)
            return facts

    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        facts.classification = "accumulate"
        facts.writes.add(stmt.target.id)
        return facts

    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        method = _call_method_name(stmt.value)
        if method in {"append", "add", "put"}:
            facts.classification = "accumulate"
            facts.writes |= _names_read_expr(stmt.value.func)
            return facts
        if method in _PURE_DATA_CALLS:
            facts.classification = "work"
            return facts
        facts.classification = "work"
        return facts

    if isinstance(stmt, ast.For):
        facts.classification = "nested_loop"
        return facts

    facts.classification = "work"
    return facts


def _has_external_effect(stmt: ast.stmt) -> bool:
    """Detect statements with database-write or I/O effects."""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            method = _call_method_name(node)
            if method in _EFFECTFUL_CALL_SUFFIXES:
                return True
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            return True
    return False


def _call_method_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _names_read(stmt: ast.stmt) -> set[str]:
    reads: set[str] = set()
    if isinstance(stmt, ast.AugAssign):
        # An augmented assignment reads its own target.
        reads |= _names_read_expr(stmt.target)
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            reads.add(node.id)
    return reads


def _names_written(stmt: ast.stmt) -> set[str]:
    writes: set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.AugStore if hasattr(ast, "AugStore") else ast.Store)
        ):
            writes.add(node.id)
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        writes.add(stmt.target.id)
    return writes


def _names_read_expr(expr: ast.expr) -> set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }
