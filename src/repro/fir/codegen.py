"""Code generation: from rewritten F-IR back to Python source.

The transformation rules (:mod:`repro.fir.rules`) decide *what* the rewritten
region should compute; this module produces the actual Python statements.  It
works by rewriting the original loop-body AST (so untouched computation is
preserved verbatim) with :class:`ast.NodeTransformer` passes:

* ``RowAccessRewriter``  — redirect accesses to the loop variable and to
  lookup-bound variables onto a join-result row variable
  (``o.o_id`` → ``r["o_id"]``, ``cust.c_birth_year`` → ``r["c_birth_year"]``),
* ``SubscriptStyleRewriter`` — convert attribute-style accesses on a variable
  to subscript style (cache rows are plain dicts),
* SQL builders for join queries, aggregate queries, and predicate push-down.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.db import algebra
from repro.db.expressions import BinaryOp, ColumnRef, Expression
from repro.db.sqlgen import SQLGenerationError, to_sql
from repro.db.sqlparser import SQLSyntaxError, parse_sql
from repro.fir.builder import AccumulatorSpec, FoldInfo, LookupBinding


class CodegenError(Exception):
    """Raised when rewritten source cannot be generated."""


# -- AST rewriting ----------------------------------------------------------


class RowAccessRewriter(ast.NodeTransformer):
    """Redirect variable accesses onto a (join-result) row dictionary.

    ``variable_map`` maps a variable name to ``(row_variable, qualifier)``;
    both ``var.attr`` and ``var["attr"]`` become ``row["qualifier.attr"]``
    (or ``row["attr"]`` when the qualifier is ``None``).  Qualified keys avoid
    ambiguity when both joined tables have a column of the same name — the
    executor emits both bare and alias-qualified keys for every join output
    row.
    """

    def __init__(self, variable_map: dict[str, tuple[str, Optional[str]]]) -> None:
        self.variable_map = variable_map

    def _rewrite(self, name: str, column: str, ctx: ast.expr_context) -> ast.AST:
        row, qualifier = self.variable_map[name]
        key = f"{qualifier}.{column}" if qualifier else column
        return ast.Subscript(
            value=ast.Name(id=row, ctx=ast.Load()),
            slice=ast.Constant(value=key),
            ctx=ctx,
        )

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        self.generic_visit(node)
        if isinstance(node.value, ast.Name) and node.value.id in self.variable_map:
            return self._rewrite(node.value.id, node.attr, node.ctx)
        return node

    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        self.generic_visit(node)
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.variable_map
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            return self._rewrite(node.value.id, node.slice.value, node.ctx)
        return node


class SubscriptStyleRewriter(ast.NodeTransformer):
    """Convert ``var.attr`` into ``var["attr"]`` for the given variables."""

    def __init__(self, variables: Iterable[str]) -> None:
        self.variables = set(variables)

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        self.generic_visit(node)
        if isinstance(node.value, ast.Name) and node.value.id in self.variables:
            return ast.Subscript(
                value=node.value,
                slice=ast.Constant(value=node.attr),
                ctx=node.ctx,
            )
        return node


def rewrite_statements(
    statements: Sequence[ast.stmt],
    transformer: ast.NodeTransformer,
    drop: Sequence[ast.stmt] = (),
) -> list[ast.stmt]:
    """Apply ``transformer`` to copies of ``statements``, skipping ``drop``."""
    drop_ids = {id(stmt) for stmt in drop}
    rewritten = []
    for stmt in statements:
        if id(stmt) in drop_ids:
            continue
        clone = _clone(stmt)
        new = transformer.visit(clone)
        ast.fix_missing_locations(new)
        rewritten.append(new)
    return rewritten


def _clone(node: ast.stmt) -> ast.stmt:
    return ast.parse(ast.unparse(node)).body[0]


def unparse_block(statements: Sequence[ast.stmt], indent: int = 0) -> str:
    """Render statements as source with the given indentation."""
    prefix = " " * indent
    lines: list[str] = []
    for stmt in statements:
        for line in ast.unparse(stmt).splitlines():
            lines.append(prefix + line)
    return "\n".join(lines)


# -- SQL builders -----------------------------------------------------------


def build_join_sql(outer_sql: str, binding: LookupBinding) -> Optional[str]:
    """Build the join query that replaces per-iteration lookups (rule T4).

    ``outer_sql`` is the query the loop iterates over; ``binding`` describes
    the inner lookup (table, key column, and the outer column providing the
    key).  Returns ``None`` when the outer query shape is not joinable.
    """
    try:
        outer_plan = parse_sql(outer_sql)
    except SQLSyntaxError:
        return None
    outer_plan = _strip_presentational(outer_plan)
    if not isinstance(outer_plan, (algebra.Scan, algebra.Select)):
        return None
    outer_scans = algebra.find_scans(outer_plan)
    if len(outer_scans) != 1 or binding.table is None or binding.key_column is None:
        return None
    outer_column = _outer_key_column(binding)
    if outer_column is None:
        return None
    outer_alias = outer_scans[0].effective_alias
    condition = BinaryOp(
        "=",
        ColumnRef(outer_column, outer_alias),
        ColumnRef(binding.key_column, binding.table),
    )
    join = algebra.Join(outer_plan, algebra.Scan(binding.table), condition)
    try:
        return to_sql(join)
    except SQLGenerationError:
        return None


def build_nested_join_sql(
    outer_sql: str, inner_sql: str, condition_sql: Optional[str]
) -> Optional[str]:
    """Build a join query replacing an imperative nested-loops join."""
    try:
        outer_plan = _strip_presentational(parse_sql(outer_sql))
        inner_plan = _strip_presentational(parse_sql(inner_sql))
    except SQLSyntaxError:
        return None
    condition: Optional[Expression] = None
    if condition_sql:
        try:
            probe = parse_sql(f"select * from t where {condition_sql}")
        except SQLSyntaxError:
            return None
        for node in algebra.walk(probe):
            if isinstance(node, algebra.Select):
                condition = node.predicate
                break
    join = algebra.Join(outer_plan, inner_plan, condition)
    try:
        return to_sql(join)
    except SQLGenerationError:
        return None


def build_aggregate_sql(
    query_sql: str, function: str, column: Optional[str]
) -> Optional[tuple[str, str]]:
    """Build ``select <function>(<column>) from ...`` over the loop's query.

    Returns ``(sql, output_name)`` or ``None`` when the query shape does not
    admit a single aggregate (rule T5).
    """
    try:
        plan = _strip_presentational(parse_sql(query_sql))
    except SQLSyntaxError:
        return None
    # Aggregating over a projection: aggregate the underlying relation.
    if isinstance(plan, algebra.Project):
        plan = plan.child
    if not isinstance(plan, (algebra.Scan, algebra.Select, algebra.Join)):
        return None
    if function == "count" and column is None:
        spec = algebra.AggregateSpec("count", None, "count_all")
        name = "count_all"
    else:
        if column is None:
            return None
        name = f"{function}_{column}"
        spec = algebra.AggregateSpec(function, ColumnRef(column), name)
    aggregate = algebra.Aggregate(plan, (), (spec,))
    try:
        return to_sql(aggregate), name
    except SQLGenerationError:
        return None


def push_predicate_sql(query_sql: str, predicate_sql: str) -> Optional[str]:
    """Add a WHERE predicate to a query (rule T2's push into the database)."""
    try:
        plan = parse_sql(query_sql)
        probe = parse_sql(f"select * from t where {predicate_sql}")
    except SQLSyntaxError:
        return None
    predicate: Optional[Expression] = None
    for node in algebra.walk(probe):
        if isinstance(node, algebra.Select):
            predicate = node.predicate
            break
    if predicate is None:
        return None
    pushed = _push_select(plan, predicate)
    try:
        return to_sql(pushed)
    except SQLGenerationError:
        return None


def predicate_to_sql(
    guard: ast.expr, loop_variable: str
) -> Optional[tuple[str, list[str]]]:
    """Translate a Python guard over the loop tuple into a SQL predicate.

    Operands may be columns of the current tuple (``o["x"]`` / ``o.x``),
    constants, or expressions over enclosing-scope values; the latter become
    positional ``?`` parameters.  Returns ``(predicate_sql, parameter_sources)``
    where ``parameter_sources`` are Python source snippets supplying the
    parameter values, or ``None`` when the guard is not translatable.
    """
    params: list[str] = []
    try:
        sql = _guard_to_sql(guard, loop_variable, params)
    except CodegenError:
        return None
    return sql, params


def _guard_to_sql(node: ast.expr, loop_variable: str, params: list[str]) -> str:
    if isinstance(node, ast.BoolOp):
        joiner = " and " if isinstance(node.op, ast.And) else " or "
        return "(" + joiner.join(
            _guard_to_sql(v, loop_variable, params) for v in node.values
        ) + ")"
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        operators = {
            ast.Eq: "=",
            ast.NotEq: "<>",
            ast.Lt: "<",
            ast.LtE: "<=",
            ast.Gt: ">",
            ast.GtE: ">=",
        }
        op = operators.get(type(node.ops[0]))
        if op is None:
            raise CodegenError("unsupported comparison operator")
        left = node.left
        right = node.comparators[0]
        # Keep the tuple column on the left so the parameter lands on the right.
        if guard_column(right, loop_variable) is not None and guard_column(
            left, loop_variable
        ) is None:
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        left_sql = _guard_operand_to_sql(left, loop_variable, params)
        right_sql = _guard_operand_to_sql(right, loop_variable, params)
        return f"{left_sql} {op} {right_sql}"
    raise CodegenError(f"unsupported guard {ast.unparse(node)}")


def _guard_operand_to_sql(
    node: ast.expr, loop_variable: str, params: list[str]
) -> str:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return "'" + node.value.replace("'", "''") + "'"
        return repr(node.value)
    column = guard_column(node, loop_variable)
    if column is not None:
        return column
    # Anything else that does not mention the loop variable becomes a
    # positional parameter supplied from the enclosing scope.
    if loop_variable not in {
        n.id for n in ast.walk(node) if isinstance(n, ast.Name)
    }:
        params.append(ast.unparse(node))
        return "?"
    raise CodegenError(f"guard operand not translatable: {ast.unparse(node)}")


def guard_column(node: ast.expr, loop_variable: str) -> Optional[str]:
    """The column of the loop tuple referenced by ``node``, if any."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == loop_variable:
            return node.attr
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == loop_variable
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    return None


def _outer_key_column(binding: LookupBinding) -> Optional[str]:
    """The outer-tuple column supplying the lookup key, if derivable."""
    if binding.source_column:
        return binding.source_column
    key = binding.key_expression
    if isinstance(key, ast.Attribute):
        return key.attr
    if isinstance(key, ast.Subscript) and isinstance(key.slice, ast.Constant):
        value = key.slice.value
        return value if isinstance(value, str) else None
    return None


def _strip_presentational(plan: algebra.PlanNode) -> algebra.PlanNode:
    """Drop Sort/Limit wrappers (irrelevant for joins and aggregates)."""
    while isinstance(plan, (algebra.Sort, algebra.Limit)):
        plan = plan.child
    return plan


def _push_select(
    plan: algebra.PlanNode, predicate: Expression
) -> algebra.PlanNode:
    """Insert a Select under presentational operators of ``plan``."""
    if isinstance(plan, algebra.Sort):
        return algebra.Sort(_push_select(plan.child, predicate), plan.keys)
    if isinstance(plan, algebra.Limit):
        return algebra.Limit(_push_select(plan.child, predicate), plan.count)
    if isinstance(plan, algebra.Project):
        return algebra.Project(_push_select(plan.child, predicate), plan.outputs)
    return algebra.Select(plan, predicate)
