"""F-IR construction: from a cursor loop region to a fold expression.

This implements the algorithm of Figure 9 of the paper (``toFIR`` /
``loopToFold``) with the tuple/project extension of Section V-B: a cursor
loop whose body satisfies the preconditions is represented as::

    fold( tuple(e_1, ..., e_n), tuple(v1_0, ..., vn_0), Q )

where each ``e_i`` is the per-tuple update expression of one accumulated
variable, ``v_i0`` its value before the loop, and ``Q`` the query the loop
iterates over.  The precondition P2 of the earlier work (at most one
aggregated variable) is *not* enforced — dependent aggregations are allowed,
exactly as the paper's extension prescribes.

The builder also extracts structured facts that the transformation rules need
(:class:`LookupBinding` for per-iteration lookup queries / lazy loads,
:class:`AccumulatorSpec` for each accumulated variable,
:class:`NestedJoinInfo` for nested cursor loops that implement a join), so
rules T1-T5/N1/N2 can match without re-deriving everything from the raw AST.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.core.region_analysis import AnalysisContext, classify_data_access
from repro.core.regions import LoopRegion, QueryCallInfo
from repro.fir import expressions as fir
from repro.fir.dependence import LoopDependenceInfo, analyze_loop_body


@dataclass
class LookupBinding:
    """A loop-body binding produced by a per-iteration lookup query.

    Example (program P0): ``cust = o.customer`` binds ``cust`` from a lookup
    on ``customer`` keyed by ``c_customer_sk = o.o_customer_sk``.
    """

    variable: str
    kind: str  # 'lazy_load' | 'sql_lookup' | 'cache_lookup'
    table: Optional[str]
    key_column: Optional[str]
    key_expression: ast.expr
    source_column: Optional[str] = None
    entity: Optional[str] = None
    statement: Optional[ast.stmt] = None
    fir_node: Optional[fir.FIRNode] = None


@dataclass
class AccumulatorSpec:
    """One accumulated variable and its per-tuple update."""

    variable: str
    kind: str  # 'collection_insert' | 'scalar' | 'map_put'
    operator: Optional[str]
    value: ast.expr
    key: Optional[ast.expr] = None
    guard: Optional[ast.expr] = None
    statement: Optional[ast.stmt] = None
    fir_node: Optional[fir.FIRNode] = None
    depends_on: set = field(default_factory=set)

    @property
    def is_simple_column_sum(self) -> bool:
        """True for ``acc = acc + <column of the query tuple>`` updates."""
        return self.kind == "scalar" and self.operator in {"+", "max", "min"}


@dataclass
class NestedJoinInfo:
    """A nested cursor loop implementing a join inside the outer loop."""

    loop_node: ast.For
    inner_variable: str
    inner_query: QueryCallInfo
    inner_sql: str
    join_condition: Optional[ast.expr]


@dataclass
class FoldInfo:
    """Everything known about one cursor loop represented as a fold."""

    loop: LoopRegion
    query: QueryCallInfo
    query_sql: str
    loop_variable: str
    bindings: list[LookupBinding]
    local_bindings: dict[str, ast.expr]
    accumulators: list[AccumulatorSpec]
    nested_joins: list[NestedJoinInfo]
    dependence: LoopDependenceInfo
    fold: fir.Fold
    guard: Optional[ast.expr] = None
    #: statements kept verbatim in rewrites (e.g. recursive calls): rules that
    #: replace the whole loop must not apply when any are present.
    opaque_statements: list = field(default_factory=list)

    @property
    def has_lookup(self) -> bool:
        """True when the loop performs per-iteration lookup queries."""
        return bool(self.bindings)

    @property
    def has_opaque_statements(self) -> bool:
        """True when the loop body contains statements the rules cannot model."""
        return bool(self.opaque_statements)

    @property
    def has_dependent_aggregations(self) -> bool:
        """True when one accumulator reads another (Figure 7's cSum case)."""
        names = {a.variable for a in self.accumulators}
        return any(a.depends_on & (names - {a.variable}) for a in self.accumulators)

    def accumulator(self, variable: str) -> Optional[AccumulatorSpec]:
        for spec in self.accumulators:
            if spec.variable == variable:
                return spec
        return None


class FoldConstructionError(Exception):
    """Raised when a loop violates the F-IR preconditions."""


def query_sql_for(query: QueryCallInfo) -> Optional[str]:
    """The SQL text of the query a cursor loop iterates over."""
    if query.kind == "sql":
        return query.sql
    if query.kind == "load_all" and query.table:
        return f"select * from {query.table}"
    return None


def build_fold(
    loop: LoopRegion, context: AnalysisContext
) -> Optional[FoldInfo]:
    """Build the fold representation of ``loop``.

    Returns ``None`` when the loop is not a cursor loop or when the F-IR
    preconditions fail (external effects, unsupported statements); in that
    case the loop simply keeps only its original implementation in the Region
    DAG and other rules may still apply elsewhere in the program.
    """
    if not loop.is_cursor_loop or loop.loop_node is None:
        return None
    query_sql = query_sql_for(loop.query)
    if query_sql is None:
        return None
    body = list(loop.loop_node.body)
    dependence = analyze_loop_body(body, loop.loop_variable)
    if not dependence.is_foldable:
        return None

    bindings: list[LookupBinding] = []
    local_bindings: dict[str, ast.expr] = {}
    accumulators: list[AccumulatorSpec] = []
    nested_joins: list[NestedJoinInfo] = []
    opaque_statements: list[ast.stmt] = []

    try:
        for stmt in body:
            _process_statement(
                stmt,
                loop,
                context,
                bindings,
                local_bindings,
                accumulators,
                nested_joins,
                opaque_statements,
                guard=None,
            )
    except FoldConstructionError:
        return None

    if not accumulators and not nested_joins:
        # Nothing escapes the loop: nothing to optimise (or the loop's effect
        # is not representable); keep the original only.
        return None

    fold_expr = _formal_fold(
        loop, query_sql, accumulators, bindings, local_bindings
    )
    accumulator_names = {a.variable for a in accumulators}
    for spec in accumulators:
        spec.depends_on = _names_in(spec.value) & accumulator_names

    return FoldInfo(
        loop=loop,
        query=loop.query,
        query_sql=query_sql,
        loop_variable=loop.loop_variable,
        bindings=bindings,
        local_bindings=local_bindings,
        accumulators=accumulators,
        nested_joins=nested_joins,
        dependence=dependence,
        fold=fold_expr,
        opaque_statements=opaque_statements,
    )


# -- statement processing --------------------------------------------------


def _process_statement(
    stmt: ast.stmt,
    loop: LoopRegion,
    context: AnalysisContext,
    bindings: list[LookupBinding],
    local_bindings: dict[str, ast.expr],
    accumulators: list[AccumulatorSpec],
    nested_joins: list[NestedJoinInfo],
    opaque_statements: list[ast.stmt],
    guard: Optional[ast.expr],
) -> None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            _process_name_assignment(
                stmt, target.id, loop, context, bindings, local_bindings,
                accumulators, guard,
            )
            return
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            accumulators.append(
                AccumulatorSpec(
                    variable=target.value.id,
                    kind="map_put",
                    operator=None,
                    value=stmt.value,
                    key=target.slice,
                    guard=guard,
                    statement=stmt,
                )
            )
            return
        raise FoldConstructionError(f"unsupported assignment {ast.unparse(stmt)}")

    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        operator = _aug_operator(stmt.op)
        accumulators.append(
            AccumulatorSpec(
                variable=stmt.target.id,
                kind="scalar",
                operator=operator,
                value=stmt.value,
                guard=guard,
                statement=stmt,
            )
        )
        return

    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if isinstance(call.func, ast.Attribute) and call.func.attr in {
            "append",
            "add",
        }:
            if isinstance(call.func.value, ast.Name) and call.args:
                accumulators.append(
                    AccumulatorSpec(
                        variable=call.func.value.id,
                        kind="collection_insert",
                        operator=None,
                        value=call.args[0],
                        guard=guard,
                        statement=stmt,
                    )
                )
                return
        if isinstance(call.func, ast.Attribute) and call.func.attr == "work":
            # Simulation bookkeeping: ignore.
            return
        # An opaque (recursive or helper) call: tolerated, kept verbatim in
        # rewrites; rules that replace the whole loop must not fire.
        opaque_statements.append(stmt)
        return

    if isinstance(stmt, ast.If):
        if stmt.orelse:
            raise FoldConstructionError("if/else inside a cursor loop")
        combined_guard = stmt.test if guard is None else ast.BoolOp(
            op=ast.And(), values=[guard, stmt.test]
        )
        for inner in stmt.body:
            _process_statement(
                inner, loop, context, bindings, local_bindings, accumulators,
                nested_joins, opaque_statements, combined_guard,
            )
        return

    if isinstance(stmt, ast.For):
        nested = _process_nested_loop(stmt, context)
        if nested is None:
            raise FoldConstructionError(
                f"unsupported nested loop {ast.unparse(stmt)[:60]}"
            )
        nested_joins.append(nested)
        return

    if isinstance(stmt, ast.Pass):
        return

    raise FoldConstructionError(f"unsupported statement {ast.unparse(stmt)[:60]}")


def _process_name_assignment(
    stmt: ast.Assign,
    target: str,
    loop: LoopRegion,
    context: AnalysisContext,
    bindings: list[LookupBinding],
    local_bindings: dict[str, ast.expr],
    accumulators: list[AccumulatorSpec],
    guard: Optional[ast.expr],
) -> None:
    value = stmt.value
    # Accumulation: target appears on the right-hand side.
    if target in _names_in(value):
        operator = None
        update_value = value
        if isinstance(value, ast.BinOp):
            operator = _bin_operator(value.op)
            update_value = _other_operand(value, target)
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in {"max", "min"}:
                operator = value.func.id
                update_value = _other_call_operand(value, target)
        accumulators.append(
            AccumulatorSpec(
                variable=target,
                kind="scalar",
                operator=operator,
                value=update_value if update_value is not None else value,
                guard=guard,
                statement=stmt,
            )
        )
        return

    # Lazy many-to-one load: cust = o.customer
    lazy = _lazy_load_binding(stmt, target, loop, context)
    if lazy is not None:
        bindings.append(lazy)
        return

    # Cache lookup: cust = rt.lookup(key, "region")
    cache = _cache_lookup_binding(stmt, target, context)
    if cache is not None:
        bindings.append(cache)
        return

    # Parameterised point query: rows = rt.execute_query("... where c = ?", (k,))
    sql_lookup = _sql_lookup_binding(stmt, target, context)
    if sql_lookup is not None:
        bindings.append(sql_lookup)
        return

    # Otherwise: a loop-local temporary computed from available values.
    local_bindings[target] = value


def _process_nested_loop(
    stmt: ast.For, context: AnalysisContext
) -> Optional[NestedJoinInfo]:
    """Recognise a nested cursor loop (a nested-loops join in imperative code)."""
    inner_query = classify_data_access(stmt.iter, context)
    if inner_query is None:
        return None
    inner_sql = query_sql_for(inner_query)
    if inner_sql is None:
        return None
    join_condition = None
    if len(stmt.body) == 1 and isinstance(stmt.body[0], ast.If):
        join_condition = stmt.body[0].test
    inner_variable = (
        stmt.target.id if isinstance(stmt.target, ast.Name) else ast.unparse(stmt.target)
    )
    return NestedJoinInfo(
        loop_node=stmt,
        inner_variable=inner_variable,
        inner_query=inner_query,
        inner_sql=inner_sql,
        join_condition=join_condition,
    )


# -- binding recognisers ----------------------------------------------------


def _lazy_load_binding(
    stmt: ast.Assign, target: str, loop: LoopRegion, context: AnalysisContext
) -> Optional[LookupBinding]:
    value = stmt.value
    if not isinstance(value, ast.Attribute):
        return None
    if not isinstance(value.value, ast.Name):
        return None
    if value.value.id != loop.loop_variable:
        return None
    registry = context.registry
    if registry is None:
        return None
    entity_name = None
    if loop.query is not None and loop.query.kind == "load_all":
        entity_name = loop.query.entity
    if entity_name is None or not registry.has_entity(entity_name):
        return None
    definition = registry.entity(entity_name)
    if not definition.has_relation(value.attr):
        return None
    relation = definition.relation(value.attr)
    target_def = registry.entity(relation.target_entity)
    key_expression = ast.Attribute(
        value=ast.Name(id=loop.loop_variable, ctx=ast.Load()),
        attr=relation.join_column,
        ctx=ast.Load(),
    )
    return LookupBinding(
        variable=target,
        kind="lazy_load",
        table=target_def.table,
        key_column=relation.target_key_column,
        key_expression=key_expression,
        source_column=relation.join_column,
        entity=relation.target_entity,
        statement=stmt,
    )


def _cache_lookup_binding(
    stmt: ast.Assign, target: str, context: AnalysisContext
) -> Optional[LookupBinding]:
    value = stmt.value
    if not isinstance(value, ast.Call):
        return None
    info = classify_data_access(value, context)
    if info is None or info.kind != "lookup":
        return None
    key_expression = value.args[0] if value.args else ast.Constant(value=None)
    return LookupBinding(
        variable=target,
        kind="cache_lookup",
        table=None,
        key_column=info.key_column,
        key_expression=key_expression,
        statement=stmt,
    )


def _sql_lookup_binding(
    stmt: ast.Assign, target: str, context: AnalysisContext
) -> Optional[LookupBinding]:
    value = stmt.value
    if not isinstance(value, ast.Call):
        return None
    info = classify_data_access(value, context)
    if info is None or info.kind != "sql" or not info.sql:
        return None
    if "?" not in info.sql:
        return None
    parsed = _parse_point_lookup(info.sql)
    if parsed is None:
        return None
    table, key_column = parsed
    key_expression = _first_parameter_expression(value)
    if key_expression is None:
        return None
    return LookupBinding(
        variable=target,
        kind="sql_lookup",
        table=table,
        key_column=key_column,
        key_expression=key_expression,
        statement=stmt,
    )


def _parse_point_lookup(sql: str) -> Optional[tuple[str, str]]:
    """Recognise ``select ... from <table> where <col> = ?`` shapes."""
    from repro.db import algebra
    from repro.db.expressions import BinaryOp, ColumnRef
    from repro.db.sqlparser import Parameter, SQLSyntaxError, parse_sql

    try:
        plan = parse_sql(sql)
    except SQLSyntaxError:
        return None
    scans = algebra.find_scans(plan)
    if len(scans) != 1:
        return None
    for node in algebra.walk(plan):
        if isinstance(node, algebra.Select):
            predicate = node.predicate
            if (
                isinstance(predicate, BinaryOp)
                and predicate.op in {"=", "=="}
                and isinstance(predicate.left, ColumnRef)
                and isinstance(predicate.right, Parameter)
            ):
                return scans[0].table, predicate.left.name
    return None


def _first_parameter_expression(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) < 2:
        return None
    params = call.args[1]
    if isinstance(params, (ast.Tuple, ast.List)) and params.elts:
        return params.elts[0]
    return params


# -- the formal fold expression ---------------------------------------------


def _formal_fold(
    loop: LoopRegion,
    query_sql: str,
    accumulators: list[AccumulatorSpec],
    bindings: list[LookupBinding],
    local_bindings: Optional[dict[str, ast.expr]] = None,
) -> fir.Fold:
    query = fir.QueryExpr(sql=query_sql)
    environment = {loop.loop_variable: "Q"}
    binding_nodes = {
        b.variable: fir.InnerLookupQuery(
            table=b.table or "cache",
            key_column=b.key_column or "key",
            key_expression=ast_to_fir(b.key_expression, environment, set()),
        )
        for b in bindings
    }
    accumulator_names = {a.variable for a in accumulators}
    # Loop-local temporaries are resolved into the expressions that use them
    # (F-IR represents values "only in terms of constants and values available
    # at the beginning of the region; any intermediate assignments are
    # resolved").
    for variable, expression in (local_bindings or {}).items():
        binding_nodes[variable] = ast_to_fir(
            expression, environment, accumulator_names, dict(binding_nodes)
        )
    items = []
    for spec in accumulators:
        value = ast_to_fir(
            spec.value, environment, accumulator_names, binding_nodes
        )
        if spec.kind == "collection_insert":
            node: fir.FIRNode = fir.Insert(fir.ParamVar(spec.variable), value)
        elif spec.kind == "map_put":
            key = ast_to_fir(
                spec.key, environment, accumulator_names, binding_nodes
            )
            node = fir.MapPut(fir.ParamVar(spec.variable), key, value)
        else:
            operator = spec.operator or "+"
            node = fir.BinOp(operator, fir.ParamVar(spec.variable), value)
        if spec.guard is not None:
            predicate = ast_to_fir(
                spec.guard, environment, accumulator_names, binding_nodes
            )
            node = fir.CondExec(predicate, node)
        spec.fir_node = node
        items.append(node)
    function: fir.FIRNode
    initial: fir.FIRNode
    if not items:
        # No accumulators at this level (e.g. the outer loop of an imperative
        # nested-loops join): the fold function is a placeholder; the nested
        # structure carries the actual computation.
        function = fir.Const(None)
        initial = fir.Const(None)
    elif len(items) == 1:
        function = items[0]
        initial = fir.Var(f"{accumulators[0].variable}_0")
    else:
        function = fir.TupleExpr(tuple(items))
        initial = fir.TupleExpr(
            tuple(fir.Var(f"{a.variable}_0") for a in accumulators)
        )
    return fir.Fold(function=function, initial=initial, query=query)


def ast_to_fir(
    node: ast.expr,
    environment: dict[str, str],
    accumulator_names: set,
    binding_nodes: Optional[dict[str, fir.FIRNode]] = None,
) -> fir.FIRNode:
    """Convert a Python expression AST to an F-IR node.

    ``environment`` maps loop variables to query labels (``{'o': 'Q'}``);
    ``accumulator_names`` become :class:`ParamVar` references; names bound by
    lookup queries are replaced by their :class:`InnerLookupQuery` nodes.
    """
    binding_nodes = binding_nodes or {}
    if isinstance(node, ast.Constant):
        return fir.Const(node.value)
    if isinstance(node, (ast.List, ast.Dict, ast.Set)) and not getattr(
        node, "elts", None
    ) and not getattr(node, "keys", None):
        return fir.Const({} if isinstance(node, ast.Dict) else [])
    if isinstance(node, ast.Name):
        if node.id in accumulator_names:
            return fir.ParamVar(node.id)
        if node.id in binding_nodes:
            return binding_nodes[node.id]
        if node.id in environment:
            return fir.Var(environment[node.id])
        return fir.Var(node.id)
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name) and base.id in environment:
            return fir.ColumnOf(environment[base.id], node.attr)
        if isinstance(base, ast.Name) and base.id in binding_nodes:
            return fir.Attr(binding_nodes[base.id], node.attr)
        return fir.Attr(
            ast_to_fir(base, environment, accumulator_names, binding_nodes),
            node.attr,
        )
    if isinstance(node, ast.Subscript):
        base = node.value
        column = None
        if isinstance(node.slice, ast.Constant) and isinstance(
            node.slice.value, str
        ):
            column = node.slice.value
        if isinstance(base, ast.Name) and column is not None:
            if base.id in environment:
                return fir.ColumnOf(environment[base.id], column)
            if base.id in binding_nodes:
                return fir.Attr(binding_nodes[base.id], column)
        return fir.Call(
            "getitem",
            (
                ast_to_fir(base, environment, accumulator_names, binding_nodes),
                ast_to_fir(
                    node.slice, environment, accumulator_names, binding_nodes
                ),
            ),
        )
    if isinstance(node, ast.BinOp):
        return fir.BinOp(
            _bin_operator(node.op),
            ast_to_fir(node.left, environment, accumulator_names, binding_nodes),
            ast_to_fir(node.right, environment, accumulator_names, binding_nodes),
        )
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        return fir.BinOp(
            _compare_operator(node.ops[0]),
            ast_to_fir(node.left, environment, accumulator_names, binding_nodes),
            ast_to_fir(
                node.comparators[0], environment, accumulator_names, binding_nodes
            ),
        )
    if isinstance(node, ast.BoolOp):
        result = ast_to_fir(
            node.values[0], environment, accumulator_names, binding_nodes
        )
        operator = "and" if isinstance(node.op, ast.And) else "or"
        for value in node.values[1:]:
            result = fir.BinOp(
                operator,
                result,
                ast_to_fir(value, environment, accumulator_names, binding_nodes),
            )
        return result
    if isinstance(node, ast.Call):
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else ast.unparse(node.func)
        )
        return fir.Call(
            name,
            tuple(
                ast_to_fir(a, environment, accumulator_names, binding_nodes)
                for a in node.args
            ),
        )
    if isinstance(node, (ast.List, ast.Tuple)):
        return fir.Call(
            "collection",
            tuple(
                ast_to_fir(e, environment, accumulator_names, binding_nodes)
                for e in node.elts
            ),
        )
    return fir.Var(ast.unparse(node))


# -- tiny helpers -----------------------------------------------------------


def _names_in(node: ast.AST) -> set:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _bin_operator(op: ast.operator) -> str:
    mapping = {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.Mod: "%",
    }
    return mapping.get(type(op), type(op).__name__)


def _compare_operator(op: ast.cmpop) -> str:
    mapping = {
        ast.Eq: "==",
        ast.NotEq: "!=",
        ast.Lt: "<",
        ast.LtE: "<=",
        ast.Gt: ">",
        ast.GtE: ">=",
    }
    return mapping.get(type(op), type(op).__name__)


def _aug_operator(op: ast.operator) -> str:
    return _bin_operator(op)


def _other_operand(node: ast.BinOp, target: str) -> Optional[ast.expr]:
    if isinstance(node.left, ast.Name) and node.left.id == target:
        return node.right
    if isinstance(node.right, ast.Name) and node.right.id == target:
        return node.left
    return None


def _other_call_operand(node: ast.Call, target: str) -> Optional[ast.expr]:
    others = [
        a
        for a in node.args
        if not (isinstance(a, ast.Name) and a.id == target)
    ]
    return others[0] if others else None
