"""F-IR: the fold-based intermediate representation (Section V of the paper).

Cursor loops are represented with the ``fold`` operator, extended with
``tuple`` and ``project`` so loops with dependent aggregations (Figure 7) are
representable.  The transformation rules T1-T5 (SQL translation) and N1/N2
(prefetching) of Figure 11 operate on this representation.
"""

from repro.fir.builder import FoldInfo, build_fold
from repro.fir.expressions import FIRError, Fold, ProjectExpr, QueryExpr, TupleExpr

__all__ = [
    "FIRError",
    "Fold",
    "FoldInfo",
    "ProjectExpr",
    "QueryExpr",
    "TupleExpr",
    "build_fold",
]
