"""F-IR transformation rules (Figure 11 of the paper).

Each rule inspects the fold representation of a cursor loop
(:class:`repro.fir.builder.FoldInfo`) and, when its pattern matches, produces
one or more :class:`LoopRewrite` alternatives — replacement Python source for
the loop region.  The COBRA optimizer adds every alternative to the Region
DAG; none of the rules decides by itself whether its rewrite is beneficial
(that is the cost model's job).

Implemented rules and the paper rules they correspond to:

================  =========================================================
``SqlTranslationRule``    T1 (+T2): fold of plain inserts → single SQL query,
                          pushing a translatable guard into the WHERE clause
``AggregationRule``       T5 (+T3): scalar fold of a query column → SQL
                          aggregate; also the "extra query" variant for loops
                          with additional (dependent) aggregations, which the
                          cost model is expected to reject (Section V-B)
``JoinRewriteRule``       T4: per-iteration lookups / lazy loads → one join
                          query (program P0 → P1)
``NestedJoinRule``        T4: imperative nested-loops join → one join query
``PrefetchRule``          N1: per-iteration lookups → prefetch + local cache
                          lookups (program P0 → P2)
``PrefetchNestedJoinRule``  N1 applied to an imperative nested-loops join
``PrefetchGroupRule``     N2 + N1: parameterised selection executed inside an
                          enclosing loop / across calls → prefetch the whole
                          relation once, filter locally
================  =========================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.fir import codegen
from repro.fir.builder import (
    AccumulatorSpec,
    FoldInfo,
    LookupBinding,
    NestedJoinInfo,
    _parse_point_lookup,
)


@dataclass(frozen=True)
class LoopRewrite:
    """One alternative implementation of a loop region."""

    strategy: str
    source: str
    description: str
    rule: str


@dataclass
class RuleContext:
    """Shared context for rule application."""

    runtime_parameter: str = "rt"


class FIRRule:
    """Base class for F-IR transformation rules."""

    name = "fir-rule"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        """Return alternative rewrites of the loop (possibly empty)."""
        raise NotImplementedError


# -- T1 / T2: SQL translation of filter/copy loops --------------------------


class SqlTranslationRule(FIRRule):
    """fold(insert, {}, Q) = Q, with optional predicate push (T1 + T2)."""

    name = "T1/T2 sql-translation"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        if fold.bindings or fold.nested_joins or len(fold.accumulators) != 1:
            return []
        if fold.has_opaque_statements:
            return []
        spec = fold.accumulators[0]
        if spec.kind != "collection_insert":
            return []
        if not _is_loop_variable(spec.value, fold.loop_variable):
            return []
        rt = context.runtime_parameter
        base_params = _loop_query_params(fold)
        rewrites = []
        if spec.guard is None:
            call = _query_call_source(rt, fold.query_sql, base_params)
            source = f"{spec.variable}.extend({call})"
            rewrites.append(
                LoopRewrite(
                    strategy="sql-translation",
                    source=source,
                    description="fold removal (T1): the loop only copies "
                    "query rows into a collection",
                    rule=self.name,
                )
            )
            return rewrites
        translated = codegen.predicate_to_sql(spec.guard, fold.loop_variable)
        if translated is None:
            return []
        predicate, guard_params = translated
        pushed = codegen.push_predicate_sql(fold.query_sql, predicate)
        if pushed is None:
            return []
        call = _query_call_source(rt, pushed, base_params + guard_params)
        source = f"{spec.variable}.extend({call})"
        rewrites.append(
            LoopRewrite(
                strategy="sql-filter",
                source=source,
                description="predicate push into the query (T2) followed by "
                "fold removal (T1)",
                rule=self.name,
            )
        )
        return rewrites


# -- T5: aggregation ---------------------------------------------------------


class AggregationRule(FIRRule):
    """fold(op, id, pi_A(Q)) = gamma_op(A)(Q) (T5)."""

    name = "T5 aggregation"

    _OPERATORS = {"+": "sum", "max": "max", "min": "min"}

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        if fold.bindings or fold.nested_joins:
            return []
        rewrites: list[LoopRewrite] = []
        rt = context.runtime_parameter
        base_params = _loop_query_params(fold)
        for spec in fold.accumulators:
            aggregate = self._aggregate_for(spec, fold)
            if aggregate is None:
                continue
            sql, output = aggregate
            call = _query_call_source(rt, sql, base_params)
            assignment = f"{spec.variable} = {call}[0][{output!r}]"
            if len(fold.accumulators) == 1 and not fold.has_opaque_statements:
                rewrites.append(
                    LoopRewrite(
                        strategy="sql-aggregate",
                        source=assignment,
                        description=f"aggregation pushed into SQL for "
                        f"{spec.variable!r} (T5); replaces the whole loop",
                        rule=self.name,
                    )
                )
            else:
                # The loop computes other (possibly dependent) aggregations,
                # so the loop must stay; the extra query is an alternative the
                # cost model is expected to reject (Section V-B discussion).
                original = fold.loop.to_source(0)
                rewrites.append(
                    LoopRewrite(
                        strategy="sql-aggregate-extra",
                        source=f"{original}\n{assignment}",
                        description=f"extra SQL aggregate query for "
                        f"{spec.variable!r} alongside the original loop "
                        "(the heuristic rewrite of Section V-B)",
                        rule=self.name,
                    )
                )
        return rewrites

    def _aggregate_for(
        self, spec: AccumulatorSpec, fold: FoldInfo
    ) -> Optional[tuple[str, str]]:
        if spec.kind != "scalar" or spec.guard is not None:
            return None
        function = self._OPERATORS.get(spec.operator or "")
        if function is None:
            return None
        column = _column_of_loop_tuple(spec.value, fold.loop_variable)
        if column is None:
            if _is_constant_one(spec.value) and spec.operator == "+":
                return codegen.build_aggregate_sql(fold.query_sql, "count", None)
            return None
        return codegen.build_aggregate_sql(fold.query_sql, function, column)


# -- T2 / N2+N1: predicate push and prefetch of filtered loops ----------------


class PredicatePushRule(FIRRule):
    """fold(?(pred, g), id, Q) = fold(g, id, sigma_pred(Q)) (T2).

    The loop's common guard is pushed into the query's WHERE clause (values
    from enclosing scope become query parameters) and removed from the body.
    This is the rewrite the heuristic optimizer favours for Wilos pattern A's
    inner loop — when the guard references an outer-loop value it turns a
    single scan into one query per outer iteration.
    """

    name = "T2 predicate push"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        match = _common_guard(fold)
        if match is None:
            return []
        guard, guarded = match
        translated = codegen.predicate_to_sql(guard, fold.loop_variable)
        if translated is None:
            return []
        predicate, guard_params = translated
        pushed = codegen.push_predicate_sql(fold.query_sql, predicate)
        if pushed is None:
            return []
        rt = context.runtime_parameter
        base_params = _loop_query_params(fold)
        call = _query_call_source(rt, pushed, base_params + guard_params)
        body_source = _body_without_guard(fold, guard)
        if body_source is None:
            return []
        source = (
            f"for {fold.loop_variable} in {call}:\n" + body_source
        )
        return [
            LoopRewrite(
                strategy="sql-filter",
                source=source,
                description="the loop's filter predicate pushed into the "
                "query's WHERE clause (T2)",
                rule=self.name,
            )
        ]


class PrefetchFilterRule(FIRRule):
    """N2 + N1 for loops filtered on a key from the enclosing scope.

    Matches a loop whose common guard is ``<tuple column> == <outer value>``;
    rewrites it to a one-time grouped prefetch of the relation plus a local
    keyed lookup — COBRA's choice for Wilos patterns A and C when iterative
    queries or large join results are too expensive.
    """

    name = "N2+N1 prefetch filtered loop"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        match = _common_guard(fold)
        if match is None:
            return []
        guard, _ = match
        key = _equality_guard_key(guard, fold.loop_variable)
        if key is None:
            return []
        column, outer_source = key
        table = _single_table(fold.query_sql)
        if table is None or "?" in fold.query_sql:
            return []
        rt = context.runtime_parameter
        region = f"{table}.{column}"
        body_source = _body_without_guard(fold, guard)
        if body_source is None:
            return []
        lines = [
            f"{rt}.prefetch_group({table!r}, {column!r}, {region!r})",
            f"for {fold.loop_variable} in "
            f"{rt}.lookup_group({outer_source}, {region!r}):",
            body_source,
        ]
        return [
            LoopRewrite(
                strategy="prefetch",
                source="\n".join(lines),
                description="filtered scan replaced by a one-time grouped "
                "prefetch of the relation plus a local keyed lookup (N2+N1)",
                rule=self.name,
            )
        ]


# -- T4: join identification --------------------------------------------------


class JoinRewriteRule(FIRRule):
    """Per-iteration lookups become one join query (T4; P0 → P1)."""

    name = "T4 join identification"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        if not fold.bindings or fold.nested_joins:
            return []
        lookups = [
            b for b in fold.bindings if b.kind in {"lazy_load", "sql_lookup"}
        ]
        if len(lookups) != len(fold.bindings) or not lookups:
            return []
        join_sql = fold.query_sql
        for binding in lookups:
            join_sql = codegen.build_join_sql(join_sql, binding)
            if join_sql is None:
                return []
        rt = context.runtime_parameter
        row_var = _fresh_name("r", fold)
        outer_alias = _single_scan_alias(fold.query_sql)
        variable_map = {fold.loop_variable: (row_var, outer_alias)}
        variable_map.update(
            {b.variable: (row_var, b.table) for b in lookups}
        )
        body = codegen.rewrite_statements(
            fold.loop.loop_node.body,
            codegen.RowAccessRewriter(variable_map),
            drop=[b.statement for b in lookups if b.statement is not None],
        )
        if not body:
            return []
        header = f"for {row_var} in {rt}.execute_query({join_sql!r}):"
        source = header + "\n" + codegen.unparse_block(body, indent=4)
        return [
            LoopRewrite(
                strategy="sql-join",
                source=source,
                description="iterative lookup queries replaced by a single "
                "join query executed at the database (T4)",
                rule=self.name,
            )
        ]


class NestedJoinRule(FIRRule):
    """An imperative nested-loops join becomes one SQL join (T4)."""

    name = "T4 nested-loops join"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        if len(fold.nested_joins) != 1 or fold.bindings or fold.accumulators:
            return []
        nested = fold.nested_joins[0]
        condition_sql = _join_condition_sql(fold, nested)
        join_sql = codegen.build_nested_join_sql(
            fold.query_sql, nested.inner_sql, condition_sql
        )
        if join_sql is None:
            return []
        inner_body = self._joined_body(nested)
        if inner_body is None:
            return []
        rt = context.runtime_parameter
        row_var = _fresh_name("r", fold)
        variable_map = {
            fold.loop_variable: (row_var, _single_scan_alias(fold.query_sql)),
            nested.inner_variable: (row_var, _single_scan_alias(nested.inner_sql)),
        }
        body = codegen.rewrite_statements(
            inner_body, codegen.RowAccessRewriter(variable_map)
        )
        header = f"for {row_var} in {rt}.execute_query({join_sql!r}):"
        source = header + "\n" + codegen.unparse_block(body, indent=4)
        return [
            LoopRewrite(
                strategy="sql-join",
                source=source,
                description="imperative nested-loops join replaced by a SQL "
                "join executed at the database (T4)",
                rule=self.name,
            )
        ]

    @staticmethod
    def _joined_body(nested: NestedJoinInfo) -> Optional[list[ast.stmt]]:
        body = nested.loop_node.body
        if nested.join_condition is not None:
            if len(body) == 1 and isinstance(body[0], ast.If):
                return list(body[0].body)
            return None
        return list(body)


# -- N1: prefetching ----------------------------------------------------------


class PrefetchRule(FIRRule):
    """Per-iteration lookups become prefetch + local lookups (N1; P0 → P2)."""

    name = "N1 prefetching"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        if not fold.bindings or fold.nested_joins:
            return []
        lookups = [
            b
            for b in fold.bindings
            if b.kind in {"lazy_load", "sql_lookup"}
            and b.table
            and b.key_column
        ]
        if len(lookups) != len(fold.bindings) or not lookups:
            return []
        rt = context.runtime_parameter
        prefetch_lines = []
        replacements: dict[int, str] = {}
        dict_vars = []
        for binding in lookups:
            region = f"{binding.table}.{binding.key_column}"
            key_source = ast.unparse(binding.key_expression)
            if binding.kind == "lazy_load":
                prefetch_lines.append(
                    f"{rt}.prefetch({binding.table!r}, {binding.key_column!r}, "
                    f"{region!r})"
                )
                replacements[id(binding.statement)] = (
                    f"{binding.variable} = {rt}.lookup({key_source}, {region!r})"
                )
            else:
                prefetch_lines.append(
                    f"{rt}.prefetch_group({binding.table!r}, "
                    f"{binding.key_column!r}, {region!r})"
                )
                replacements[id(binding.statement)] = (
                    f"{binding.variable} = {rt}.lookup_group({key_source}, "
                    f"{region!r})"
                )
            dict_vars.append(binding.variable)
        body_lines = []
        rewriter = codegen.SubscriptStyleRewriter(dict_vars)
        for stmt in fold.loop.loop_node.body:
            if id(stmt) in replacements:
                body_lines.append(replacements[id(stmt)])
                continue
            clone = ast.parse(ast.unparse(stmt)).body[0]
            new = rewriter.visit(clone)
            ast.fix_missing_locations(new)
            body_lines.extend(ast.unparse(new).splitlines())
        header = (
            f"for {fold.loop_variable} in {ast.unparse(fold.loop.iterable)}:"
        )
        loop_source = header + "\n" + "\n".join(
            "    " + line for line in body_lines
        )
        source = "\n".join(prefetch_lines + [loop_source])
        return [
            LoopRewrite(
                strategy="prefetch",
                source=source,
                description="iterative lookup queries replaced by a one-time "
                "prefetch of the looked-up relation plus local cache lookups "
                "(N1)",
                rule=self.name,
            )
        ]


class PrefetchNestedJoinRule(FIRRule):
    """An imperative nested-loops join becomes prefetch + local hash join (N1)."""

    name = "N1 prefetch nested join"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        if len(fold.nested_joins) != 1 or fold.bindings or fold.accumulators:
            return []
        nested = fold.nested_joins[0]
        columns = _join_condition_columns(fold, nested)
        if columns is None:
            return []
        outer_column, inner_column = columns
        inner_table = nested.inner_query.table
        if inner_table is None:
            parsed = _single_table(nested.inner_sql)
            if parsed is None:
                return []
            inner_table = parsed
        rt = context.runtime_parameter
        region = f"{inner_table}.{inner_column}"
        inner_body = NestedJoinRule._joined_body(nested)
        if inner_body is None:
            return []
        rewriter = codegen.SubscriptStyleRewriter([nested.inner_variable])
        body = codegen.rewrite_statements(inner_body, rewriter)
        outer_access = _column_access_source(
            fold.loop_variable, outer_column, fold
        )
        lines = [
            f"{rt}.prefetch_group({inner_table!r}, {inner_column!r}, {region!r})",
            f"for {fold.loop_variable} in {ast.unparse(fold.loop.iterable)}:",
            f"    for {nested.inner_variable} in "
            f"{rt}.lookup_group({outer_access}, {region!r}):",
        ]
        lines.extend(
            "        " + line
            for line in codegen.unparse_block(body).splitlines()
        )
        return [
            LoopRewrite(
                strategy="prefetch-join",
                source="\n".join(lines),
                description="nested-loops join performed locally after "
                "prefetching the inner relation (N1)",
                rule=self.name,
            )
        ]


class PrefetchGroupRule(FIRRule):
    """A parameterised selection loop becomes prefetch-all + local filter (N2+N1)."""

    name = "N2+N1 prefetch parameterised selection"

    def apply(self, fold: FoldInfo, context: RuleContext) -> list[LoopRewrite]:
        if fold.query.kind != "sql" or not fold.query_sql:
            return []
        if "?" not in fold.query_sql:
            return []
        parsed = _parse_point_lookup(fold.query_sql)
        if parsed is None:
            return []
        table, column = parsed
        key_source = self._key_source(fold)
        if key_source is None:
            return []
        rt = context.runtime_parameter
        region = f"{table}.{column}"
        body_source = codegen.unparse_block(fold.loop.loop_node.body, indent=4)
        lines = [
            f"{rt}.prefetch_group({table!r}, {column!r}, {region!r})",
            f"for {fold.loop_variable} in "
            f"{rt}.lookup_group({key_source}, {region!r}):",
            body_source,
        ]
        return [
            LoopRewrite(
                strategy="prefetch",
                source="\n".join(lines),
                description="parameterised selection replaced by a one-time "
                "prefetch of the whole relation plus a local keyed lookup "
                "(N2 followed by N1)",
                rule=self.name,
            )
        ]

    @staticmethod
    def _key_source(fold: FoldInfo) -> Optional[str]:
        iterable = fold.loop.iterable
        if not isinstance(iterable, ast.Call) or len(iterable.args) < 2:
            return None
        params = iterable.args[1]
        if isinstance(params, (ast.Tuple, ast.List)) and params.elts:
            return ast.unparse(params.elts[0])
        return ast.unparse(params)


#: The default rule set, in the order rules are attempted.
DEFAULT_RULES: tuple[FIRRule, ...] = (
    SqlTranslationRule(),
    AggregationRule(),
    PredicatePushRule(),
    PrefetchFilterRule(),
    JoinRewriteRule(),
    NestedJoinRule(),
    PrefetchRule(),
    PrefetchNestedJoinRule(),
    PrefetchGroupRule(),
)


# -- helpers ------------------------------------------------------------------


def _loop_query_params(fold: FoldInfo) -> list[str]:
    """Parameter-source snippets of the loop-header query call, if any."""
    iterable = fold.loop.iterable
    if not isinstance(iterable, ast.Call) or len(iterable.args) < 2:
        return []
    params = iterable.args[1]
    if isinstance(params, (ast.Tuple, ast.List)):
        return [ast.unparse(e) for e in params.elts]
    return [ast.unparse(params)]


def _query_call_source(rt: str, sql: str, params: list[str]) -> str:
    """Source text of an ``execute_query`` call with optional parameters."""
    if not params:
        return f"{rt}.execute_query({sql!r})"
    rendered = ", ".join(params)
    if len(params) == 1:
        rendered += ","
    return f"{rt}.execute_query({sql!r}, ({rendered}))"


def _common_guard(fold: FoldInfo) -> Optional[tuple[ast.expr, list]]:
    """The guard shared by every accumulator, when there is exactly one.

    Returns ``(guard, guarded_accumulators)`` or ``None`` when the loop has no
    accumulators, has bindings/nested joins, or the accumulators disagree on
    their guard.
    """
    if fold.bindings or fold.nested_joins or not fold.accumulators:
        return None
    guards = {ast.unparse(a.guard) if a.guard is not None else None
              for a in fold.accumulators}
    if len(guards) != 1:
        return None
    guard = fold.accumulators[0].guard
    if guard is None:
        return None
    return guard, list(fold.accumulators)


def _body_without_guard(fold: FoldInfo, guard: ast.expr) -> Optional[str]:
    """The loop body with the (single, top-level) guard ``if`` unwrapped."""
    guard_source = ast.unparse(guard)
    lines: list[str] = []
    for stmt in fold.loop.loop_node.body:
        if (
            isinstance(stmt, ast.If)
            and not stmt.orelse
            and ast.unparse(stmt.test) == guard_source
        ):
            lines.append(codegen.unparse_block(stmt.body, indent=4))
        else:
            lines.append(codegen.unparse_block([stmt], indent=4))
    if not lines:
        return None
    return "\n".join(lines)


def _equality_guard_key(
    guard: ast.expr, loop_variable: str
) -> Optional[tuple[str, str]]:
    """``(tuple column, outer value source)`` for ``col == outer`` guards."""
    if not isinstance(guard, ast.Compare) or len(guard.ops) != 1:
        return None
    if not isinstance(guard.ops[0], ast.Eq):
        return None
    left, right = guard.left, guard.comparators[0]
    left_col = codegen.guard_column(left, loop_variable)
    right_col = codegen.guard_column(right, loop_variable)
    if left_col and not right_col and not _mentions(right, loop_variable):
        return left_col, ast.unparse(right)
    if right_col and not left_col and not _mentions(left, loop_variable):
        return right_col, ast.unparse(left)
    return None


def _mentions(node: ast.expr, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def _is_loop_variable(node: ast.expr, loop_variable: str) -> bool:
    return isinstance(node, ast.Name) and node.id == loop_variable


def _is_constant_one(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value == 1


def _column_of_loop_tuple(node: ast.expr, loop_variable: str) -> Optional[str]:
    """The column name when ``node`` is ``o.col`` or ``o["col"]``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == loop_variable:
            return node.attr
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == loop_variable
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    return None


def _fresh_name(base: str, fold: FoldInfo) -> str:
    used = set()
    for node in ast.walk(fold.loop.loop_node):
        if isinstance(node, ast.Name):
            used.add(node.id)
    candidate = base
    counter = 0
    while candidate in used:
        counter += 1
        candidate = f"{base}{counter}"
    return candidate


def _join_condition_columns(
    fold: FoldInfo, nested: NestedJoinInfo
) -> Optional[tuple[str, str]]:
    """(outer column, inner column) of an equality join condition."""
    test = nested.join_condition
    if test is None or not isinstance(test, ast.Compare):
        return None
    if len(test.ops) != 1 or not isinstance(test.ops[0], ast.Eq):
        return None
    left = _column_of_loop_tuple(test.left, fold.loop_variable)
    right = _column_of_loop_tuple(test.comparators[0], nested.inner_variable)
    if left and right:
        return left, right
    left = _column_of_loop_tuple(test.left, nested.inner_variable)
    right = _column_of_loop_tuple(test.comparators[0], fold.loop_variable)
    if left and right:
        return right, left
    return None


def _join_condition_sql(
    fold: FoldInfo, nested: NestedJoinInfo
) -> Optional[str]:
    columns = _join_condition_columns(fold, nested)
    if columns is None:
        return None
    outer_column, inner_column = columns
    outer_table = _single_table(fold.query_sql)
    inner_table = nested.inner_query.table or _single_table(nested.inner_sql)
    if outer_table is None or inner_table is None:
        return None
    return f"{outer_table}.{outer_column} = {inner_table}.{inner_column}"


def _single_table(sql: str) -> Optional[str]:
    from repro.db import algebra
    from repro.db.sqlparser import SQLSyntaxError, parse_sql

    try:
        plan = parse_sql(sql)
    except SQLSyntaxError:
        return None
    scans = algebra.find_scans(plan)
    if len(scans) == 1:
        return scans[0].table
    return None


def _single_scan_alias(sql: str) -> Optional[str]:
    """The effective alias of the single scanned table of ``sql``, if any."""
    from repro.db import algebra
    from repro.db.sqlparser import SQLSyntaxError, parse_sql

    try:
        plan = parse_sql(sql)
    except SQLSyntaxError:
        return None
    scans = algebra.find_scans(plan)
    if len(scans) == 1:
        return scans[0].effective_alias
    return None


def _column_access_source(variable: str, column: str, fold: FoldInfo) -> str:
    """Source text accessing ``column`` of the loop variable.

    ORM entities use attribute style; SQL result rows use subscripts.  The
    loop-header query kind tells us which one the original program uses.
    """
    if fold.query.kind == "load_all":
        return f"{variable}.{column}"
    return f"{variable}[{column!r}]"
