"""Structured query tracing on the virtual clock.

One :class:`QueryTrace` is recorded per statement exchange (query, update,
commit, or pipeline flush).  The root span's duration is exactly the
virtual latency charged for the statement — the ``elapsed`` returned by
the connection's fault-wrapped measure path — and child spans partition it:
network round trips, server execution, admission-queue waits, WAL flushes,
injected faults, and retry backoffs each claim a contiguous slice, while
zero-duration *event* spans (parse/cache-hit, plan, route, per-operator
rows, MVCC conflicts) annotate the timeline without consuming it.  That
gives the accounting invariant tests rely on::

    sum(child.duration) == root.duration        (and children never overlap)

Server work that overlaps result transfer on the wire is *not* split into
overlapping spans; the execute span carries ``server_first``/``server_rest``
/``transfer_time`` attributes and its duration is the max-overlap total the
cost model actually charged, so the invariant holds with overlap accounted
inside one span rather than between spans.

The tracer is safe under the async client because connection measure
closures run synchronously between awaits — a plain current-trace stack
needs no locking.  When ``enabled`` is False every hook is a cheap
attribute check; when no tracer is configured the hooks are skipped
entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .metrics import MetricsRegistry


class Span:
    """One timed (or zero-duration event) slice of a query trace."""

    __slots__ = ("name", "offset", "duration", "attributes", "children")

    def __init__(
        self,
        name: str,
        offset: float = 0.0,
        duration: float = 0.0,
        attributes: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.offset = offset
        self.duration = duration
        self.attributes = attributes if attributes is not None else {}
        self.children: List[Span] = []

    @property
    def end(self) -> float:
        return self.offset + self.duration

    def child(self, name: str, duration: float = 0.0, **attributes: Any) -> "Span":
        """Attach an informational sub-span (does not affect accounting)."""
        span = Span(name, self.offset, duration, attributes or None)
        self.children.append(span)
        return span

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "offset": self.offset,
            "duration": self.duration,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, +{self.offset:.6f}, {self.duration:.6f}s)"


class QueryTrace:
    """All spans recorded for one statement exchange."""

    __slots__ = ("kind", "sql", "root", "sequence", "error", "_cursor")

    def __init__(self, kind: str, sql: Optional[str], sequence: int) -> None:
        self.kind = kind
        self.sql = sql
        self.root = Span(kind)
        self.sequence = sequence
        self.error: Optional[str] = None
        self._cursor = 0.0

    @property
    def duration(self) -> float:
        return self.root.duration

    @property
    def spans(self) -> List[Span]:
        return self.root.children

    def add_span(
        self, name: str, duration: float = 0.0, **attributes: Any
    ) -> Span:
        """Append a child span at the running cursor offset."""
        span = Span(name, self._cursor, duration, attributes or None)
        self._cursor += duration
        self.root.children.append(span)
        return span

    def find(self, name: str) -> Optional[Span]:
        for span in self.root.children:
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List[Span]:
        return [span for span in self.root.children if span.name == name]

    def check_accounting(self, tolerance: float = 1e-9) -> None:
        """Assert child spans partition the root without overlaps.

        Raises ``AssertionError`` describing the first violation; used by
        the span-accounting property tests and safe to call on any
        successfully finished trace.
        """
        budget = tolerance + abs(self.root.duration) * 1e-9
        total = 0.0
        previous_end = 0.0
        for span in self.root.children:
            if span.offset < previous_end - budget:
                raise AssertionError(
                    f"span {span.name!r} at +{span.offset} overlaps the "
                    f"previous span ending at +{previous_end} ({self.sql!r})"
                )
            if span.end > self.root.duration + budget:
                raise AssertionError(
                    f"span {span.name!r} ends at +{span.end}, past the root "
                    f"duration {self.root.duration} ({self.sql!r})"
                )
            previous_end = max(previous_end, span.end)
            total += span.duration
        if abs(total - self.root.duration) > budget:
            raise AssertionError(
                f"child spans sum to {total}, root charged "
                f"{self.root.duration} ({self.sql!r})"
            )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "sql": self.sql,
            "sequence": self.sequence,
            "duration": self.root.duration,
            "error": self.error,
            "spans": [span.as_dict() for span in self.root.children],
        }

    def render(self) -> str:
        """Human-readable one-trace report (CLI ``--trace`` output)."""
        header = f"{self.kind} ({self.root.duration:.6f}s)"
        if self.sql:
            header += f": {self.sql}"
        if self.error:
            header += f"  [error: {self.error}]"
        lines = [header]

        def emit(span: Span, depth: int) -> None:
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            lines.append(
                "  " * depth
                + f"- {span.name} +{span.offset:.6f}s {span.duration:.6f}s"
                + (f"  {attrs}" if attrs else "")
            )
            for child in span.children:
                emit(child, depth + 1)

        for span in self.root.children:
            emit(span, 1)
        return "\n".join(lines)


class Tracer:
    """Records per-statement traces; owns the slow-query log.

    ``start``/``finish`` bracket one statement exchange and are called by
    the connection's fault wrapper; ``add_span`` hooks inside the measure
    paths attach children to whichever trace is currently open (a stack,
    so a nested exchange — e.g. a commit inside ``run_transaction`` —
    traces separately from its neighbours).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        max_traces: int = 256,
        slow_query_threshold: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_traces <= 0:
            raise ValueError(f"max_traces must be positive, got {max_traces}")
        self.enabled = enabled
        self.slow_query_threshold = slow_query_threshold
        self.traces: Deque[QueryTrace] = deque(maxlen=max_traces)
        self.slow_queries: Deque[QueryTrace] = deque(maxlen=64)
        self.traces_recorded = 0
        self.slow_queries_recorded = 0
        self.errors_recorded = 0
        self._stack: List[QueryTrace] = []
        self._sequence = 0
        self._last_prepare: Optional[tuple] = None
        self._latency: Optional[dict] = None
        if registry is not None:
            self.bind_registry(registry)

    # -- configuration -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Mirror trace outcomes into first-class metrics instruments."""
        self._traces_counter = registry.counter("tracer.traces_recorded")
        self._slow_counter = registry.counter("tracer.slow_queries")
        self._latency = {
            kind: registry.histogram(f"tracer.latency.{kind}")
            for kind in ("query", "update", "commit", "pipeline")
        }
        registry.register_view(
            "tracer", lambda: self.stats_dict()
        )

    # -- the statement lifecycle ------------------------------------------

    @property
    def active(self) -> bool:
        """True while a trace is open (hooks should record spans)."""
        return bool(self._stack)

    @property
    def current(self) -> Optional[QueryTrace]:
        return self._stack[-1] if self._stack else None

    def start(self, kind: str, sql: Optional[str] = None) -> QueryTrace:
        self._sequence += 1
        trace = QueryTrace(kind, sql, self._sequence)
        self._stack.append(trace)
        # A prepare observed immediately before the exchange belongs to it.
        if self._last_prepare is not None:
            prepared_sql, cache_hit = self._last_prepare
            self._last_prepare = None
            trace.add_span("parse", 0.0, sql=prepared_sql, cache_hit=cache_hit)
            if trace.sql is None:
                trace.sql = prepared_sql
        return trace

    def set_sql(self, sql: str) -> None:
        trace = self.current
        if trace is not None and trace.sql is None:
            trace.sql = sql

    def add_span(self, name: str, duration: float = 0.0, **attributes: Any):
        """Record a span on the open trace; no-op outside an exchange."""
        trace = self.current
        if trace is None:
            return None
        return trace.add_span(name, duration, **attributes)

    def finish(self, trace: QueryTrace, elapsed: float) -> None:
        trace.root.duration = elapsed
        self._pop(trace)
        self.traces.append(trace)
        self.traces_recorded += 1
        threshold = self.slow_query_threshold
        if threshold is not None and elapsed >= threshold:
            self.slow_queries.append(trace)
            self.slow_queries_recorded += 1
            if self._latency is not None:
                self._slow_counter.inc()
        if self._latency is not None:
            self._traces_counter.inc()
            histogram = self._latency.get(trace.kind)
            if histogram is not None:
                histogram.observe(elapsed)

    def finish_error(
        self, trace: QueryTrace, error: BaseException, elapsed: float = 0.0
    ) -> None:
        """Close a trace whose exchange raised; accounting is best-effort."""
        trace.error = f"{type(error).__name__}: {error}"
        trace.root.duration = elapsed
        self._pop(trace)
        self.traces.append(trace)
        self.traces_recorded += 1
        self.errors_recorded += 1
        if self._latency is not None:
            self._traces_counter.inc()

    def _pop(self, trace: QueryTrace) -> None:
        if self._stack and self._stack[-1] is trace:
            self._stack.pop()
        elif trace in self._stack:  # defensive: unwound out of order
            self._stack.remove(trace)

    # -- out-of-band notes -------------------------------------------------

    def note_prepare(self, sql: str, cache_hit: bool) -> None:
        """Called by ``Database.prepare``.

        A prepare issued *inside* an open exchange (server-side parse of a
        raw-SQL update, a statement queued mid-pipeline) belongs to the
        current trace and is attached immediately; one issued before the
        exchange starts (the client-side prepare of a query) is held and
        attached by the next ``start``.
        """
        trace = self.current
        if trace is not None:
            trace.add_span("parse", 0.0, sql=sql, cache_hit=cache_hit)
            if trace.sql is None:
                trace.sql = sql
        else:
            self._last_prepare = (sql, cache_hit)

    def annotate_last(self, **attributes: Any) -> None:
        """Attach attributes to the most recently finished trace's root."""
        if self.traces:
            self.traces[-1].root.attributes.update(attributes)

    # -- reporting ---------------------------------------------------------

    def stats_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "traces_recorded": self.traces_recorded,
            "traces_retained": len(self.traces),
            "slow_queries": self.slow_queries_recorded,
            "slow_query_threshold": self.slow_query_threshold,
            "errors": self.errors_recorded,
        }

    def render(self, limit: int = 10) -> str:
        """Render the most recent ``limit`` traces, oldest first."""
        recent = list(self.traces)[-limit:]
        if not recent:
            return "(no traces recorded)"
        return "\n\n".join(trace.render() for trace in recent)


def attach_parallel_scatter(span: Span, parallel: dict) -> Span:
    """Attach a parallel-scatter breakdown under a route span.

    ``parallel`` is the router's scatter record (mode, workers, per-shard
    wall times, pickle byte counts in process mode).  The breakdown rides
    as *informational* sub-spans (:meth:`Span.child`), so
    :meth:`QueryTrace.check_accounting`'s exact partition of the root —
    which only inspects the root's direct children — is untouched.  The
    ``parallel`` child's duration is the **max** per-shard wall time, not
    the sum: shards ran concurrently, and the slowest one bounds the wall
    clock the scatter actually occupied.  Each shard's own wall time
    attaches as a ``shard-<i>`` grandchild.
    """
    attributes: dict = {
        "mode": parallel.get("mode"),
        "workers": parallel.get("workers"),
        "shards": parallel.get("shards"),
    }
    pickle_bytes = parallel.get("pickle_bytes")
    if pickle_bytes is not None:
        attributes["pickle_bytes"] = dict(pickle_bytes)
    child = span.child(
        "parallel", parallel.get("elapsed", 0.0), **attributes
    )
    for index, seconds in enumerate(parallel.get("shard_seconds", ())):
        child.child(f"shard-{index}", seconds)
    return child


__all__ = ["QueryTrace", "Span", "Tracer", "attach_parallel_scatter"]
