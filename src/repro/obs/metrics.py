"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

The :class:`MetricsRegistry` is the single registration point for runtime
metrics.  Subsystems either own first-class instruments (counters, gauges,
histograms created through the registry) or expose their legacy stat dicts
as *views* — zero-cost callbacks evaluated only when a snapshot is taken —
so ``Engine.stats()`` remains a compatibility surface while
``Engine.metrics()`` exports everything through one structure.

Histograms use fixed bucket upper bounds (Prometheus-style ``le`` buckets)
for export.  Percentiles over bucketed data are only as precise as the
bucket boundaries, so a histogram may additionally keep its raw samples
(``track_values=True``) to answer exact nearest-rank percentiles — the
:class:`~repro.workloads.loadgen.LatencySummary` path uses this so the
load generator's reported p50/p95/p99 stay bit-identical to the previous
sorted-samples implementation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Tuple

#: Default latency buckets (virtual seconds): geometric 1-2.5-5 decades
#: spanning microseconds to minutes, the range the simulated networks and
#: admission queues actually produce.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value: set directly or backed by a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Fixed-bucket histogram with optional exact-percentile sample store.

    ``observe`` places each value in the first bucket whose upper bound is
    >= the value (everything above the last bound lands in the implicit
    ``+inf`` bucket).  ``percentile`` answers nearest-rank quantiles: exact
    when ``track_values`` is set, otherwise the upper bound of the bucket
    containing the nearest-rank sample (the max for the ``+inf`` bucket).

    Empty histograms return ``None`` from ``percentile``/``max``/``mean``
    rather than raising; a single sample is every percentile.
    """

    def __init__(
        self,
        buckets: Optional[Sequence[float]] = None,
        *,
        track_values: bool = False,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf
        self.count = 0
        self.sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._values: Optional[list] = [] if track_values else None
        self._sorted = True

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], buckets: Optional[Sequence[float]] = None
    ) -> "Histogram":
        histogram = cls(buckets, track_values=True)
        for sample in samples:
            histogram.observe(sample)
        return histogram

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        index = self._bucket_index(value)
        self.bucket_counts[index] += 1
        if self._values is not None:
            self._values.append(value)
            self._sorted = False

    def _bucket_index(self, value: float) -> int:
        # Binary search for the first bound >= value.
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if self.bounds[mid] < value:
                low = mid + 1
            else:
                high = mid
        return low

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def percentile(self, quantile: float) -> Optional[float]:
        """Nearest-rank percentile; ``None`` for an empty population."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        if self.count == 0:
            return None
        # Nearest-rank: smallest sample with at least ``quantile`` of the
        # population at or below it.
        position = max(1, math.ceil(quantile * self.count))
        if self._values is not None:
            if not self._sorted:
                self._values.sort()
                self._sorted = True
            return self._values[min(position, self.count) - 1]
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= position:
                if index == len(self.bounds):
                    return self._max
                return self.bounds[index]
        return self._max  # unreachable; defensive

    def as_dict(self) -> dict:
        buckets = {}
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            if cumulative:  # omit the empty low tail for readable output
                buckets[f"le_{bound:g}"] = cumulative
        buckets["le_inf"] = self.count
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create instrument store plus callback-backed subsystem views.

    Instruments registered twice under one name must agree on kind; a
    name collision across kinds is a programming error and raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._views: Dict[str, Callable[[], dict]] = {}

    def counter(self, name: str) -> Counter:
        self._check_unique(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        self._check_unique(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name, fn))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        *,
        track_values: bool = False,
    ) -> Histogram:
        self._check_unique(name, self._histograms)
        return self._histograms.setdefault(
            name, Histogram(buckets, track_values=track_values)
        )

    def register_view(self, name: str, fn: Callable[[], dict]) -> None:
        """Expose a legacy stats dict under ``name``, evaluated lazily."""
        self._views[name] = fn

    @property
    def views(self) -> Dict[str, Callable[[], dict]]:
        """The registered view callbacks, keyed by name."""
        return self._views

    def _check_unique(self, name: str, owner: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise ValueError(f"metric {name!r} already registered")

    def summary(self) -> dict:
        return {
            "counters": len(self._counters),
            "gauges": len(self._gauges),
            "histograms": len(self._histograms),
            "views": len(self._views),
        }

    def as_dict(self) -> dict:
        """Full snapshot: instruments plus evaluated subsystem views."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
            "views": {name: fn() for name, fn in sorted(self._views.items())},
        }


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
