"""Observability: structured query traces, metrics, and EXPLAIN.

``repro.obs`` is the engine's introspection layer:

- :class:`~repro.obs.trace.Tracer` records one
  :class:`~repro.obs.trace.QueryTrace` per statement exchange, with child
  spans on the virtual clock for network, server execution, admission
  waits, WAL flushes, faults, and retries (enabled via
  ``EngineBuilder.tracing()``).
- :class:`~repro.obs.metrics.MetricsRegistry` is the single registration
  point for counters, gauges, and fixed-bucket histograms, exported by
  ``Engine.metrics()``.
- :func:`~repro.obs.explain.explain_statement` backs
  ``Database.explain`` / ``explain_analyze``.
"""

from repro.obs.explain import ExplainEntry, ExplainResult, explain_statement
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import QueryTrace, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "ExplainEntry",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "Tracer",
    "explain_statement",
]
