"""EXPLAIN / EXPLAIN ANALYZE plan rendering.

``Database.explain`` delegates here: the prepared statement's execution
template is walked into one line per operator carrying the optimizer's
cardinality estimate, the router's classification (routed / shard-local /
scatter / fallback, with shard ids when they are known before execution),
and the execution tier the plan is predicted to run on.

``EXPLAIN ANALYZE`` additionally executes the statement and annotates every
operator with the row count it *actually* produced and the virtual server
time modeled for that work — estimates and actuals side by side, which is
the observation feeding :meth:`repro.db.statistics.StatisticsCatalog.observe`.
Per-operator actuals re-execute each subtree (the engine is deterministic,
so subtree results equal what the full run saw); the root's actual row
count is taken from the statement's own result, so it matches the executed
result size exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.db import algebra


def describe_node(node: algebra.PlanNode) -> tuple:
    """One-line (operator, detail) label for a plan node, non-recursive."""
    if isinstance(node, algebra.Scan):
        detail = node.table
        if node.alias and node.alias != node.table:
            detail += f" AS {node.alias}"
        return "Scan", detail
    if isinstance(node, algebra.Select):
        return "Select", node.predicate.to_sql()
    if isinstance(node, algebra.Project):
        return "Project", ", ".join(node.output_names)
    if isinstance(node, algebra.Join):
        condition = (
            node.condition.to_sql() if node.condition is not None else "TRUE"
        )
        return "Join", condition
    if isinstance(node, algebra.Aggregate):
        keys = ", ".join(c.qualified_name for c in node.group_by)
        aggs = ", ".join(repr(spec) for spec in node.aggregates)
        return "Aggregate", f"by=[{keys}] aggs=[{aggs}]"
    if isinstance(node, algebra.Sort):
        return "Sort", ", ".join(repr(key) for key in node.keys)
    if isinstance(node, algebra.Limit):
        return "Limit", str(node.count)
    return type(node).__name__, ""


@dataclass
class ExplainEntry:
    """One operator line of an EXPLAIN report."""

    depth: int
    operator: str
    detail: str
    estimated_rows: float
    estimated_time: float
    actual_rows: Optional[int] = None
    actual_time: Optional[float] = None

    def as_dict(self) -> dict:
        out: dict = {
            "depth": self.depth,
            "operator": self.operator,
            "detail": self.detail,
            "estimated_rows": self.estimated_rows,
            "estimated_time": self.estimated_time,
        }
        if self.actual_rows is not None:
            out["actual_rows"] = self.actual_rows
            out["actual_time"] = self.actual_time
        return out


@dataclass
class ExplainResult:
    """A rendered plan: operator lines plus routing class and tier."""

    sql: str
    entries: List[ExplainEntry]
    routing: Optional[dict]
    tier: str
    analyzed: bool
    #: EXPLAIN ANALYZE only: how the execution actually ran — the serving
    #: tier, the concrete path ("codegen" / "kernel" / row tier /
    #: "point-lookup"), and the vectorized fallback reason, if any.
    execution: Optional[dict] = None

    @property
    def root(self) -> ExplainEntry:
        return self.entries[0]

    def as_dict(self) -> dict:
        out = {
            "sql": self.sql,
            "routing": self.routing,
            "tier": self.tier,
            "analyzed": self.analyzed,
            "plan": [entry.as_dict() for entry in self.entries],
        }
        if self.execution is not None:
            out["execution"] = self.execution
        return out

    def render(self) -> str:
        verb = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        lines = [f"{verb} {self.sql}"]
        if self.routing is None:
            lines.append("routing: none (no shard router)")
        else:
            kind = self.routing["kind"]
            shards = self.routing.get("shards")
            if shards is None:
                lines.append(f"routing: {kind}")
            else:
                lines.append(
                    f"routing: {kind} over shard(s) {list(shards)}"
                )
        lines.append(f"tier: {self.tier}")
        if self.execution is not None:
            line = f"executed: {self.execution['tier']}"
            path = self.execution.get("path")
            if path is not None and path != self.execution["tier"]:
                line += f" via {path}"
            reason = self.execution.get("fallback_reason")
            if reason is not None:
                line += f" (fallback: {reason})"
            lines.append(line)
        label_width = max(
            len("  " * entry.depth + f"{entry.operator}({entry.detail})")
            for entry in self.entries
        )
        for entry in self.entries:
            label = "  " * entry.depth + f"{entry.operator}({entry.detail})"
            line = f"{label:<{label_width}}  est_rows={entry.estimated_rows:.1f}"
            line += f" est_time={entry.estimated_time:.6f}s"
            if entry.actual_rows is not None:
                line += (
                    f"  act_rows={entry.actual_rows}"
                    f" act_time={entry.actual_time:.6f}s"
                )
            lines.append(line)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _predict_tier(database: Any, statement: Any, plan: algebra.PlanNode) -> str:
    """The tier the statement is expected to execute on."""
    if (
        statement.point_lookup is not None
        and database.compiled_execution
        and database._mvcc is None
    ):
        return "point-lookup"
    executor = database._executor
    if executor._vectorized is not None:
        return (
            "vectorized"
            if executor._vectorized._op(plan) is not None
            else "compiled"
        )
    return executor.mode


def explain_statement(
    database: Any,
    sql: str,
    params: Sequence[Any] = (),
    *,
    analyze: bool = False,
) -> ExplainResult:
    """Build the EXPLAIN (ANALYZE) report for ``sql`` against ``database``."""
    statement = database.prepare(sql)
    if not statement.is_query:
        raise ValueError(
            f"EXPLAIN supports SELECT statements only, got: {sql!r}"
        )
    params = tuple(params)
    if statement.parameter_count:
        statement._bind_slots(params)
    plan = statement._exec_plan
    statistics = database.statistics
    per_row_cost = getattr(database, "server_row_cost", 2e-6)

    router = database._router
    routing = router.classify(plan) if router is not None else None
    tier = _predict_tier(database, statement, plan)

    entries: List[ExplainEntry] = []
    nodes: List[algebra.PlanNode] = []

    def estimated_input(node: algebra.PlanNode) -> int:
        children = node.children()
        if not children:
            return statistics.estimate_cardinality(node)
        return sum(statistics.estimate_cardinality(child) for child in children)

    def visit(node: algebra.PlanNode, depth: int) -> None:
        operator, detail = describe_node(node)
        output = statistics.estimate_cardinality(node)
        entries.append(
            ExplainEntry(
                depth=depth,
                operator=operator,
                detail=detail,
                estimated_rows=output,
                estimated_time=per_row_cost * (estimated_input(node) + output),
            )
        )
        nodes.append(node)
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)

    result_trace = None
    execution = None
    if analyze:
        tracer = database._tracer
        tracing = tracer is not None and tracer.enabled
        if tracing:
            result_trace = tracer.start("explain_analyze", sql)
        result = statement.execute(params)
        execution = {
            "tier": statement.last_tier,
            "path": statement.last_execution_path,
            "fallback_reason": statement.last_fallback_reason,
        }
        executor = (
            database._executor
            if database._mvcc is None
            else database._mvcc.executor_for(database._txn)
        )
        # Per-node actuals: the root comes straight from the executed
        # result (exact by construction); inner operators re-execute their
        # subtree, which is deterministic and therefore equal to what the
        # full run produced at that node.
        actuals: dict = {}
        for entry, node in zip(entries, nodes):
            if entry is entries[0]:
                actual = len(result.rows)
            else:
                key = id(node)
                if key not in actuals:
                    actuals[key] = len(executor.execute(node))
                actual = actuals[key]
            entry.actual_rows = actual
        for entry, node in zip(entries, nodes):
            children = node.children()
            if children:
                actual_input = sum(
                    entries[nodes.index(child)].actual_rows
                    for child in children
                )
            else:
                table = database.tables.get(getattr(node, "table", None))
                actual_input = len(table.rows) if table is not None else 0
            entry.actual_time = per_row_cost * (
                actual_input + entry.actual_rows
            )
        total_time = sum(entry.actual_time for entry in entries)
        if tracing:
            for entry in entries:
                result_trace.add_span(
                    f"operator:{entry.operator}",
                    entry.actual_time,
                    depth=entry.depth,
                    detail=entry.detail,
                    rows=entry.actual_rows,
                    estimated_rows=entry.estimated_rows,
                )
            tracer.finish(result_trace, total_time)
        # Feed the observation back to the statistics catalog so the drift
        # counters see EXPLAIN ANALYZE runs too.
        statement.observe_actual(len(result.rows))

    return ExplainResult(
        sql=sql,
        entries=entries,
        routing=routing,
        tier=tier,
        analyzed=analyze,
        execution=execution,
    )


__all__ = ["ExplainEntry", "ExplainResult", "describe_node", "explain_statement"]
