"""A Wilos-like schema and data generator for Experiment 4 (Figures 14-16).

Wilos is an open-source process-orchestration application built on Hibernate
and Spring; the paper identifies 32 code fragments in it where cost-based
rewriting applies, grouped into six patterns A-F.  The application itself
cannot be shipped here, so this module provides a synthetic schema with the
same flavour (projects, activities, task descriptors, participants, roles,
iterations, process breakdown elements) and a deterministic data generator
following the paper's setup: many-to-one mapping ratio 10:1, predicate
selectivity 20%, largest relation scaled to 1 million rows (configurable;
benchmarks default to a smaller scale and report the analytical numbers at
full scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appsim.runtime import AppRuntime
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, ForeignKey
from repro.net.network import FAST_LOCAL, NetworkConditions
from repro.workloads.generator import DeterministicGenerator

#: Many-to-one mapping ratio used by the paper's data generator.
MAPPING_RATIO = 10

#: Selectivity of synthetic predicates (20% in the paper).
PREDICATE_SELECTIVITY = 0.2

#: Scale used by the paper (largest relation row count).
PAPER_SCALE = 1_000_000

#: Default scale for locally-run experiments (largest relation row count).
DEFAULT_SCALE = 20_000


@dataclass(frozen=True)
class WilosScale:
    """Row counts of every table, derived from the largest-relation scale."""

    concrete_task: int
    activity: int
    participant: int
    role: int
    project: int
    iteration: int
    breakdown_element: int
    descriptor: int
    process: int

    @classmethod
    def from_largest(cls, scale: int) -> "WilosScale":
        scale = max(scale, 100)
        return cls(
            concrete_task=scale,
            activity=max(scale // MAPPING_RATIO, 10),
            participant=max(scale // MAPPING_RATIO, 10),
            role=max(scale // (MAPPING_RATIO**2), 5),
            project=max(scale // (MAPPING_RATIO**2), 5),
            iteration=max(scale // (2 * MAPPING_RATIO), 10),
            breakdown_element=max(scale // MAPPING_RATIO, 10),
            descriptor=max(scale // MAPPING_RATIO, 10),
            process=max(scale // (MAPPING_RATIO**2), 5),
        )


def build_wilos_database(
    scale: int = DEFAULT_SCALE, seed: int = 11
) -> Database:
    """Create and populate the Wilos-like database at the given scale."""
    sizes = WilosScale.from_largest(scale)
    database = Database()
    _create_tables(database)
    generator = DeterministicGenerator(seed)

    database.insert(
        "role",
        (
            {
                "role_id": i,
                "name": f"role-{i}",
                "category": generator.choice(["dev", "test", "manage"]),
            }
            for i in range(1, sizes.role + 1)
        ),
    )
    database.insert(
        "project",
        (
            {
                "project_id": i,
                "name": f"project-{i}",
                "is_finished": int(generator.boolean(PREDICATE_SELECTIVITY)),
                "lead_id": generator.next_int(1, sizes.participant),
            }
            for i in range(1, sizes.project + 1)
        ),
    )
    database.insert(
        "process",
        (
            {"process_id": i, "name": f"process-{i}"}
            for i in range(1, sizes.process + 1)
        ),
    )
    database.insert(
        "participant",
        (
            {
                "participant_id": i,
                "name": generator.string("member", 20),
                "role_id": generator.next_int(1, sizes.role),
            }
            for i in range(1, sizes.participant + 1)
        ),
    )
    database.insert(
        "activity",
        (
            {
                "activity_id": i,
                "name": f"activity-{i}",
                "project_id": generator.next_int(1, sizes.project),
                "state": generator.choice(["created", "started", "finished"]),
                "visited": 0,
            }
            for i in range(1, sizes.activity + 1)
        ),
    )
    database.insert(
        "iteration",
        (
            {
                "iteration_id": i,
                "project_id": generator.next_int(1, sizes.project),
                "is_finished": int(generator.boolean(PREDICATE_SELECTIVITY)),
                "points": generator.next_int(1, 40),
            }
            for i in range(1, sizes.iteration + 1)
        ),
    )
    database.insert(
        "concrete_task",
        (
            {
                "task_id": i,
                "name": generator.string("task", 24),
                "activity_id": generator.next_int(1, sizes.activity),
                "participant_id": generator.next_int(1, sizes.participant),
                "state": generator.choice(
                    ["created", "ready", "started", "finished"]
                ),
                "points": generator.next_int(1, 20),
                "duration": round(generator.next_float(0.5, 40.0), 2),
            }
            for i in range(1, sizes.concrete_task + 1)
        ),
    )
    database.insert(
        "breakdown_element",
        _breakdown_rows(sizes.breakdown_element, generator),
    )
    database.insert(
        "descriptor",
        (
            {
                "descriptor_id": i,
                "process_id": generator.next_int(1, sizes.process),
                "name": generator.string("descriptor", 24),
                "state": generator.choice(["draft", "active", "done"]),
                "points": generator.next_int(1, 30),
            }
            for i in range(1, sizes.descriptor + 1)
        ),
    )
    database.analyze()
    return database


def build_wilos_runtime(
    scale: int = DEFAULT_SCALE,
    network: NetworkConditions = FAST_LOCAL,
    seed: int = 11,
) -> AppRuntime:
    """A ready-to-run runtime over the Wilos-like database."""
    database = build_wilos_database(scale, seed)
    return AppRuntime(database=database, network=network)


# -- internals ---------------------------------------------------------------


def _create_tables(database: Database) -> None:
    database.create_table(
        "role",
        [
            Column("role_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=24),
            Column("category", ColumnType.STRING, width=12),
        ],
        primary_key="role_id",
    )
    database.create_table(
        "project",
        [
            Column("project_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=24),
            Column("is_finished", ColumnType.INT),
            Column("lead_id", ColumnType.INT),
        ],
        primary_key="project_id",
    )
    database.create_table(
        "process",
        [
            Column("process_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=24),
        ],
        primary_key="process_id",
    )
    database.create_table(
        "participant",
        [
            Column("participant_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=24),
            Column("role_id", ColumnType.INT),
        ],
        primary_key="participant_id",
        foreign_keys=[ForeignKey("role_id", "role", "role_id")],
    )
    database.create_table(
        "activity",
        [
            Column("activity_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=24),
            Column("project_id", ColumnType.INT),
            Column("state", ColumnType.STRING, width=12),
            Column("visited", ColumnType.INT),
        ],
        primary_key="activity_id",
        foreign_keys=[ForeignKey("project_id", "project", "project_id")],
    )
    database.create_table(
        "iteration",
        [
            Column("iteration_id", ColumnType.INT),
            Column("project_id", ColumnType.INT),
            Column("is_finished", ColumnType.INT),
            Column("points", ColumnType.INT),
        ],
        primary_key="iteration_id",
        foreign_keys=[ForeignKey("project_id", "project", "project_id")],
    )
    database.create_table(
        "concrete_task",
        [
            Column("task_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=28),
            Column("activity_id", ColumnType.INT),
            Column("participant_id", ColumnType.INT),
            Column("state", ColumnType.STRING, width=12),
            Column("points", ColumnType.INT),
            Column("duration", ColumnType.FLOAT),
        ],
        primary_key="task_id",
        foreign_keys=[
            ForeignKey("activity_id", "activity", "activity_id"),
            ForeignKey("participant_id", "participant", "participant_id"),
        ],
    )
    database.create_table(
        "breakdown_element",
        [
            Column("element_id", ColumnType.INT),
            Column("parent_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=24),
            Column("kind", ColumnType.STRING, width=12),
        ],
        primary_key="element_id",
    )
    database.create_table(
        "descriptor",
        [
            Column("descriptor_id", ColumnType.INT),
            Column("process_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=28),
            Column("state", ColumnType.STRING, width=12),
            Column("points", ColumnType.INT),
        ],
        primary_key="descriptor_id",
        foreign_keys=[ForeignKey("process_id", "process", "process_id")],
    )


def _breakdown_rows(count: int, generator: DeterministicGenerator):
    """A shallow forest: elements 1..count/10 are roots, others have parents.

    The tree is at most a few levels deep so the recursive pattern-E workload
    terminates quickly while still exercising repeated filtered queries.
    """
    roots = max(count // MAPPING_RATIO, 1)
    for i in range(1, count + 1):
        if i <= roots:
            parent = 0
        else:
            parent = generator.next_int(1, min(i - 1, roots * 2))
        yield {
            "element_id": i,
            "parent_id": parent,
            "name": f"element-{i}",
            "kind": generator.choice(["phase", "iteration", "activity"]),
        }
