"""Workloads: schemas, synthetic data generators, and the programs under study.

* :mod:`repro.workloads.tpcds` — the orders/customer schema with TPC-DS row
  widths used in Experiments 1-3, plus a deterministic data generator.
* :mod:`repro.workloads.programs` — the P0/P1/P2 program variants of the
  motivating example (Figure 3) as runnable callables and as Python source
  for the optimizer.
* :mod:`repro.workloads.wilos` — a Wilos-like schema and data generator for
  Experiment 4 (Figures 14-16).
* :mod:`repro.workloads.wilos_programs` — the six cost-based-choice patterns
  A-F with original / heuristic / SQL / prefetch variants.
* :mod:`repro.workloads.generator` — shared deterministic value generators.
* :mod:`repro.workloads.loadgen` — an open-loop (Poisson-arrival) load
  generator with latency-percentile reporting on the virtual clock.
"""

from repro.workloads.generator import DeterministicGenerator
from repro.workloads.loadgen import (
    LatencySummary,
    LoadReport,
    OpenLoopLoadGenerator,
)

__all__ = [
    "DeterministicGenerator",
    "LatencySummary",
    "LoadReport",
    "OpenLoopLoadGenerator",
]
