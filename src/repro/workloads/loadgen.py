"""Open-loop load generation on the virtual clock.

A closed-loop client (issue, wait, issue) can never expose queueing: its
arrival rate falls as latency rises.  The :class:`OpenLoopLoadGenerator`
issues requests at **Poisson arrival times that do not depend on
completions** — arrivals keep coming while earlier requests are still in
flight — which is what makes the admission queue's knee visible: below the
server's capacity latencies sit at the service time, above it queue waits
grow without bound.

Mechanics
---------

Arrivals advance the shared :class:`~repro.net.clock.VirtualClock` to each
request's arrival instant (`advance_to`, monotone); each request's own
virtual latency — network, server, and any admission-queue wait — is
*measured* through the connection's fault-wrapped ``_measure_*`` paths
without advancing the clock, exactly like the async overlap path, so
concurrent in-flight requests cost max-latency rather than sum.  After the
last completion the clock advances to the makespan, giving an honest
throughput (operations / makespan).

The mix is configurable: ``read_fraction`` of operations run ``read_sql``;
the rest run ``write_sql``, either autocommit or (``write_transaction=True``)
as a BEGIN/UPDATE/COMMIT transaction whose MVCC first-committer-wins
conflicts are tolerated and counted rather than crashing the run.
Latencies are reported as p50/p95/p99 (nearest-rank) overall and split by
operation class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from repro.db.mvcc import SerializationError
from repro.net.connection import SimulatedConnection
from repro.net.faults import AmbiguousCommitError, FaultError
from repro.obs.metrics import Histogram

#: statement parameters: a fixed tuple, or a callable drawing them per-op.
ParamSource = Union[Sequence[Any], Callable[[random.Random], Sequence[Any]]]


@dataclass
class LatencySummary:
    """Percentile summary of one latency population (virtual seconds).

    Percentiles are nearest-rank over the exact samples, computed by the
    shared :class:`repro.obs.metrics.Histogram` (``track_values=True``), so
    they match the traced latency histograms bit for bit.  An empty
    population has no percentiles: ``mean``/``p50``/``p95``/``p99``/``max``
    are ``None`` rather than a fake 0.0; a single sample is every
    percentile.
    """

    count: int = 0
    mean: Optional[float] = None
    p50: Optional[float] = None
    p95: Optional[float] = None
    p99: Optional[float] = None
    max: Optional[float] = None

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        return cls.from_histogram(Histogram.from_samples(samples))

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "LatencySummary":
        if histogram.count == 0:
            return cls()
        return cls(
            count=histogram.count,
            mean=histogram.mean,
            p50=histogram.percentile(0.50),
            p95=histogram.percentile(0.95),
            p99=histogram.percentile(0.99),
            max=histogram.max,
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass
class LoadReport:
    """Outcome of one open-loop run."""

    operations: int = 0
    reads: int = 0
    writes: int = 0
    #: MVCC first-committer-wins losses (transactional writes only).
    conflicts: int = 0
    #: requests rejected by the server (admission-queue timeouts, faults).
    rejected: int = 0
    #: virtual makespan: first arrival to last completion.
    duration: float = 0.0
    #: completed operations per virtual second.
    throughput: float = 0.0
    latency: LatencySummary = field(default_factory=LatencySummary)
    read_latency: LatencySummary = field(default_factory=LatencySummary)
    write_latency: LatencySummary = field(default_factory=LatencySummary)

    def as_dict(self) -> dict:
        return {
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "conflicts": self.conflicts,
            "rejected": self.rejected,
            "duration": self.duration,
            "throughput": self.throughput,
            "latency": self.latency.as_dict(),
            "read_latency": self.read_latency.as_dict(),
            "write_latency": self.write_latency.as_dict(),
        }


class OpenLoopLoadGenerator:
    """Drive one connection with Poisson arrivals at a fixed offered rate.

    ``rate`` is the offered load in operations per virtual second —
    independent of how fast the server answers, which is the defining
    property of an open loop.  ``read_fraction`` of operations execute
    ``read_sql`` (prepared once); the rest execute ``write_sql``, wrapped
    in a transaction when ``write_transaction`` is set so MVCC conflict
    handling is exercised.  Parameters may be fixed tuples or callables
    receiving the run's seeded :class:`random.Random`.
    """

    def __init__(
        self,
        connection: SimulatedConnection,
        *,
        rate: float,
        operations: int,
        read_sql: str,
        read_params: ParamSource = (),
        write_sql: Optional[str] = None,
        write_params: ParamSource = (),
        read_fraction: float = 1.0,
        seed: int = 0,
        write_transaction: bool = False,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"offered rate must be positive, got {rate}")
        if operations < 0:
            raise ValueError(f"operations must be >= 0, got {operations}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        self.connection = connection
        self.rate = rate
        self.operations = operations
        self.read_sql = read_sql
        self.read_params = read_params
        self.write_sql = write_sql
        self.write_params = write_params
        self.read_fraction = read_fraction
        self.seed = seed
        self.write_transaction = write_transaction

    def run(self) -> LoadReport:
        """Execute the run; returns the throughput/latency report."""
        connection = self.connection
        clock = connection.clock
        rng = random.Random(self.seed)
        read_statement = connection.prepare(self.read_sql)
        write_statement = (
            connection.prepare(self.write_sql)
            if self.write_sql is not None
            else None
        )
        report = LoadReport()
        latencies = Histogram(track_values=True)
        read_latencies = Histogram(track_values=True)
        write_latencies = Histogram(track_values=True)
        start = clock.now
        arrival = start
        makespan = start
        for _ in range(self.operations):
            arrival += rng.expovariate(self.rate)
            clock.advance_to(arrival)
            is_read = write_statement is None or (
                rng.random() < self.read_fraction
            )
            try:
                if is_read:
                    elapsed = self._run_read(read_statement, rng)
                    report.reads += 1
                    read_latencies.observe(elapsed)
                elif self.write_transaction:
                    elapsed, conflicted = self._run_write_transaction(
                        write_statement, rng
                    )
                    report.writes += 1
                    if conflicted:
                        report.conflicts += 1
                    write_latencies.observe(elapsed)
                else:
                    elapsed = self._run_write(write_statement, rng)
                    report.writes += 1
                    write_latencies.observe(elapsed)
            except (FaultError, AmbiguousCommitError) as exc:
                # Rejected by the server (admission-queue timeout) or a
                # terminal injected fault: the exchange still burned
                # virtual time, but its latency does not enter the
                # completed-operation percentiles.
                report.rejected += 1
                makespan = max(makespan, arrival + exc.virtual_elapsed)
                continue
            report.operations += 1
            latencies.observe(elapsed)
            makespan = max(makespan, arrival + elapsed)
        clock.advance_to(makespan)
        report.duration = makespan - start
        if report.duration > 0:
            report.throughput = report.operations / report.duration
        report.latency = LatencySummary.from_histogram(latencies)
        report.read_latency = LatencySummary.from_histogram(read_latencies)
        report.write_latency = LatencySummary.from_histogram(write_latencies)
        return report

    # -- one operation each ----------------------------------------------

    def _run_read(self, statement, rng: random.Random) -> float:
        connection = self.connection
        params = self._resolve(self.read_params, rng)
        _, elapsed = connection._with_faults(
            "query",
            lambda: connection._measure_prepared(statement, params),
            idempotent=True,
        )
        return elapsed

    def _run_write(self, statement, rng: random.Random) -> float:
        connection = self.connection
        params = self._resolve(self.write_params, rng)
        _, elapsed = connection._with_faults(
            "update",
            lambda: connection._measure_update_prepared(statement, params),
            idempotent=False,
        )
        return elapsed

    def _run_write_transaction(
        self, statement, rng: random.Random
    ) -> tuple[float, bool]:
        """BEGIN / UPDATE / COMMIT without advancing the clock mid-flight.

        Returns ``(elapsed, conflicted)``; a first-committer-wins loss
        counts as a completed (conflicted) operation whose latency includes
        the failed commit's round trip.
        """
        connection = self.connection
        stats = connection.stats
        round_trip = connection.network.round_trip_seconds
        params = self._resolve(self.write_params, rng)
        txn = connection.database.begin()
        connection._txn = txn
        stats.round_trips += 1
        stats.network_time += round_trip
        elapsed = round_trip
        conflicted = False
        try:
            _, update_elapsed = connection._with_faults(
                "update",
                lambda: connection._measure_update_prepared(
                    statement, params
                ),
                idempotent=False,
            )
            elapsed += update_elapsed
            try:
                _, commit_elapsed = connection._with_faults(
                    "commit",
                    lambda: connection._measure_commit(txn),
                    idempotent=False,
                )
                elapsed += commit_elapsed
            except SerializationError:
                conflicted = True
                elapsed += round_trip
                stats.round_trips += 1
                stats.network_time += round_trip
                if connection.faults is not None:
                    connection.faults.stats.serialization_conflicts += 1
        finally:
            if connection._txn is txn:
                connection._txn = None
            if txn.active:
                txn.rollback()
        return elapsed, conflicted

    @staticmethod
    def _resolve(source: ParamSource, rng: random.Random) -> tuple:
        if callable(source):
            return tuple(source(rng))
        return tuple(source)


__all__ = [
    "LatencySummary",
    "LoadReport",
    "OpenLoopLoadGenerator",
    "ParamSource",
]
