"""Deterministic synthetic-value generation shared by the workload builders.

Experiments must be reproducible run to run, so all "randomness" comes from a
small linear-congruential generator seeded explicitly — no global state and no
dependence on Python's hash randomisation.
"""

from __future__ import annotations

from typing import Sequence


class DeterministicGenerator:
    """A tiny seeded pseudo-random generator (LCG) for synthetic data."""

    _MODULUS = 2**31 - 1
    _MULTIPLIER = 48271

    def __init__(self, seed: int = 42) -> None:
        if seed <= 0:
            seed = 42
        self._state = seed % self._MODULUS or 1

    def next_int(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        self._state = (self._state * self._MULTIPLIER) % self._MODULUS
        span = high - low + 1
        return low + self._state % span

    def next_float(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in [low, high)."""
        self._state = (self._state * self._MULTIPLIER) % self._MODULUS
        fraction = self._state / self._MODULUS
        return low + fraction * (high - low)

    def choice(self, options: Sequence):
        """Pick one element of ``options`` uniformly."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return options[self.next_int(0, len(options) - 1)]

    def string(self, prefix: str, width: int = 12) -> str:
        """A deterministic string value of roughly ``width`` characters."""
        value = self.next_int(0, 10**8)
        body = f"{prefix}{value:08d}"
        if len(body) < width:
            body = body + "x" * (width - len(body))
        return body[:width]

    def boolean(self, probability_true: float = 0.5) -> bool:
        """A boolean that is True with the given probability."""
        return self.next_float() < probability_true
