"""The motivating example programs P0, P1, P2 (Figure 3 of the paper).

Each variant is provided twice:

* as a runnable callable taking an :class:`repro.appsim.runtime.AppRuntime`
  (used to measure actual virtual execution time in Experiments 1-3), and
* as Python source text (``P0_SOURCE`` etc.) that the COBRA optimizer parses
  with the ``ast`` module, region-analyses, and rewrites.

All three variants compute exactly the same result — a list of
``my_func(o_id, c_birth_year)`` values over the join of orders and customer —
so the experiments can assert equivalence before comparing times.
"""

from __future__ import annotations

from typing import Any, List

from repro.appsim.runtime import AppRuntime


def my_func(o_id: Any, c_birth_year: Any) -> tuple:
    """The opaque per-tuple business function from the paper's example."""
    return (o_id, c_birth_year)


# -- P0: Hibernate ORM with the N+1 select problem ------------------------


def p0_orm(rt: AppRuntime) -> List[tuple]:
    """Figure 3a — load all orders, lazily load each order's customer."""
    result = []
    for o in rt.orm.load_all("Order"):
        cust = o.customer
        val = my_func(o.o_id, cust.c_birth_year)
        result.append(val)
        rt.work(3)
    return sorted(result)


P0_SOURCE = '''
def process_orders(rt):
    result = []
    for o in rt.orm.load_all("Order"):
        cust = o.customer
        val = my_func(o.o_id, cust.c_birth_year)
        result.append(val)
    return result
'''


# -- P1: single SQL join query (push computation to the database) ---------

JOIN_SQL = (
    "select * from orders o join customer c "
    "on o.o_customer_sk = c.c_customer_sk"
)


def p1_sql_join(rt: AppRuntime) -> List[tuple]:
    """Figure 3b — one join query, loop over the join result."""
    result = []
    for r in rt.execute_query(JOIN_SQL):
        val = my_func(r["o_id"], r["c_birth_year"])
        result.append(val)
        rt.work(2)
    return sorted(result)


P1_SOURCE = f'''
def process_orders(rt):
    result = []
    join_res = rt.execute_query("{JOIN_SQL}")
    for r in join_res:
        val = my_func(r["o_id"], r["c_birth_year"])
        result.append(val)
    return result
'''


# -- P2: prefetch both relations and join at the application --------------


def p2_prefetch(rt: AppRuntime) -> List[tuple]:
    """Figure 3c — prefetch customer, cache by key, loop over orders."""
    result = []
    customers = rt.execute_query("select * from customer")
    rt.cache.cache_by_column(customers, "c_customer_sk")
    for o in rt.execute_query("select * from orders"):
        cust = rt.lookup(o["o_customer_sk"], "c_customer_sk")
        val = my_func(o["o_id"], cust["c_birth_year"])
        result.append(val)
        rt.work(3)
    return sorted(result)


P2_SOURCE = '''
def process_orders(rt):
    result = []
    customers = rt.execute_query("select * from customer")
    rt.cache.cache_by_column(customers, "c_customer_sk")
    for o in rt.execute_query("select * from orders"):
        cust = rt.lookup(o["o_customer_sk"], "c_customer_sk")
        val = my_func(o["o_id"], cust["c_birth_year"])
        result.append(val)
    return result
'''


#: All three variants by label, in the order the paper plots them.
VARIANTS = {
    "Hibernate(P0)": p0_orm,
    "SQL Query(P1)": p1_sql_join,
    "Prefetching(P2)": p2_prefetch,
}

#: Source text for the optimizer, keyed the same way.
VARIANT_SOURCES = {
    "Hibernate(P0)": P0_SOURCE,
    "SQL Query(P1)": P1_SOURCE,
    "Prefetching(P2)": P2_SOURCE,
}


# -- the aggregation example from Figure 7 --------------------------------

M0_SOURCE = '''
def my_sum(rt):
    total = 0
    c_sum = {}
    for t in rt.execute_query("select month, sale_amt from sales order by month"):
        total = total + t["sale_amt"]
        c_sum[t["month"]] = total
    return (total, c_sum)
'''


def m0_aggregations(rt: AppRuntime) -> tuple:
    """Figure 7 — dependent aggregations (sum and cumulative sum) in a loop."""
    total = 0
    c_sum = {}
    query = "select month, sale_amt from sales order by month"
    for t in rt.execute_query(query):
        total = total + t["sale_amt"]
        c_sum[t["month"]] = total
        rt.work(2)
    return (total, c_sum)
