"""The six Wilos cost-based-rewriting patterns A-F (Figure 14 of the paper).

Each :class:`WilosPattern` packages, for one pattern:

* the original program source (what a developer wrote against the ORM/SQL
  API), which the COBRA and heuristic optimizers consume,
* a *driver* that exercises the program the way the enclosing application
  would (a single call for patterns A-C, repeated/recursive calls for
  patterns D-F, which is what the amortization factor models),
* the strategies the paper says the heuristic and COBRA choose, used by the
  experiment's sanity checks,
* the Figure 16 fragment list (file name and line number in the real Wilos
  source) for the per-pattern occurrence counts of Figure 14.

All program variants of a pattern compute the same result, so the Experiment
4 harness asserts result equivalence before comparing execution times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.appsim.runtime import AppRuntime

#: Number of repeated invocations used by the drivers of patterns D, E and F.
REPEATED_CALLS = 50


@dataclass(frozen=True)
class WilosFragment:
    """One code fragment from Figure 16 (Appendix A)."""

    index: int
    pattern_id: str
    location: str


@dataclass
class WilosPattern:
    """One of the six cost-based-choice categories of Figure 14."""

    pattern_id: str
    title: str
    choice_description: str
    cases: int
    source: str
    function_name: str
    driver: Callable[[AppRuntime, Callable], Any]
    fragments: list[WilosFragment] = field(default_factory=list)


# -- Pattern A: nested loops with intermittent updates ------------------------

PATTERN_A_SOURCE = '''
def sync_task_states(rt):
    changed = []
    for a in rt.execute_query("select * from activity"):
        rt.execute_update("update activity set visited = 1 where activity_id = ?", (a["activity_id"],))
        for t in rt.execute_query("select * from concrete_task"):
            if t["activity_id"] == a["activity_id"]:
                changed.append((a["activity_id"], t["task_id"]))
    return changed
'''


def _drive_single_call(rt: AppRuntime, function: Callable) -> Any:
    result = function(rt)
    return _normalise(result)


# -- Pattern B: multiple aggregations inside a loop ----------------------------

PATTERN_B_SOURCE = '''
def iteration_summary(rt):
    finished = 0
    points = []
    for it in rt.execute_query("select * from iteration"):
        finished = finished + it["is_finished"]
        points.append(it["points"])
    return (finished, points)
'''


# -- Pattern C: nested loops join ----------------------------------------------

PATTERN_C_SOURCE = '''
def participant_roles(rt):
    result = []
    for p in rt.execute_query("select * from participant"):
        for r in rt.execute_query("select * from role"):
            if p["role_id"] == r["role_id"]:
                result.append((p["participant_id"], r["name"]))
    return result
'''


# -- Pattern D: a function called inside a loop, rewritable with SQL -----------

PATTERN_D_SOURCE = '''
def activity_task_count(rt, activity_id):
    count = 0
    for t in rt.execute_query("select * from concrete_task where activity_id = ?", (activity_id,)):
        count = count + 1
    return count
'''


def _drive_pattern_d(rt: AppRuntime, function: Callable) -> Any:
    counts = []
    for activity_id in range(1, REPEATED_CALLS + 1):
        counts.append((activity_id, function(rt, activity_id)))
    return counts


# -- Pattern E: a recursive function filtering a collection per call -----------

PATTERN_E_SOURCE = '''
def collect_descendants(rt, parent_id, acc):
    for e in rt.execute_query("select * from breakdown_element where parent_id = ?", (parent_id,)):
        acc.append(e["element_id"])
        collect_descendants(rt, e["element_id"], acc)
    return acc
'''


def _drive_pattern_e(rt: AppRuntime, function: Callable) -> Any:
    collected = []
    for root in range(1, REPEATED_CALLS + 1):
        collected.append((root, sorted(function(rt, root, []))))
    return collected


# -- Pattern F: different parts of a collection used by different callees ------

PATTERN_F_SOURCE = '''
def process_report(rt, process_id):
    names = []
    for d in rt.execute_query("select descriptor_id, name from descriptor where process_id = ?", (process_id,)):
        names.append(d["name"])
    states = []
    for d in rt.execute_query("select descriptor_id, state from descriptor where process_id = ?", (process_id,)):
        states.append(d["state"])
    return (names, states)
'''


def _drive_pattern_f(rt: AppRuntime, function: Callable) -> Any:
    reports = []
    for process_id in range(1, min(REPEATED_CALLS, 50) + 1):
        names, states = function(rt, process_id)
        reports.append((process_id, sorted(names), sorted(states)))
    return reports


# -- Figure 16: fragment registry ----------------------------------------------

_FRAGMENT_LOCATIONS: dict[str, list[str]] = {
    "A": [
        "ProjectService (1139)",
        "TaskDescriptorService (198)",
        "ConcreteWorkBreakdownElementService (144)",
    ],
    "B": ["IterationService (139)", "PhaseService (185)"],
    "C": [
        "ConcreteRoleAffectationService (60)",
        "ConcreteTaskDescriptorService (312)",
        "ConcreteTaskDescriptorService (1276)",
        "ConcreteTaskDescriptorService (1302)",
        "ConcreteWorkBreakdownElementService (63)",
        "ConcreteWorkProductDescriptorService (445)",
        "ParticipantService (129)",
        "RoleService (15)",
        "ActivityService (407)",
    ],
    "D": [
        "IterationService (293)",
        "PhaseService (307)",
        "ActivityService (229)",
        "RoleDescriptorService (276)",
        "TaskDescriptorService (140)",
        "TaskDescriptorService (142)",
        "WorkProductDescriptorService (310)",
    ],
    "E": [
        "ProjectService (346)",
        "ProjectService (567)",
        "ProjectService (647)",
        "ProjectService (704)",
        "ProcessService (1212)",
        "ProcessService (1253)",
        "ProcessService (1593)",
        "ProcessService (1631)",
        "ProcessService (1740)",
    ],
    "F": ["ProcessService (406)", "ProcessService (921)"],
}


def fragments_for(pattern_id: str) -> list[WilosFragment]:
    """The Figure 16 fragments belonging to one pattern."""
    locations = _FRAGMENT_LOCATIONS[pattern_id]
    offset = sum(
        len(_FRAGMENT_LOCATIONS[p]) for p in sorted(_FRAGMENT_LOCATIONS) if p < pattern_id
    )
    return [
        WilosFragment(index=offset + i + 1, pattern_id=pattern_id, location=loc)
        for i, loc in enumerate(locations)
    ]


def all_fragments() -> list[WilosFragment]:
    """All 32 fragments of Figure 16, in order."""
    fragments: list[WilosFragment] = []
    for pattern_id in sorted(_FRAGMENT_LOCATIONS):
        fragments.extend(fragments_for(pattern_id))
    return fragments


# -- the pattern registry --------------------------------------------------------


def build_patterns() -> dict[str, WilosPattern]:
    """All six patterns, keyed by pattern id."""
    patterns = {
        "A": WilosPattern(
            pattern_id="A",
            title="Nested loops with intermittent updates",
            choice_description=(
                "Inner loop can be translated to SQL for better performance "
                "vs overall performance may degrade due to iterative queries"
            ),
            cases=3,
            source=PATTERN_A_SOURCE,
            function_name="sync_task_states",
            driver=_drive_single_call,
        ),
        "B": WilosPattern(
            pattern_id="B",
            title="Multiple aggregations inside loop",
            choice_description=(
                "Faster aggregation/fetch only result by translation to SQL "
                "vs multiple queries (NRT) instead of one"
            ),
            cases=2,
            source=PATTERN_B_SOURCE,
            function_name="iteration_summary",
            driver=_drive_single_call,
        ),
        "C": WilosPattern(
            pattern_id="C",
            title="Nested loops join",
            choice_description=(
                "Better join algorithm at the database and fetch (large) "
                "result of SQL join vs cache tables at application and join "
                "locally"
            ),
            cases=9,
            source=PATTERN_C_SOURCE,
            function_name="participant_roles",
            driver=_drive_single_call,
        ),
        "D": WilosPattern(
            pattern_id="D",
            title="Function called inside a loop can be rewritten using SQL",
            choice_description=(
                "Overall performance may degrade due to iterative queries if "
                "the caller loop cannot be translated"
            ),
            cases=7,
            source=PATTERN_D_SOURCE,
            function_name="activity_task_count",
            driver=_drive_pattern_d,
        ),
        "E": WilosPattern(
            pattern_id="E",
            title="Collection filtered differently across calls of a "
            "recursive function",
            choice_description=(
                "Multiple point look-up queries vs prefetch the whole table "
                "once and filter from cache"
            ),
            cases=9,
            source=PATTERN_E_SOURCE,
            function_name="collect_descendants",
            driver=_drive_pattern_e,
        ),
        "F": WilosPattern(
            pattern_id="F",
            title="Different parts of a collection used across different "
            "callee functions",
            choice_description=(
                "Multiple select/project queries to fetch only required data "
                "vs prefetch all data with one query"
            ),
            cases=2,
            source=PATTERN_F_SOURCE,
            function_name="process_report",
            driver=_drive_pattern_f,
        ),
    }
    for pattern_id, pattern in patterns.items():
        pattern.fragments = fragments_for(pattern_id)
    return patterns


def _normalise(result: Any) -> Any:
    """Order-insensitive normalisation of program results for equivalence checks."""
    if isinstance(result, list):
        try:
            return sorted(result)
        except TypeError:
            return result
    return result
