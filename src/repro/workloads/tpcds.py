"""The orders/customer workload used in Experiments 1-3 (Figure 13).

The paper sizes each row of Order and Customer "according to the TPC-DS
benchmark specification".  TPC-DS's ``catalog_sales`` rows are roughly 226
bytes wide and ``customer`` rows roughly 132 bytes wide; we use a compact
schema whose declared column widths sum to those figures so network-transfer
accounting matches the paper's setup.

``build_orders_database`` creates the schema, generates ``num_orders`` order
rows and ``num_customers`` customer rows deterministically (each order's
``o_customer_sk`` references a uniformly chosen customer), loads statistics,
and returns a ready :class:`repro.db.database.Database`.
``build_runtime`` additionally wires the Hibernate-like ORM mapping
(Order.customer many-to-one) and returns an :class:`AppRuntime`.
"""

from __future__ import annotations

from typing import Optional

from repro.appsim.runtime import AppRuntime
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, ForeignKey
from repro.net.network import NetworkConditions
from repro.orm.mapping import EntityDefinition, Field, ManyToOne, MappingRegistry
from repro.workloads.generator import DeterministicGenerator

#: Default Customer cardinality in Experiments 1 and 2.
DEFAULT_NUM_CUSTOMERS = 73_000

#: Row widths (bytes) approximating the TPC-DS specification.
ORDER_ROW_WIDTH = 226
CUSTOMER_ROW_WIDTH = 132


def customer_columns() -> list[Column]:
    """Columns of the ``customer`` table (sums to CUSTOMER_ROW_WIDTH bytes)."""
    return [
        Column("c_customer_sk", ColumnType.INT, width=8),
        Column("c_customer_id", ColumnType.STRING, width=16),
        Column("c_first_name", ColumnType.STRING, width=20),
        Column("c_last_name", ColumnType.STRING, width=30),
        Column("c_birth_year", ColumnType.INT, width=8),
        Column("c_birth_country", ColumnType.STRING, width=20),
        Column("c_email_address", ColumnType.STRING, width=30),
    ]


def orders_columns() -> list[Column]:
    """Columns of the ``orders`` table (sums to ORDER_ROW_WIDTH bytes)."""
    return [
        Column("o_id", ColumnType.INT, width=8),
        Column("o_customer_sk", ColumnType.INT, width=8),
        Column("o_order_date", ColumnType.STRING, width=10),
        Column("o_status", ColumnType.STRING, width=8),
        Column("o_item_sk", ColumnType.INT, width=8),
        Column("o_quantity", ColumnType.INT, width=8),
        Column("o_wholesale_cost", ColumnType.FLOAT, width=8),
        Column("o_list_price", ColumnType.FLOAT, width=8),
        Column("o_sales_price", ColumnType.FLOAT, width=8),
        Column("o_ext_ship_cost", ColumnType.FLOAT, width=8),
        Column("o_net_paid", ColumnType.FLOAT, width=8),
        Column("o_net_profit", ColumnType.FLOAT, width=8),
        Column("o_comment", ColumnType.STRING, width=128),
    ]


def build_orders_database(
    num_orders: int,
    num_customers: int = DEFAULT_NUM_CUSTOMERS,
    seed: int = 7,
) -> Database:
    """Create and populate the orders/customer database."""
    database = Database()
    database.create_table(
        "customer", customer_columns(), primary_key="c_customer_sk"
    )
    database.create_table(
        "orders",
        orders_columns(),
        primary_key="o_id",
        foreign_keys=[ForeignKey("o_customer_sk", "customer", "c_customer_sk")],
    )
    generator = DeterministicGenerator(seed)
    database.insert(
        "customer",
        (
            _customer_row(i, generator)
            for i in range(1, num_customers + 1)
        ),
    )
    database.insert(
        "orders",
        (
            _order_row(i, num_customers, generator)
            for i in range(1, num_orders + 1)
        ),
    )
    database.analyze()
    return database


def build_registry() -> MappingRegistry:
    """The Hibernate-like mapping from Figure 2: Order -> orders, Customer -> customer."""
    registry = MappingRegistry()
    registry.register(
        EntityDefinition(
            entity="Customer",
            table="customer",
            id_column="c_customer_sk",
            fields=[
                Field("c_customer_sk", "c_customer_sk"),
                Field("c_first_name", "c_first_name"),
                Field("c_last_name", "c_last_name"),
                Field("c_birth_year", "c_birth_year"),
            ],
        )
    )
    registry.register(
        EntityDefinition(
            entity="Order",
            table="orders",
            id_column="o_id",
            fields=[
                Field("o_id", "o_id"),
                Field("o_customer_sk", "o_customer_sk"),
                Field("o_net_paid", "o_net_paid"),
            ],
            relations=[
                ManyToOne(
                    name="customer",
                    target_entity="Customer",
                    join_column="o_customer_sk",
                    target_key_column="c_customer_sk",
                )
            ],
        )
    )
    return registry


def build_runtime(
    num_orders: int,
    num_customers: int = DEFAULT_NUM_CUSTOMERS,
    network: Optional[NetworkConditions] = None,
    seed: int = 7,
) -> AppRuntime:
    """Database + ORM mapping + network, ready to run P0/P1/P2."""
    from repro.net.network import FAST_LOCAL

    database = build_orders_database(num_orders, num_customers, seed)
    return AppRuntime(
        database=database,
        network=network or FAST_LOCAL,
        registry=build_registry(),
    )


# -- row generators ------------------------------------------------------


def _customer_row(key: int, generator: DeterministicGenerator) -> dict:
    return {
        "c_customer_sk": key,
        "c_customer_id": f"CUST{key:010d}",
        "c_first_name": generator.string("fn", 20),
        "c_last_name": generator.string("ln", 30),
        "c_birth_year": generator.next_int(1930, 2005),
        "c_birth_country": generator.choice(
            ["INDIA", "USA", "GERMANY", "BRAZIL", "JAPAN"]
        ),
        "c_email_address": generator.string("mail", 30),
    }


def _order_row(
    key: int, num_customers: int, generator: DeterministicGenerator
) -> dict:
    wholesale = generator.next_float(1.0, 100.0)
    quantity = generator.next_int(1, 100)
    return {
        "o_id": key,
        "o_customer_sk": generator.next_int(1, max(1, num_customers)),
        "o_order_date": f"2002-{generator.next_int(1, 12):02d}-"
        f"{generator.next_int(1, 28):02d}",
        "o_status": generator.choice(["OPEN", "SHIPPED", "CLOSED"]),
        "o_item_sk": generator.next_int(1, 10_000),
        "o_quantity": quantity,
        "o_wholesale_cost": round(wholesale, 2),
        "o_list_price": round(wholesale * 1.4, 2),
        "o_sales_price": round(wholesale * 1.2, 2),
        "o_ext_ship_cost": round(generator.next_float(0.0, 25.0), 2),
        "o_net_paid": round(wholesale * 1.2 * quantity, 2),
        "o_net_profit": round(wholesale * 0.2 * quantity, 2),
        "o_comment": generator.string("comment", 136),
    }
