"""A tour of the COBRA cost model and the Region DAG.

This example is aimed at users who want to extend the framework: it shows the
region tree of a program, the F-IR fold expression of its cursor loop, the
alternatives the transformation rules add to the Region DAG, and how each
alternative is priced by the Section-VI cost model under the two network
presets and different amortization factors.

Run with::

    python examples/cost_model_tour.py
"""

from __future__ import annotations

from repro.core.catalog import catalog_for_network
from repro.core.cost_model import CostModel
from repro.core.optimizer import CobraOptimizer
from repro.core.plans import DagCostCalculator
from repro.core.region_analysis import analyze_program
from repro.core.regions import count_regions
from repro.fir.builder import build_fold
from repro.workloads import tpcds
from repro.workloads.programs import M0_SOURCE, P0_SOURCE


def show_regions_and_fir() -> None:
    print("=== Region tree and F-IR of the motivating example (P0) ===")
    info = analyze_program(P0_SOURCE, registry=tpcds.build_registry())
    print("region counts:", count_regions(info.region))
    for loop in info.cursor_loops():
        print(f"cursor loop {loop.label}: iterates over {loop.query.describe()}")
        fold = build_fold(loop, info.context)
        if fold is not None:
            print("fold expression:", fold.fold.describe())

    print("\n=== Dependent aggregations (Figure 7 program M0) ===")
    info = analyze_program(M0_SOURCE)
    for loop in info.cursor_loops():
        fold = build_fold(loop, info.context)
        if fold is not None:
            print("fold expression:", fold.fold.describe())
            print("dependent aggregations:", fold.has_dependent_aggregations)


def show_alternative_costs() -> None:
    print("\n=== Alternatives and their costs under both networks ===")
    database = tpcds.build_orders_database(num_orders=2_000, num_customers=500)
    for network_name in ("slow-remote", "fast-local"):
        parameters = catalog_for_network(network_name)
        optimizer = CobraOptimizer(
            database, parameters, registry=tpcds.build_registry()
        )
        result = optimizer.optimize(P0_SOURCE)
        calculator = DagCostCalculator(
            result.dag, CostModel(database, parameters)
        )
        print(f"\nnetwork = {network_name}")
        for group in result.dag.iter_groups():
            if len(group.alternatives) < 2:
                continue
            print(f"  region {group.label}:")
            for node in group.alternatives:
                cost = calculator.node_cost(node)
                print(f"    {node.strategy:<12} estimated {cost:12.4f} s")
        print(f"  COBRA chooses: {result.primary_choice()}")


def main() -> None:
    show_regions_and_fir()
    show_alternative_costs()


if __name__ == "__main__":
    main()
