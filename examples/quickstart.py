"""Quickstart: optimize the paper's motivating example end to end.

This example walks the full COBRA pipeline on program P0 (Figure 3a of the
paper) through the unified :class:`repro.api.Engine` facade: build an engine
over the orders workload, point the optimizer at the program source, look at
the alternatives and the cost-based choice under two network conditions, and
finally execute the generated program to confirm it computes the same result
faster.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Engine
from repro.workloads import programs


def optimize_for(network_name: str, num_orders: int, num_customers: int) -> None:
    print(f"\n=== {network_name}: {num_orders} orders, {num_customers} customers ===")
    engine = (
        Engine.builder()
        .orders_workload(num_orders=num_orders, num_customers=num_customers)
        .network(network_name)
        .build()
    )

    result = engine.optimize(programs.P0_SOURCE)
    print(f"alternatives generated : {result.alternatives_added}")
    print(f"original estimated cost: {result.original_cost:10.3f} s")
    print(f"best estimated cost    : {result.best_cost:10.3f} s")
    print(f"chosen strategy        : {result.primary_choice()}")
    print("rewritten program:")
    print(result.rewritten_source)

    # Execute the generated program and the original, and compare.
    runtime = engine.runtime()
    namespace = {"my_func": programs.my_func}
    exec(compile(result.rewritten_source, "<rewritten>", "exec"), namespace)
    rewritten = namespace["process_orders"]

    original_run = runtime.measure(programs.p0_orm)
    rewritten_run = runtime.measure(lambda rt: sorted(rewritten(rt)))
    assert original_run.result == rewritten_run.result, "results must match"
    print(
        f"measured: original {original_run.elapsed_seconds:.3f}s "
        f"({original_run.queries} queries)  ->  rewritten "
        f"{rewritten_run.elapsed_seconds:.3f}s ({rewritten_run.queries} queries)"
    )


def main() -> None:
    # Few orders, many customers: the SQL join (P1) should win.
    optimize_for("slow-remote", num_orders=200, num_customers=5_000)
    # Many orders, few customers: prefetching (P2) should win.
    optimize_for("slow-remote", num_orders=5_000, num_customers=500)
    # Fast local network for comparison.
    optimize_for("fast-local", num_orders=5_000, num_customers=500)


if __name__ == "__main__":
    main()
