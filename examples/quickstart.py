"""Quickstart: optimize the paper's motivating example end to end.

This example walks the full COBRA pipeline on program P0 (Figure 3a of the
paper) through the unified :class:`repro.api.Engine` facade: build an engine
over the orders workload, point the optimizer at the program source, look at
the alternatives and the cost-based choice under two network conditions, and
finally execute the generated program to confirm it computes the same result
faster.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Engine
from repro.workloads import programs


def optimize_for(network_name: str, num_orders: int, num_customers: int) -> None:
    print(f"\n=== {network_name}: {num_orders} orders, {num_customers} customers ===")
    engine = (
        Engine.builder()
        .orders_workload(num_orders=num_orders, num_customers=num_customers)
        .network(network_name)
        .build()
    )

    result = engine.optimize(programs.P0_SOURCE)
    print(f"alternatives generated : {result.alternatives_added}")
    print(f"original estimated cost: {result.original_cost:10.3f} s")
    print(f"best estimated cost    : {result.best_cost:10.3f} s")
    print(f"chosen strategy        : {result.primary_choice()}")
    print("rewritten program:")
    print(result.rewritten_source)

    # Execute the generated program and the original, and compare.
    runtime = engine.runtime()
    namespace = {"my_func": programs.my_func}
    exec(compile(result.rewritten_source, "<rewritten>", "exec"), namespace)
    rewritten = namespace["process_orders"]

    original_run = runtime.measure(programs.p0_orm)
    rewritten_run = runtime.measure(lambda rt: sorted(rewritten(rt)))
    assert original_run.result == rewritten_run.result, "results must match"
    print(
        f"measured: original {original_run.elapsed_seconds:.3f}s "
        f"({original_run.queries} queries)  ->  rewritten "
        f"{rewritten_run.elapsed_seconds:.3f}s ({rewritten_run.queries} queries)"
    )


def snapshot_reads_demo() -> None:
    """Two connections on one MVCC server: a snapshot opened before a
    concurrent transaction commits keeps seeing the old rows."""
    print("\n=== MVCC: snapshot reads under a concurrent writer ===")
    engine = (
        Engine.builder()
        .orders_workload(num_orders=500, num_customers=50)
        .network("fast-local")
        .mvcc()
        .build()
    )
    reader, writer = engine.connect(), engine.connect()
    sql = "select * from orders where o_id = ?"

    snap = engine.database.snapshot()  # pin the current committed state
    before = snap.execute(sql, (1,)).rows[0]["o_quantity"]
    writer.run_transaction(  # retries SerializationError automatically
        lambda conn: conn.execute_update(
            "update orders set o_quantity = 999 where o_id = ?", (1,)
        )
    )
    snap_view = snap.execute(sql, (1,)).rows[0]["o_quantity"]
    live_view = reader.execute_query(sql, (1,)).rows[0]["o_quantity"]
    snap.close()

    print(f"snapshot saw o_quantity={before}, still sees {snap_view}")
    print(f"a fresh read sees the committed update: {live_view}")
    assert snap_view == before and live_view == 999
    stats = engine.stats()["mvcc"]
    print(
        f"mvcc counters: versions_created={stats['versions_created']} "
        f"snapshots_taken={stats['snapshots_taken']} "
        f"write_conflicts={stats['write_conflicts']}"
    )


def explain_analyze_demo() -> None:
    """EXPLAIN ANALYZE a join over a sharded database: estimates and
    actuals side by side, with the router's classification and the tier."""
    print("\n=== EXPLAIN ANALYZE: a join over 4 hash shards ===")
    engine = (
        Engine.builder()
        .orders_workload(num_orders=400, num_customers=40)
        .network("fast-local")
        .shards(4)
        .tracing()
        .build()
    )
    sql = (
        "select o.o_id, c.c_first_name from orders o "
        "join customer c on o.o_customer_sk = c.c_customer_sk"
    )
    print(engine.database.explain(sql).render())  # plan only, no execution
    print()
    analyzed = engine.database.explain_analyze(sql)  # executes + annotates
    print(analyzed.render())
    executed = len(engine.database.execute_sql(sql).rows)
    assert analyzed.root.actual_rows == executed  # actuals are exact
    trace = engine.tracer.traces[-1]  # the run records a trace too
    operators = [s for s in trace.spans if s.name.startswith("operator:")]
    print(f"\ntraced as: {trace.kind}, {len(operators)} operator spans")


def main() -> None:
    # Few orders, many customers: the SQL join (P1) should win.
    optimize_for("slow-remote", num_orders=200, num_customers=5_000)
    # Many orders, few customers: prefetching (P2) should win.
    optimize_for("slow-remote", num_orders=5_000, num_customers=500)
    # Fast local network for comparison.
    optimize_for("fast-local", num_orders=5_000, num_customers=500)
    # Server-side concurrency: MVCC snapshot reads.
    snapshot_reads_demo()
    # Observability: EXPLAIN ANALYZE on a sharded join.
    explain_analyze_demo()


if __name__ == "__main__":
    main()
