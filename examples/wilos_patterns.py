"""Cost-based rewriting of the six Wilos patterns (the Figure 15 scenario).

For each of the paper's six real-world patterns A-F this example shows the
original program, what the always-push-to-SQL heuristic does with it, what
COBRA chooses at amortization factors 1 and 50, and the measured execution
time of every variant on synthetic Wilos-like data.

Run with::

    python examples/wilos_patterns.py [scale]
"""

from __future__ import annotations

import sys

from repro.experiments.figure15 import run_pattern
from repro.net.network import FAST_LOCAL
from repro.workloads.wilos import build_wilos_runtime
from repro.workloads.wilos_programs import build_patterns


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    runtime = build_wilos_runtime(scale=scale, network=FAST_LOCAL)
    patterns = build_patterns()
    for pattern_id in "ABCDEF":
        pattern = patterns[pattern_id]
        print(f"\n=== Pattern {pattern_id}: {pattern.title} ===")
        print(pattern.choice_description)
        outcome = run_pattern(pattern, runtime)
        print(f"  original          : {outcome.original.elapsed:9.4f} s")
        print(
            f"  heuristic         : {outcome.heuristic.elapsed:9.4f} s "
            f"({outcome.heuristic_choice})"
        )
        for factor in (50, 1):
            variant = outcome.cobra[factor]
            print(
                f"  COBRA (AF={factor:>2})     : {variant.elapsed:9.4f} s "
                f"({outcome.cobra_choices[factor]})"
            )
        print(f"  results equivalent: {outcome.results_equivalent()}")


if __name__ == "__main__":
    main()
