"""Orders/customer reporting under different networks (the Figure 13 scenario).

This example reproduces a miniature version of Experiments 1-3: it measures
the three implementations of the orders report (Hibernate-style N+1 selects,
one SQL join, prefetch-and-join-locally) across several cardinalities and two
network conditions, and shows which one COBRA selects at each point.

Run with::

    python examples/orders_report.py
"""

from __future__ import annotations

from repro.experiments.figure13 import measure_point
from repro.net.network import FAST_LOCAL, SLOW_REMOTE


def sweep(network, label: str) -> None:
    print(f"\n=== {label} ===")
    header = (
        f"{'orders':>8} {'customers':>10} {'P0 (s)':>10} {'P1 (s)':>10} "
        f"{'P2 (s)':>10}   COBRA choice"
    )
    print(header)
    print("-" * len(header))
    for num_orders, num_customers in [
        (50, 2_000),
        (500, 2_000),
        (2_000, 2_000),
        (5_000, 500),
    ]:
        point = measure_point(num_orders, num_customers, network)
        print(
            f"{num_orders:>8} {num_customers:>10} {point.p0_seconds:>10.3f} "
            f"{point.p1_seconds:>10.3f} {point.p2_seconds:>10.3f}   "
            f"{point.cobra_choice}"
        )


def main() -> None:
    sweep(SLOW_REMOTE, "slow remote network (500 kbps, 250 ms latency)")
    sweep(FAST_LOCAL, "fast local network (6 Gbps, 0.5 ms RTT)")


if __name__ == "__main__":
    main()
