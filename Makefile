.PHONY: test test-async test-faults test-mvcc test-obs test-columnar test-parallel bench bench-suite bench-smoke ci

# Tier-1 verification: the full unit + benchmark test suite.
test:
	python -m pytest -x -q

# The async / pipelined client-path suites on their own (fast feedback).
test-async:
	python -m pytest tests/test_aio.py tests/test_pipeline.py \
		tests/test_param_slots.py -q

# The robustness suites (WAL/recovery, transactions, fault injection) with a
# widened seed sweep: FAULT_SEEDS adds extra seeds to every seed-parametrized
# fault test.
test-faults:
	FAULT_SEEDS="21 42 99 1234" python -m pytest tests/test_faults.py \
		tests/test_wal.py tests/test_transactions.py -q

# The concurrency suites (MVCC snapshot isolation, admission control, the
# open-loop load generator) under the same widened seed sweep: FAULT_SEEDS
# feeds the serial-equivalence and loadgen seed-parametrized tests.
test-mvcc:
	FAULT_SEEDS="21 42 99 1234" python -m pytest tests/test_mvcc.py \
		tests/test_admission.py -q

# The observability suites: tracing/metrics units, EXPLAIN (ANALYZE), and
# the span-accounting property tests (every trace partitions its charged
# virtual latency across tiers, sharding, and sync/async clients).
test-obs:
	python -m pytest tests/test_obs.py tests/test_explain.py \
		tests/test_obs_property.py -q

# The columnar-storage and codegen suites: typed/dictionary encoding units,
# storage x codegen x tier equivalence sweeps (sharded and unsharded), the
# zero-codegen_unsupported property gate, and the vectorized-tier units.
# REPRO_VECTOR_BACKEND=numpy exercises the numpy filter backend when numpy
# is importable and proves graceful degradation when it is not.
test-columnar:
	python -m pytest tests/test_typed_columns.py tests/test_vectorized.py -q
	REPRO_VECTOR_BACKEND=numpy python -m pytest \
		tests/test_typed_columns.py tests/test_vectorized.py -q

# The parallel scatter-gather suites: worker-pool units, packed-payload
# round-trips, the parallel ≡ serial scatter ≡ unsharded equivalence sweep
# across all three tiers in thread and process pool modes (fallback plans
# and mid-scatter errors included), sorted-run merging, out-of-order
# partial-aggregate merging, counter accounting, and the parallel trace
# breakdown.
test-parallel:
	python -m pytest tests/test_parallel.py -q

# Engine performance benchmarks; writes BENCH_engine.json in the repo root.
bench:
	python benchmarks/bench_engine.py

# The paper-figure benchmark suite (pytest-benchmark timings + tables).
bench-suite:
	python -m pytest benchmarks/ -q

# Scaled-down benchmark run used by CI (covers every bench entry, including
# the vectorized-tier ones — scan_filter_vectorized, hash_join_wide_vectorized,
# aggregate_vectorized — the sharded ones — sharded_point_lookup,
# sharded_scan_filter, sharded_aggregate — and the robustness ones —
# wal_overhead (recovery equivalence asserted, group-commit delta included)
# and fault_retry_convergence (faulty ≡ fault-free row equality asserted) —
# and the concurrency ones — mvcc_reader_writer (snapshot consistency and
# the reader-latency bound asserted) and admission_open_loop (queueing knee
# asserted) — and the observability one — tracing_overhead (traced run
# within 5% of untraced asserted) — and the codegen ones —
# scan_filter_codegen, aggregate_codegen, dict_filter_strings (row equality
# across codegen/kernel/interpreted asserted, and the run fails if any
# benchmark plan hits a codegen_unsupported fallback); does not overwrite
# BENCH_engine.json.
bench-smoke:
	BENCH_ENGINE_ROWS=2000 BENCH_ENGINE_OUT=/tmp/BENCH_engine_smoke.json \
		python benchmarks/bench_engine.py > /dev/null
	@echo "bench smoke ok (wrote /tmp/BENCH_engine_smoke.json)"

# What CI runs: the full test suite (includes the async/pipeline suites),
# the fault and concurrency suites across extra seeds, the observability,
# columnar/codegen, and parallel-scatter suites, plus a benchmark smoke run.
ci: test test-async test-faults test-mvcc test-obs test-columnar test-parallel bench-smoke
