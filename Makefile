.PHONY: test bench bench-suite

# Tier-1 verification: the full unit + benchmark test suite.
test:
	python -m pytest -x -q

# Engine performance benchmarks; writes BENCH_engine.json in the repo root.
bench:
	python benchmarks/bench_engine.py

# The paper-figure benchmark suite (pytest-benchmark timings + tables).
bench-suite:
	python -m pytest benchmarks/ -q
