"""Unit tests for F-IR expressions, dependence analysis, and fold construction."""

import ast

import pytest

from repro.core.region_analysis import analyze_program
from repro.fir import expressions as fir
from repro.fir.builder import build_fold
from repro.fir.dependence import analyze_loop_body
from repro.workloads import tpcds
from repro.workloads.programs import M0_SOURCE, P0_SOURCE


def fold_for(source, registry=None, loop_index=0):
    info = analyze_program(source, registry=registry)
    loops = info.cursor_loops()
    return build_fold(loops[loop_index], info.context)


class TestFIRExpressions:
    def test_describe_fold_with_tuple(self):
        fold = fir.Fold(
            function=fir.TupleExpr(
                (
                    fir.BinOp("+", fir.ParamVar("sum"), fir.ColumnOf("Q", "x")),
                    fir.MapPut(
                        fir.ParamVar("m"), fir.ColumnOf("Q", "k"), fir.ParamVar("sum")
                    ),
                )
            ),
            initial=fir.TupleExpr((fir.Const(0), fir.Const({}))),
            query=fir.QueryExpr("select * from t"),
        )
        text = fold.describe()
        assert "fold(" in text and "tuple(" in text and "<sum>" in text

    def test_tuple_requires_items(self):
        with pytest.raises(fir.FIRError):
            fir.TupleExpr(())

    def test_project_and_walk(self):
        tup = fir.TupleExpr((fir.Const(1), fir.Const(2)))
        project = fir.ProjectExpr(tup, 1)
        assert "project1" in project.describe()
        assert fir.contains_node(project, fir.TupleExpr)
        assert len(fir.find_nodes(project, fir.Const)) == 2

    def test_inner_lookup_query_describe(self):
        node = fir.InnerLookupQuery(
            "customer", "c_customer_sk", fir.ColumnOf("Q", "o_customer_sk")
        )
        text = node.describe()
        assert "σ" in text and "customer" in text


class TestDependenceAnalysis:
    def _facts(self, body_source: str):
        module = ast.parse(body_source)
        return analyze_loop_body(module.body, loop_variable="row")

    def test_accumulator_and_local_classification(self):
        info = self._facts("tmp = row['x'] * 2\ntotal = total + tmp\n")
        assert info.is_foldable
        assert "total" in info.accumulators
        assert "tmp" in info.locals_

    def test_append_is_an_accumulation(self):
        info = self._facts("result.append(row)\n")
        assert "result" in info.accumulators

    def test_break_is_unsupported(self):
        info = self._facts("break\n")
        assert not info.is_foldable

    def test_database_write_is_external_effect(self):
        info = self._facts("rt.execute_update('update t set a = 1')\n")
        assert info.has_external_effects
        assert not info.is_foldable

    def test_print_is_external_effect(self):
        info = self._facts("print(row)\n")
        assert not info.is_foldable

    def test_guarded_accumulation_allowed(self):
        info = self._facts("if row['x'] > 1:\n    total = total + 1\n")
        assert info.is_foldable


class TestFoldConstruction:
    def test_p0_lookup_binding(self, registry):
        fold = fold_for(P0_SOURCE, registry)
        assert fold is not None
        assert fold.query_sql == "select * from orders"
        assert len(fold.bindings) == 1
        binding = fold.bindings[0]
        assert binding.kind == "lazy_load"
        assert binding.table == "customer"
        assert binding.key_column == "c_customer_sk"
        assert len(fold.accumulators) == 1
        assert fold.accumulators[0].kind == "collection_insert"

    def test_m0_dependent_aggregations(self):
        fold = fold_for(M0_SOURCE)
        assert fold is not None
        kinds = {a.variable: a.kind for a in fold.accumulators}
        assert kinds == {"total": "scalar", "c_sum": "map_put"}
        assert fold.has_dependent_aggregations
        # The formal expression uses the tuple extension of Section V-B.
        assert isinstance(fold.fold.function, fir.TupleExpr)
        assert isinstance(fold.fold.initial, fir.TupleExpr)

    def test_simple_sum_fold(self):
        source = """
def f(rt):
    total = 0
    for t in rt.execute_query("select * from sales"):
        total = total + t["amount"]
    return total
"""
        fold = fold_for(source)
        assert fold is not None
        spec = fold.accumulators[0]
        assert spec.kind == "scalar" and spec.operator == "+"
        assert not fold.has_dependent_aggregations
        assert "fold(" in fold.fold.describe()

    def test_guard_recorded(self):
        source = """
def f(rt):
    names = []
    for t in rt.execute_query("select * from employee"):
        if t["salary"] > 100:
            names.append(t["name"])
    return names
"""
        fold = fold_for(source)
        assert fold is not None
        assert fold.accumulators[0].guard is not None

    def test_update_in_loop_prevents_fold(self):
        source = """
def f(rt):
    n = 0
    for t in rt.execute_query("select * from activity"):
        rt.execute_update("update activity set visited = 1 where activity_id = ?", (t["activity_id"],))
        n = n + 1
    return n
"""
        assert fold_for(source) is None

    def test_non_cursor_loop_not_folded(self):
        source = """
def f(rt):
    total = 0
    for i in range(10):
        total = total + i
    return total
"""
        info = analyze_program(source)
        loops = [r for r in info.region.walk() if r.kind == "loop"]
        assert build_fold(loops[0], info.context) is None

    def test_loop_without_accumulators_not_folded(self):
        source = """
def f(rt):
    for t in rt.execute_query("select * from t"):
        x = t["a"]
    return None
"""
        assert fold_for(source) is None

    def test_nested_cursor_loop_recognised_as_join(self):
        source = """
def f(rt):
    result = []
    for p in rt.execute_query("select * from participant"):
        for r in rt.execute_query("select * from role"):
            if p["role_id"] == r["role_id"]:
                result.append((p["participant_id"], r["name"]))
    return result
"""
        fold = fold_for(source)
        assert fold is not None
        assert len(fold.nested_joins) == 1
        nested = fold.nested_joins[0]
        assert nested.inner_variable == "r"
        assert nested.join_condition is not None

    def test_sql_lookup_binding_with_parameter(self):
        source = """
def f(rt):
    result = []
    for o in rt.execute_query("select * from orders"):
        rows = rt.execute_query("select * from customer where c_customer_sk = ?", (o["o_customer_sk"],))
        result.append((o["o_id"], len(rows)))
    return result
"""
        fold = fold_for(source)
        assert fold is not None
        assert fold.bindings[0].kind == "sql_lookup"
        assert fold.bindings[0].table == "customer"

    def test_opaque_call_tolerated_and_recorded(self):
        source = """
def walk(rt, parent, acc):
    for e in rt.execute_query("select * from breakdown_element where parent_id = ?", (parent,)):
        acc.append(e["element_id"])
        walk(rt, e["element_id"], acc)
    return acc
"""
        fold = fold_for(source)
        assert fold is not None
        assert fold.has_opaque_statements
