"""Unit tests for the Section VI cost model and the cost catalog."""

import json

import pytest

from repro.core.catalog import (
    CatalogError,
    catalog_for_network,
    from_dict,
    load_catalog,
    save_catalog,
    to_dict,
)
from repro.core.cost_model import CostModel, CostParameters
from repro.core.region_analysis import analyze_program
from repro.core.regions import BasicBlockRegion, LoopRegion
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE


@pytest.fixture()
def slow_model(orders_database):
    return CostModel(orders_database, CostParameters.for_network(SLOW_REMOTE))


@pytest.fixture()
def fast_model(orders_database):
    return CostModel(orders_database, CostParameters.for_network(FAST_LOCAL))


class TestCostParameters:
    def test_for_network_copies_network_terms(self):
        params = CostParameters.for_network(SLOW_REMOTE)
        assert params.network_round_trip == SLOW_REMOTE.round_trip_seconds
        assert params.bandwidth_bytes_per_sec == SLOW_REMOTE.bandwidth_bytes_per_sec

    def test_default_statement_cost_is_the_paper_value(self):
        assert CostParameters().statement_cost == pytest.approx(30e-9)

    def test_with_amortization(self):
        params = CostParameters().with_amortization(50)
        assert params.amortization_factor == 50
        # original is unchanged (frozen dataclass semantics)
        assert CostParameters().amortization_factor == 1.0


class TestQueryCosts:
    def test_query_cost_formula_components(self, slow_model, orders_database):
        estimate = orders_database.estimate_sql("select * from orders")
        cost = slow_model.query_cost("select * from orders")
        transfer = estimate.byte_size / SLOW_REMOTE.bandwidth_bytes_per_sec
        lower_bound = SLOW_REMOTE.round_trip_seconds + transfer
        assert cost >= lower_bound
        assert cost == pytest.approx(
            SLOW_REMOTE.round_trip_seconds
            + estimate.first_row_time
            + max(transfer, estimate.last_row_time - estimate.first_row_time)
        )

    def test_query_cost_higher_on_slow_network(self, slow_model, fast_model):
        sql = "select * from orders"
        assert slow_model.query_cost(sql) > fast_model.query_cost(sql)

    def test_point_lookup_cheaper_than_full_scan(self, slow_model):
        full = slow_model.query_cost("select * from customer")
        point = slow_model.point_lookup_cost("customer", "c_customer_sk")
        assert point < full

    def test_prefetch_cost_divided_by_af(self, orders_database):
        base = CostParameters.for_network(SLOW_REMOTE)
        model_af1 = CostModel(orders_database, base.with_amortization(1))
        model_af50 = CostModel(orders_database, base.with_amortization(50))
        af1 = model_af1.prefetch_cost("customer", None)
        af50 = model_af50.prefetch_cost("customer", None)
        assert af1 == pytest.approx(model_af1.query_cost("select * from customer"))
        assert af50 == pytest.approx(af1 / 50)

    def test_estimates_are_cached(self, slow_model):
        slow_model.query_cost("select * from orders")
        assert "select * from orders" in slow_model._estimate_cache
        slow_model.clear_cache()
        assert not slow_model._estimate_cache


class TestRegionCosts:
    def _p0_loop(self, registry) -> LoopRegion:
        info = analyze_program(P0_SOURCE, registry=registry)
        return info.cursor_loops()[0]

    def test_block_cost_includes_statement_and_queries(
        self, slow_model, registry
    ):
        loop = self._p0_loop(registry)
        blocks = [
            r for r in loop.body.walk() if isinstance(r, BasicBlockRegion)
        ]
        lazy_block = next(b for b in blocks if b.has_query())
        plain_block = next(b for b in blocks if not b.has_query())
        assert slow_model.block_cost(plain_block) == pytest.approx(
            slow_model.parameters.statement_cost
        )
        assert slow_model.block_cost(lazy_block) > SLOW_REMOTE.round_trip_seconds

    def test_loop_iterations_from_query_cardinality(self, slow_model, registry):
        loop = self._p0_loop(registry)
        assert slow_model.loop_iterations(loop) == pytest.approx(300)

    def test_loop_cost_scales_with_body(self, slow_model, registry):
        loop = self._p0_loop(registry)
        cheap = slow_model.loop_cost(loop, body_cost=0.0)
        expensive = slow_model.loop_cost(loop, body_cost=1.0)
        assert expensive > cheap + 299

    def test_conditional_cost_formula(self, fast_model):
        cost = fast_model.conditional_cost(2.0, 4.0, predicate_cost=1.0)
        assert cost == pytest.approx(0.5 * 2.0 + 0.5 * 4.0 + 1.0)

    def test_sequence_cost_is_sum(self, fast_model):
        assert fast_model.sequence_cost([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_lookup_group_iterations_use_group_size(self, fast_model, registry):
        source = """
def f(rt, key):
    total = 0
    rt.prefetch_group('orders', 'o_customer_sk', 'orders.o_customer_sk')
    for o in rt.lookup_group(key, 'orders.o_customer_sk'):
        total = total + o["o_net_paid"]
    return total
"""
        info = analyze_program(source, registry=registry)
        loop = [r for r in info.region.walk() if isinstance(r, LoopRegion)][0]
        iterations = fast_model.loop_iterations(loop)
        # 300 orders over 60 customers: average group size 5.
        assert iterations == pytest.approx(300 / 60, rel=0.3)


class TestCostCatalog:
    def test_round_trip_through_file(self, tmp_path):
        params = catalog_for_network("slow-remote", amortization_factor=50)
        path = save_catalog(params, tmp_path / "catalog.json")
        loaded = load_catalog(path)
        assert loaded == params

    def test_from_dict_with_network_preset(self):
        params = from_dict({"network": "fast-local", "statement_cost": 1e-8})
        assert params.bandwidth_bytes_per_sec == FAST_LOCAL.bandwidth_bytes_per_sec
        assert params.statement_cost == 1e-8

    def test_unknown_field_rejected(self):
        with pytest.raises(CatalogError, match="unknown cost catalog fields"):
            from_dict({"no_such_field": 1})

    def test_unknown_network_rejected(self):
        with pytest.raises(CatalogError, match="unknown network preset"):
            from_dict({"network": "carrier-pigeon"})
        with pytest.raises(CatalogError):
            catalog_for_network("carrier-pigeon")

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CatalogError, match="JSON object"):
            load_catalog(path)
        with pytest.raises(CatalogError):
            load_catalog(tmp_path / "missing.json")

    def test_to_dict_contains_all_fields(self):
        data = to_dict(CostParameters())
        assert json.dumps(data)
        assert "network_round_trip" in data and "amortization_factor" in data
